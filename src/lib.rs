//! # predictive-oltp
//!
//! A from-scratch Rust reproduction of *"On Predictive Modeling for
//! Optimizing Transaction Execution in Parallel OLTP Systems"* (Pavlo,
//! Jones, Zdonik — VLDB 2011): transaction Markov models and the **Houdini**
//! prediction framework, together with every substrate the paper depends on
//! — an H-Store-style partitioned main-memory OLTP engine, the TATP / TPC-C
//! / AuctionMark benchmarks, workload traces, parameter mappings, and the
//! machine-learning toolkit used for model partitioning.
//!
//! This root crate re-exports the workspace members; see each crate's
//! documentation for details, `DESIGN.md` for the system inventory and the
//! experiment index, and `EXPERIMENTS.md` for the paper-vs-measured record.

pub use common;
pub use engine;
pub use houdini;
pub use mapping;
pub use markov;
pub use ml;
pub use storage;
pub use trace;
pub use workloads;

/// The types most programs need.
pub mod prelude {
    pub use common::{PartitionSet, Value};
    pub use engine::{run_offline, CostModel, RequestGenerator, SimConfig, Simulation, TxnAdvisor};
    pub use houdini::{train, Houdini, HoudiniConfig, TrainingConfig};
    pub use markov::{build_model, estimate_path, EstimateConfig, MarkovModel};
    pub use trace::Workload;
    pub use workloads::Bench;
}
