//! Crash-test harness for the durability subsystem (`tests/recovery.rs`
//! drives it as a subprocess).
//!
//! Runs TATP against a [`engine::LiveRuntime`] with real command logging
//! into the given directory, optionally takes a consistent snapshot, then
//! dies via [`std::process::abort`] — no shutdown, no final flush, exactly
//! the on-disk state a SIGKILL would leave. Just before dying it prints
//! one machine-readable line with the acknowledged commit counts, which
//! the recovery test compares against an uninterrupted same-seed run.
//!
//! Usage: `crash_harness <dir> <sp|dist> <log|snap|snaplog> <seed>`
//!
//! * `sp` / `dist` — advisor: single-partition fast path vs forced
//!   distributed (lock-all) execution.
//! * `log` — phase-1 traffic only, then crash (recovery replays the log).
//! * `snap` — phase-1 traffic, snapshot, crash (recovery restores the
//!   snapshot, the truncated log holds nothing newer).
//! * `snaplog` — phase-1 traffic, snapshot, phase-2 traffic, crash
//!   (recovery restores the snapshot *and* replays phase 2).
//!
//! The phase sizes below are mirrored by `tests/recovery.rs`; keep them
//! in sync.

use engine::baselines::{AssumeDistributed, AssumeSinglePartition};
use engine::{DurabilityConfig, LiveAdvisor, LiveConfig, LiveRuntime};
use std::path::Path;
use std::sync::Barrier;
use workloads::Bench;

const PARTS: u32 = 2;
const CLIENTS: u64 = 4;
const PHASE1: u64 = 150;
const PHASE2: u64 = 100;

fn drive<A: LiveAdvisor + 'static>(advisor: A, dir: &Path, mode: &str, seed: u64) -> ! {
    let db = Bench::Tatp.database(PARTS);
    let reg = Bench::Tatp.registry();
    let cfg =
        LiveConfig { seed, durability: Some(DurabilityConfig::new(dir)), ..Default::default() };
    let rt = LiveRuntime::start(db, reg, advisor, cfg);
    let phase2 = if mode == "snaplog" { PHASE2 } else { 0 };
    // Clients pause at the barrier between phases so the snapshot cuts at
    // a quiescent point the test can reproduce; the crash itself happens
    // with the runtime fully live (threads parked mid-protocol, flusher
    // running, file buffers warm).
    let barrier = Barrier::new(CLIENTS as usize + 1);
    std::thread::scope(|s| {
        for c in 0..CLIENTS {
            let mut client = rt.client();
            let barrier = &barrier;
            s.spawn(move || {
                let mut gen = Bench::Tatp.client_generator(PARTS, seed, c);
                for _ in 0..PHASE1 {
                    let (proc, args) = gen.next_request(client.id());
                    client.call(proc, args).expect("phase-1 call");
                }
                barrier.wait();
                barrier.wait();
                for _ in 0..phase2 {
                    let (proc, args) = gen.next_request(client.id());
                    client.call(proc, args).expect("phase-2 call");
                }
            });
        }
        barrier.wait();
        if mode != "log" {
            rt.snapshot_now().expect("snapshot between phases");
        }
        barrier.wait();
    });
    // Every call above was acknowledged, so every committed writer is
    // durably logged (acks are released only after the covering flush).
    let m = rt.metrics();
    println!("CRASH committed={} user_aborts={}", m.committed, m.user_aborts);
    // SIGKILL-equivalent: no destructors, no shutdown, no buffered flush.
    std::process::abort();
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let [_, dir, advisor, mode, seed] = &args[..] else {
        eprintln!("usage: crash_harness <dir> <sp|dist> <log|snap|snaplog> <seed>");
        std::process::exit(2);
    };
    let seed: u64 = seed.parse().expect("numeric seed");
    match advisor.as_str() {
        "sp" => drive(AssumeSinglePartition::new(), Path::new(dir), mode, seed),
        "dist" => drive(AssumeDistributed::new(), Path::new(dir), mode, seed),
        other => {
            eprintln!("unknown advisor {other:?}");
            std::process::exit(2);
        }
    }
}
