//! Builds the paper's Fig. 4 artifact: a global Markov model for the TPC-C
//! NewOrder procedure on a 2-partition database, printed as Graphviz DOT
//! together with the Fig. 5-style probability table of a GetWarehouse state.
//!
//! Run with: `cargo run --release --example markov_explorer > neworder.dot`

use common::PartitionSet;
use engine::{run_offline, CatalogResolver, RequestGenerator};
use markov::{build_model, to_dot};
use workloads::{tpcc, Bench};

fn main() {
    let parts = 2;
    let mut db = Bench::Tpcc.database(parts);
    let registry = Bench::Tpcc.registry();
    let catalog = registry.catalog();
    let no = catalog.proc_id("NewOrder").expect("NewOrder exists");

    // Collect a NewOrder-heavy trace.
    let mut gen = tpcc::Generator::new(parts, 7);
    let mut records = Vec::new();
    for i in 0..4000u64 {
        let (proc, args) = gen.next_request(i % 8);
        let out = run_offline(&mut db, &registry, &catalog, proc, &args, true).expect("trace txn");
        if proc == no {
            records.push(out.record);
        }
    }
    eprintln!("collected {} NewOrder records", records.len());

    let resolver = CatalogResolver::new(&catalog, parts);
    let refs: Vec<&trace::TraceRecord> = records.iter().collect();
    let model = build_model(no, &refs, &resolver);
    eprintln!(
        "model: {} states, begin out-degree {} (one GetWarehouse per partition)",
        model.len(),
        model.vertex(model.begin()).edges.len()
    );

    // Fig. 5: the probability table of the partition-0 GetWarehouse state.
    if let Some(v) = model
        .vertices()
        .iter()
        .find(|v| v.name == "GetWarehouse" && v.key.partitions == PartitionSet::single(0))
    {
        eprintln!("GetWarehouse@p0 probability table:");
        eprintln!("  single-partitioned = {:.2}", v.table.single_partition);
        eprintln!("  abort              = {:.2}", v.table.abort);
        for (p, pp) in v.table.partitions.iter().enumerate() {
            eprintln!(
                "  partition {p}: read {:.2}  write {:.2}  finish {:.2}",
                pp.read, pp.write, pp.finish
            );
        }
    }

    // Fig. 4: the DOT graph on stdout.
    println!("{}", to_dot(&model, "NewOrder"));
}
