//! Embedding the live runtime as a library — the paper's Fig. 1 server
//! shape, driven by third-party code instead of the benchmark harness.
//!
//! ```text
//! cargo run --release --example embedded
//! ```
//!
//! The flow every embedding application follows:
//!
//! 1. Build (or load) a partitioned [`storage::Database`] and a stored-
//!    procedure registry — here TATP, with a Houdini advisor trained on a
//!    small offline trace.
//! 2. `LiveRuntime::start` boots the server: one worker thread per
//!    partition owning its shard, plus the model-maintenance thread.
//! 3. `runtime.client()` mints `Send` handles; application threads invoke
//!    ad-hoc stored procedures with `Client::call` — no request
//!    generators, no closed loop, any mix the application wants.
//! 4. `runtime.metrics()` snapshots throughput/latency counters mid-run.
//! 5. `runtime.shutdown()` drains in-flight work and hands back the
//!    reassembled database.

use common::Value;
use engine::{LiveConfig, LiveRuntime, TxnOutcome};
use workloads::{tatp, Bench};

/// TATP registry indices of the procedures this example invokes.
const GET_SUBSCRIBER: u32 = 3;
const UPDATE_LOCATION: u32 = 5;
const UPDATE_SUBSCRIBER: u32 = 6;

fn main() {
    let parts: u32 = 4;
    let subscribers = i64::from(parts * tatp::SUBS_PER_PARTITION);

    // 1. Database + procedures + a quickly-trained advisor.
    let db = Bench::Tatp.database(parts);
    let rows_before: Vec<usize> = (0..4).map(|t| db.total_rows(t)).collect();
    let registry = Bench::Tatp.registry();
    let advisor = bench::trained_houdini(Bench::Tatp, parts, 800, true, 0.5, 7);

    // 2. Boot the server. It owns its threads; this thread keeps only the
    //    handle.
    let runtime = LiveRuntime::start(db, registry, advisor, LiveConfig::default());
    println!("runtime up: {} partition workers", runtime.num_partitions());

    // 3. Serve ad-hoc transactions from independent application threads.
    std::thread::scope(|s| {
        let mut reader = runtime.client();
        s.spawn(move || {
            for i in 0..1_500i64 {
                let outcome = reader
                    .call(GET_SUBSCRIBER, vec![Value::Int(i % subscribers)])
                    .expect("read failed");
                assert_eq!(outcome, TxnOutcome::Committed, "static reads cannot abort");
            }
        });
        let mut writer = runtime.client();
        s.spawn(move || {
            for i in 0..600i64 {
                // UpdateLocation(sub_nbr, new_location): starts with a
                // broadcast lookup, then narrows — the distributed path.
                writer
                    .call(
                        UPDATE_LOCATION,
                        vec![Value::Str(tatp::sub_nbr(i % subscribers)), Value::Int(i)],
                    )
                    .expect("update failed");
            }
        });
        let mut mixed = runtime.client();
        s.spawn(move || {
            for i in 0..600i64 {
                mixed
                    .call(
                        UPDATE_SUBSCRIBER,
                        vec![
                            Value::Int(i % subscribers),
                            Value::Int(i % 2),
                            Value::Int(1 + i % 4),
                            Value::Int(i % 256),
                        ],
                    )
                    .expect("update failed");
            }
        });

        // 4. Observe the run without stopping it.
        std::thread::sleep(std::time::Duration::from_millis(50));
        println!("mid-run:  {}", runtime.metrics().summary());
    });

    // 5. Drain, stop, reassemble.
    let (metrics, db) = runtime.shutdown();
    println!("final:    {}", metrics.summary());
    assert_eq!(metrics.committed + metrics.user_aborts, 1_500 + 600 + 600);

    // The database came back whole: all partitions, updates applied in
    // place, no rows created or lost (this mix never inserts or deletes).
    assert_eq!(db.num_partitions(), parts);
    for (table, &before) in rows_before.iter().enumerate() {
        assert_eq!(db.total_rows(table), before, "table {table} row count changed");
    }
    println!(
        "database reassembled: {} partitions, {} subscriber rows intact",
        db.num_partitions(),
        db.total_rows(0),
    );
}
