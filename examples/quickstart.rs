//! Quickstart: build a Markov model from a workload trace, estimate a new
//! transaction's execution path, and run a small cluster simulation with the
//! Houdini advisor.
//!
//! Run with: `cargo run --release --example quickstart`

use engine::{run_offline, RequestGenerator};
use houdini::{train, Houdini, HoudiniConfig, TrainingConfig};
use trace::Workload;
use workloads::Bench;

fn main() {
    let parts = 4;
    let bench = Bench::Tpcc;

    // 1. Load the benchmark database and collect a workload trace (paper
    //    §3.1): procedure inputs plus the queries each transaction executed.
    println!("== collecting a 2,000-transaction TPC-C trace on {parts} partitions ==");
    let mut db = bench.database(parts);
    let registry = bench.registry();
    let catalog = registry.catalog();
    let mut gen = bench.generator(parts, 42);
    let mut records = Vec::new();
    for i in 0..2_000u64 {
        let (proc, args) = gen.next_request(i % 16);
        let out = run_offline(&mut db, &registry, &catalog, proc, &args, true)
            .expect("offline execution");
        records.push(out.record);
    }
    let workload = Workload { records };

    // 2. Train Houdini: parameter mappings (§4.1) + Markov models (§3.2),
    //    partitioned by input-parameter features (§5).
    println!("== training Houdini (mappings, models, clustering) ==");
    let training = TrainingConfig::default();
    let predictors = train(&catalog, parts, &workload, &training);
    for (proc, pred) in predictors.iter().enumerate() {
        println!(
            "  {:<12} {} model(s), {} states, {} mapped query params{}",
            catalog.proc(proc as u32).name,
            pred.models.len(),
            pred.models.total_states(),
            pred.mapping.len(),
            if pred.disabled { " [disabled]" } else { "" }
        );
    }

    // 3. Run the timed cluster simulation with Houdini choosing the base
    //    partition (OP1), lock sets (OP2), undo logging (OP3), and early
    //    prepares (OP4).
    println!("== simulating 1 simulated second of TPC-C under Houdini ==");
    let mut houdini = Houdini::new(predictors, catalog, parts, HoudiniConfig::default());
    let mut db = bench.database(parts);
    let mut gen = bench.generator(parts, 43);
    let cfg = engine::SimConfig {
        num_partitions: parts,
        warmup_us: 100_000.0,
        measure_us: 1_000_000.0,
        ..Default::default()
    };
    let sim = engine::Simulation::new(
        &mut db,
        &registry,
        &mut houdini,
        &mut gen,
        engine::CostModel::default(),
        cfg,
    );
    let (metrics, profiler) = sim.run().expect("simulation");
    println!("  throughput       : {:>8.0} txn/s", metrics.throughput_tps());
    match metrics.mean_latency_ms() {
        Some(ms) => println!("  mean latency     : {ms:>8.2} ms"),
        None => println!("  mean latency     :        - (no commits in window)"),
    }
    println!("  single-partition : {:>8}", metrics.single_partition);
    println!("  distributed      : {:>8}", metrics.distributed);
    println!("  speculative      : {:>8}", metrics.speculative);
    println!("  no-undo txns     : {:>8}", metrics.no_undo);
    println!("  restarts         : {:>8}", metrics.restarts);
    println!(
        "  estimation share : {:>8.1} %",
        100.0 * profiler.overall_share(engine::Bucket::Estimation)
    );
}
