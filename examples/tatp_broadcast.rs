//! The TATP broadcast-then-narrow pattern (paper Fig. 10a): the three
//! procedures that open with a broadcast query make OP1 unpredictable and
//! OP4 essential. This example shows the parameter mapping failing to link
//! the derived subscriber id (correctly!), the resulting uncertain path
//! estimate, and the runtime updates that still release partitions early.
//!
//! Run with: `cargo run --release --example tatp_broadcast`

use common::Value;
use engine::{run_offline, RequestGenerator};
use houdini::{train, CatalogRule, TrainingConfig};
use markov::{estimate_path, EstimateConfig};
use trace::Workload;
use workloads::{tatp, Bench};

fn main() {
    let parts = 4;
    let bench = Bench::Tatp;
    let mut db = bench.database(parts);
    let registry = bench.registry();
    let catalog = registry.catalog();

    // Trace + training.
    let mut gen = tatp::Generator::new(parts, 5);
    let mut records = Vec::new();
    for i in 0..4000u64 {
        let (proc, args) = gen.next_request(i % 16);
        let out = run_offline(&mut db, &registry, &catalog, proc, &args, true).expect("trace");
        records.push(out.record);
    }
    let preds = train(&catalog, parts, &Workload { records }, &TrainingConfig::default());

    let ul = catalog.proc_id("UpdateLocation").expect("proc") as usize;
    let pred = &preds[ul];
    println!("UpdateLocation(sub_nbr, vlr_location):");
    println!(
        "  mapping entries: {} (the broadcast lookup's derived s_id is — correctly — unmapped)",
        pred.mapping.len()
    );

    // Estimate a path: the broadcast step is certain, the narrow step is
    // uncertain (chosen by edge weight, §4.2).
    let args = vec![Value::Str(tatp::sub_nbr(7)), Value::Int(123)];
    let idx = pred.models.select(&args);
    let model = pred.models.model(idx);
    let rule = CatalogRule::new(&catalog, ul as u32, parts);
    let est = estimate_path(model, &rule, &pred.mapping, &args, &EstimateConfig::default());
    println!("  estimated path:");
    for &v in &est.vertices {
        let vx = model.vertex(v);
        println!("    {} partitions={} previous={}", vx.name, vx.key.partitions, vx.key.previous);
    }
    println!("  uncertain steps : {}", est.uncertain_steps);
    println!("  touched         : {} (broadcast forces lock-all)", est.touched);
    println!("  confidence      : {:.3}", est.confidence);

    // The runtime update at the narrow state declares every other partition
    // finished — the early prepare that keeps the cluster busy (OP4).
    let narrow =
        est.vertices.iter().map(|&v| model.vertex(v)).find(|vx| vx.name == "UpdateSubscriberLoc");
    if let Some(vx) = narrow {
        println!("  finish probabilities at the narrow state:");
        for p in 0..parts {
            println!("    partition {p}: {:.2}", vx.table.finish(p));
        }
    }
}
