//! Model partitioning (paper §5, Fig. 9): feature extraction from procedure
//! input parameters, EM clustering, feed-forward feature selection, and the
//! run-time decision tree — shown on AuctionMark's GetUserInfo, whose
//! conditional branches are the showcase for per-cluster models.
//!
//! Run with: `cargo run --release --example model_partitioning`

use common::Value;
use engine::{run_offline, RequestGenerator};
use houdini::{train, ModelSet, TrainingConfig};
use ml::{extract_features, feature_schema};
use trace::Workload;
use workloads::{auctionmark, Bench};

fn main() {
    let parts = 4;
    let bench = Bench::AuctionMark;
    let mut db = bench.database(parts);
    let registry = bench.registry();
    let catalog = registry.catalog();

    // Show Table 1/Table 2 feature extraction on one request.
    let args = vec![Value::Int(7), Value::Int(1), Value::Int(0), Value::Int(0)];
    let schema = feature_schema(args.len());
    println!("feature vector for GetUserInfo{args:?} (Table 2 style):");
    let fv = extract_features(&schema, &args, parts);
    for (f, v) in schema.iter().zip(&fv) {
        println!(
            "  {}(param {}) = {}",
            f.category.label(),
            f.param,
            v.map(|x| x.to_string()).unwrap_or_else(|| "null".into())
        );
    }

    // Train with clustering enabled and inspect the chosen partitioning.
    let mut gen = auctionmark::Generator::new(parts, 3);
    let mut records = Vec::new();
    for i in 0..6000u64 {
        let (proc, a) = gen.next_request(i % 16);
        let out = run_offline(&mut db, &registry, &catalog, proc, &a, true).expect("trace");
        records.push(out.record);
    }
    let preds = train(&catalog, parts, &Workload { records }, &TrainingConfig::default());

    println!("\nper-procedure model sets:");
    for (proc, pred) in preds.iter().enumerate() {
        let name = &catalog.proc(proc as u32).name;
        match &pred.models {
            _ if pred.disabled => println!("  {name:<18} DISABLED (>175 queries, §4.6)"),
            ModelSet::Global { model, .. } => {
                println!("  {name:<18} global model, {} states", model.len());
            }
            ModelSet::Partitioned { selected, schema, tree, models, .. } => {
                let feats: Vec<String> = selected
                    .iter()
                    .map(|&i| format!("{}({})", schema[i].category.label(), schema[i].param))
                    .collect();
                println!(
                    "  {name:<18} {} clusters on {feats:?}, tree depth {}, {} total states",
                    models.len(),
                    tree.depth(),
                    models.iter().map(|m| m.len()).sum::<usize>()
                );
            }
        }
    }
}
