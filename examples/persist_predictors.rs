//! The paper's deployment story (Fig. 6): collect a trace, train off-line,
//! ship the serialized predictors to every node, and load them back.
//! Exercises the JSONL trace format and the predictor bundle end-to-end.
//!
//! Run with: `cargo run --release --example persist_predictors`

use engine::run_offline;
use houdini::{load_predictors, save_predictors, train, TrainingConfig};
use trace::{read_trace, write_trace, Workload};
use workloads::Bench;

fn main() {
    let parts = 4;
    let n = 500;

    // Collect a TATP trace.
    let mut db = Bench::Tatp.database(parts);
    let registry = Bench::Tatp.registry();
    let catalog = registry.catalog();
    let mut gen = Bench::Tatp.generator(parts, 17);
    let mut records = Vec::with_capacity(n);
    for i in 0..n {
        let (proc, args) = gen.next_request(i as u64 % 8);
        let out = run_offline(&mut db, &registry, &catalog, proc, &args, true)
            .expect("offline trace txn");
        records.push(out.record);
    }
    let wl = Workload { records };

    // Round-trip the trace through its JSONL wire format.
    let mut buf = Vec::new();
    write_trace(&wl, &mut buf).expect("write trace");
    println!("trace: {} records, {} bytes of JSONL", wl.len(), buf.len());
    let back = read_trace(&buf[..]).expect("read trace");
    assert_eq!(back.records, wl.records, "trace must round-trip bit-identically");
    println!("trace round-trip: OK");

    // Train and round-trip the predictor bundle.
    let preds = train(&catalog, parts, &wl, &TrainingConfig::default());
    let mut bundle = Vec::new();
    save_predictors(&preds, parts, &mut bundle).expect("save predictors");
    println!("predictors: {} procedures, {} bytes of JSON", preds.len(), bundle.len());
    let loaded = load_predictors(&bundle[..], parts).expect("load predictors");
    assert_eq!(loaded.len(), preds.len());
    let models: usize = loaded.iter().map(|p| p.models.len()).sum();
    println!("predictor round-trip: OK ({models} models rebuilt with fresh indexes)");

    // Loading against the wrong cluster size must be refused (§3.1).
    match load_predictors(&bundle[..], parts * 2) {
        Err(e) => println!("wrong-cluster load correctly refused: {e}"),
        Ok(_) => panic!("stale predictors must not load"),
    }
}
