//! Head-to-head on TPC-C: Houdini versus the paper's baselines on one
//! cluster size, reporting throughput and the optimization counters that
//! Table 4 tracks.
//!
//! Run with: `cargo run --release --example tpcc_houdini [partitions]`

use engine::baselines::{AssumeDistributed, AssumeSinglePartition, Oracle};
use engine::{CostModel, RequestGenerator, SimConfig, Simulation, TxnAdvisor};
use houdini::{train, Houdini, HoudiniConfig, TrainingConfig};
use trace::Workload;
use workloads::Bench;

fn run(bench: Bench, parts: u32, advisor: &mut dyn TxnAdvisor) -> engine::RunMetrics {
    let mut db = bench.database(parts);
    let registry = bench.registry();
    let mut gen = bench.generator(parts, 99);
    let cfg = SimConfig {
        num_partitions: parts,
        warmup_us: 100_000.0,
        measure_us: 500_000.0,
        ..Default::default()
    };
    let sim = Simulation::new(&mut db, &registry, advisor, &mut gen, CostModel::default(), cfg);
    sim.run().expect("simulation").0
}

fn main() {
    let parts: u32 = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(16);
    let bench = Bench::Tpcc;
    println!("TPC-C, {parts} partitions, 0.5 simulated seconds measured\n");

    // Train Houdini from an offline trace (paper §3.2/§4.1/§5).
    let mut db = bench.database(parts);
    let registry = bench.registry();
    let catalog = registry.catalog();
    let mut gen = bench.generator(parts, 42);
    let mut records = Vec::new();
    for i in 0..4000u64 {
        let (proc, args) = gen.next_request(i % 16);
        let out =
            engine::run_offline(&mut db, &registry, &catalog, proc, &args, true).expect("trace");
        records.push(out.record);
    }
    let preds = train(&catalog, parts, &Workload { records }, &TrainingConfig::default());
    let mut houdini = Houdini::new(preds, catalog.clone(), parts, HoudiniConfig::default());

    let mut oracle = Oracle::new();
    let mut asp = AssumeSinglePartition::new();
    let mut adist = AssumeDistributed::new();
    let runs: Vec<(&str, &mut dyn TxnAdvisor)> = vec![
        ("houdini", &mut houdini),
        ("proper-selection (oracle)", &mut oracle),
        ("assume-single-partition", &mut asp),
        ("assume-distributed", &mut adist),
    ];
    println!(
        "{:<26} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "strategy", "txn/s", "lat(ms)", "restarts", "no-undo", "spec"
    );
    for (name, advisor) in runs {
        let m = run(bench, parts, advisor);
        let lat = m.mean_latency_ms().map_or_else(|| "-".to_string(), |ms| format!("{ms:.2}"));
        println!(
            "{name:<26} {:>9.0} {lat:>9} {:>9} {:>9} {:>9}",
            m.throughput_tps(),
            m.restarts,
            m.no_undo,
            m.speculative
        );
    }
    println!(
        "\nHoudini plan mix: {} estimated, {} fallback, {} replanned",
        houdini.plans_estimated, houdini.plans_fallback, houdini.plans_replanned
    );
}
