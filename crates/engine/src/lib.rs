//! An H-Store-style parallel main-memory OLTP engine under discrete-event
//! simulated time.
//!
//! Architecture (paper §2, Fig. 1): a cluster of shared-nothing nodes, each
//! hosting single-threaded execution engines with exclusive access to one
//! data partition. Clients invoke pre-defined stored procedures; procedures
//! submit *batches* of parameterized queries and block on their results.
//!
//! Everything behavioural is real — queries read and write rows in
//! [`storage::Database`], partition locks are acquired and released, undo
//! logs roll back aborts, two-phase commit coordinates distributed
//! transactions, and the early-prepare/speculative-execution optimizations
//! (OP4) change when partitions become available. Only *time* is simulated:
//! a calibrated cost model ([`cost::CostModel`]) charges CPU and network
//! microseconds, which makes every throughput experiment in the paper
//! reproducible deterministically on one machine (see DESIGN.md §1 for the
//! substitution argument).
//!
//! The pluggable [`advisor::TxnAdvisor`] decides, per transaction, the base
//! partition (OP1), the lock set (OP2), whether to run without undo logging
//! (OP3), and when partitions are finished (OP4). The baseline advisors from
//! the paper's evaluation live in [`baselines`]; the Houdini advisor lives in
//! the `houdini` crate.

pub mod advisor;
pub mod baselines;
pub mod catalog;
pub mod cost;
pub mod durability;
pub mod exec;
pub mod metrics;
pub mod procedure;
pub mod profiler;
pub mod runtime;
pub mod sim;

pub use advisor::{
    LiveAdvisor, LiveMaintainer, PlanContext, PlanEnv, Request, TxnAdvisor, TxnFeedback,
    TxnOutcome, TxnPlan, Updates,
};
pub use catalog::{Catalog, CatalogResolver, ColumnOp, PartitionHint, ProcDef, QueryDef, QueryOp};
pub use cost::CostModel;
pub use durability::{DurabilityConfig, RecoveryReport};
pub use exec::{run_offline, ExecutedQuery, OfflineOutcome};
pub use metrics::{
    EpochAccuracy, LatencyHistogram, MaintenanceReport, MetricsSummary, OpCounters, RunMetrics,
};
pub use procedure::{ProcInstance, Procedure, ProcedureRegistry, QueryInvocation, Step};
pub use profiler::{Bucket, CoordSub, Profiler};
pub use runtime::{run_live, Client, LiveConfig, LiveRuntime};
pub use sim::{RequestGenerator, SimConfig, Simulation};
