//! The per-procedure transaction-time profiler behind Fig. 11.
//!
//! The paper instruments H-Store to attribute each transaction's wall time
//! to five buckets: (1) estimating optimizations, (2) executing control code
//! and queries, (3) planning, (4) coordinating execution, and (5) other
//! setup operations. Profiling starts when a request arrives at a node and
//! stops when the result is sent back to the client.
//!
//! The live runtime adds a sixth bucket, `Queueing` — wall time a request
//! spends parked on a worker's inbound queue before its partition thread
//! picks it up. The simulator has no queues (it charges modeled service
//! times directly), so `Queueing` stays zero there; conversely the live
//! runtime ships pre-compiled fragments and never plans queries, so
//! `Planning` is a sim-only bucket.

use common::{FxHashMap, ProcId};

/// The five attribution buckets of Fig. 11, plus live-runtime `Queueing`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Bucket {
    /// Advisor time: initial path estimate + runtime updates.
    Estimation,
    /// Control code + query execution.
    Execution,
    /// Query planning.
    Planning,
    /// Network, locking, and two-phase-commit coordination.
    Coordination,
    /// Time spent parked on a worker's inbound queue (live runtime only).
    Queueing,
    /// Miscellaneous setup.
    Other,
}

impl Bucket {
    /// All buckets, in Fig. 11's legend order (with `Queueing` inserted
    /// before the catch-all).
    pub const ALL: [Bucket; 6] = [
        Bucket::Estimation,
        Bucket::Execution,
        Bucket::Planning,
        Bucket::Coordination,
        Bucket::Queueing,
        Bucket::Other,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Bucket::Estimation => "Estimation",
            Bucket::Execution => "Execution",
            Bucket::Planning => "Planning",
            Bucket::Coordination => "Coordination",
            Bucket::Queueing => "Queueing",
            Bucket::Other => "Other",
        }
    }
}

/// Sub-buckets *of* [`Bucket::Coordination`]: where the distributed
/// path's coordination time actually goes. Each recorded amount is also
/// part of the `Coordination` total (the sub-buckets never exceed it —
/// the fast path's residual coordination lands in none of them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoordSub {
    /// Blocked acquiring the transaction's partition-lock set.
    LockWait,
    /// The 2PC finish round: outcome sends plus every participant ack.
    TwoPc,
    /// Waiting on the shared commit-flush sequencer for durability.
    Flush,
}

impl CoordSub {
    /// All sub-buckets, in report order.
    pub const ALL: [CoordSub; 3] = [CoordSub::LockWait, CoordSub::TwoPc, CoordSub::Flush];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            CoordSub::LockWait => "LockWait",
            CoordSub::TwoPc => "TwoPC",
            CoordSub::Flush => "Flush",
        }
    }
}

#[derive(Debug, Clone, Default)]
struct ProcTimes {
    us: [f64; 6],
    /// Coordination sub-bucket times, parallel to `us[Coordination]`.
    coord: [f64; 3],
    txns: u64,
}

/// Accumulates microseconds per (procedure, bucket) — simulated time in the
/// simulator, wall time in the live runtime.
#[derive(Debug, Clone, Default)]
pub struct Profiler {
    per_proc: FxHashMap<ProcId, ProcTimes>,
}

impl Profiler {
    /// Empty profiler.
    pub fn new() -> Self {
        Profiler::default()
    }

    /// Adds `us` microseconds of `bucket` time for `proc`.
    pub fn add(&mut self, proc: ProcId, bucket: Bucket, us: f64) {
        debug_assert!(us >= 0.0, "negative time {us}");
        let entry = self.per_proc.entry(proc).or_default();
        entry.us[bucket as usize] += us;
    }

    /// Adds `us` microseconds to a [`Bucket::Coordination`] sub-bucket for
    /// `proc`. The caller records the same time under `Coordination` too —
    /// this only refines how that total splits.
    pub fn add_coord(&mut self, proc: ProcId, sub: CoordSub, us: f64) {
        debug_assert!(us >= 0.0, "negative time {us}");
        let entry = self.per_proc.entry(proc).or_default();
        entry.coord[sub as usize] += us;
    }

    /// Marks one completed transaction of `proc` (for averaging).
    pub fn finish_txn(&mut self, proc: ProcId) {
        self.per_proc.entry(proc).or_default().txns += 1;
    }

    /// Folds another profiler's accumulations into this one (used when
    /// per-call metrics are absorbed into the run-wide aggregate).
    pub fn merge(&mut self, other: &Profiler) {
        for (proc, times) in &other.per_proc {
            let entry = self.per_proc.entry(*proc).or_default();
            for (acc, us) in entry.us.iter_mut().zip(times.us.iter()) {
                *acc += us;
            }
            for (acc, us) in entry.coord.iter_mut().zip(times.coord.iter()) {
                *acc += us;
            }
            entry.txns += times.txns;
        }
    }

    /// Total recorded microseconds across all procedures and buckets.
    pub fn grand_total_us(&self) -> f64 {
        self.per_proc.values().map(|t| t.us.iter().sum::<f64>()).sum()
    }

    /// Total transactions recorded across all procedures.
    pub fn total_txns(&self) -> u64 {
        self.per_proc.values().map(|t| t.txns).sum()
    }

    /// Total recorded microseconds for `proc` across buckets.
    pub fn total_us(&self, proc: ProcId) -> f64 {
        self.per_proc.get(&proc).map(|t| t.us.iter().sum()).unwrap_or(0.0)
    }

    /// Fraction of `proc`'s recorded time in `bucket` (Fig. 11's y-axis).
    pub fn share(&self, proc: ProcId, bucket: Bucket) -> f64 {
        let total = self.total_us(proc);
        if total == 0.0 {
            return 0.0;
        }
        self.per_proc.get(&proc).map(|t| t.us[bucket as usize]).unwrap_or(0.0) / total
    }

    /// Mean microseconds per transaction of `proc` spent in `bucket`
    /// (Table 4's rightmost column uses `Estimation`).
    pub fn mean_us(&self, proc: ProcId, bucket: Bucket) -> f64 {
        match self.per_proc.get(&proc) {
            Some(t) if t.txns > 0 => t.us[bucket as usize] / t.txns as f64,
            _ => 0.0,
        }
    }

    /// Total recorded microseconds for `proc` in a coordination
    /// sub-bucket.
    pub fn coord_us(&self, proc: ProcId, sub: CoordSub) -> f64 {
        self.per_proc.get(&proc).map(|t| t.coord[sub as usize]).unwrap_or(0.0)
    }

    /// Fraction of `proc`'s recorded time in a coordination sub-bucket
    /// (same denominator as [`Profiler::share`], so the three sub-shares
    /// sum to at most the `Coordination` share).
    pub fn coord_share(&self, proc: ProcId, sub: CoordSub) -> f64 {
        let total = self.total_us(proc);
        if total == 0.0 {
            return 0.0;
        }
        self.coord_us(proc, sub) / total
    }

    /// Run-weighted coordination sub-bucket share across all procedures
    /// (denominator: grand total, as in [`Profiler::overall_share`]).
    pub fn overall_coord_share(&self, sub: CoordSub) -> f64 {
        let total = self.grand_total_us();
        if total == 0.0 {
            return 0.0;
        }
        let b: f64 = self.per_proc.values().map(|t| t.coord[sub as usize]).sum();
        b / total
    }

    /// Transactions recorded for `proc`.
    pub fn txns(&self, proc: ProcId) -> u64 {
        self.per_proc.get(&proc).map(|t| t.txns).unwrap_or(0)
    }

    /// Procedures with recorded time, ascending by id.
    pub fn procs(&self) -> Vec<ProcId> {
        let mut ids: Vec<ProcId> = self.per_proc.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Weighted-average estimation share across all procedures (the paper's
    /// headline "5.8% of total execution time", §6.3).
    pub fn overall_share(&self, bucket: Bucket) -> f64 {
        let total: f64 = self.per_proc.values().map(|t| t.us.iter().sum::<f64>()).sum();
        if total == 0.0 {
            return 0.0;
        }
        let b: f64 = self.per_proc.values().map(|t| t.us[bucket as usize]).sum();
        b / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_sum_to_one() {
        let mut p = Profiler::new();
        p.add(0, Bucket::Estimation, 10.0);
        p.add(0, Bucket::Execution, 70.0);
        p.add(0, Bucket::Coordination, 20.0);
        let sum: f64 = Bucket::ALL.iter().map(|&b| p.share(0, b)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!((p.share(0, Bucket::Execution) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn mean_per_txn() {
        let mut p = Profiler::new();
        p.add(1, Bucket::Estimation, 30.0);
        p.finish_txn(1);
        p.finish_txn(1);
        p.finish_txn(1);
        assert!((p.mean_us(1, Bucket::Estimation) - 10.0).abs() < 1e-12);
        assert_eq!(p.txns(1), 3);
    }

    #[test]
    fn empty_proc_is_zero() {
        let p = Profiler::new();
        assert_eq!(p.total_us(9), 0.0);
        assert_eq!(p.share(9, Bucket::Other), 0.0);
        assert_eq!(p.mean_us(9, Bucket::Other), 0.0);
    }

    #[test]
    fn merge_folds_per_proc_totals() {
        let mut a = Profiler::new();
        a.add(0, Bucket::Execution, 40.0);
        a.add(0, Bucket::Queueing, 10.0);
        a.finish_txn(0);
        let mut b = Profiler::new();
        b.add(0, Bucket::Execution, 60.0);
        b.add(2, Bucket::Coordination, 5.0);
        b.finish_txn(0);
        b.finish_txn(2);
        a.merge(&b);
        assert!((a.total_us(0) - 110.0).abs() < 1e-12);
        assert!((a.mean_us(0, Bucket::Execution) - 50.0).abs() < 1e-12);
        assert_eq!(a.txns(0), 2);
        assert_eq!(a.txns(2), 1);
        assert_eq!(a.total_txns(), 3);
        assert!((a.grand_total_us() - 115.0).abs() < 1e-12);
        assert_eq!(a.procs(), vec![0, 2]);
    }

    #[test]
    fn coord_sub_buckets_split_the_coordination_total() {
        let mut p = Profiler::new();
        p.add(0, Bucket::Execution, 50.0);
        p.add(0, Bucket::Coordination, 50.0);
        p.add_coord(0, CoordSub::LockWait, 10.0);
        p.add_coord(0, CoordSub::TwoPc, 25.0);
        p.add_coord(0, CoordSub::Flush, 5.0);
        let sub_sum: f64 = CoordSub::ALL.iter().map(|&s| p.coord_share(0, s)).sum();
        assert!(sub_sum <= p.share(0, Bucket::Coordination) + 1e-12);
        assert!((p.coord_share(0, CoordSub::TwoPc) - 0.25).abs() < 1e-12);
        assert!((p.overall_coord_share(CoordSub::LockWait) - 0.10).abs() < 1e-12);
        let mut q = Profiler::new();
        q.merge(&p);
        assert!((q.coord_us(0, CoordSub::Flush) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn overall_share_weighted() {
        let mut p = Profiler::new();
        p.add(0, Bucket::Estimation, 10.0);
        p.add(0, Bucket::Execution, 90.0);
        p.add(1, Bucket::Estimation, 0.0);
        p.add(1, Bucket::Execution, 100.0);
        assert!((p.overall_share(Bucket::Estimation) - 0.05).abs() < 1e-12);
    }
}
