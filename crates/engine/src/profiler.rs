//! The per-procedure transaction-time profiler behind Fig. 11.
//!
//! The paper instruments H-Store to attribute each transaction's wall time
//! to five buckets: (1) estimating optimizations, (2) executing control code
//! and queries, (3) planning, (4) coordinating execution, and (5) other
//! setup operations. Profiling starts when a request arrives at a node and
//! stops when the result is sent back to the client.

use common::{FxHashMap, ProcId};

/// The five attribution buckets of Fig. 11.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Bucket {
    /// Advisor time: initial path estimate + runtime updates.
    Estimation,
    /// Control code + query execution.
    Execution,
    /// Query planning.
    Planning,
    /// Network, locking, and two-phase-commit coordination.
    Coordination,
    /// Miscellaneous setup.
    Other,
}

impl Bucket {
    /// All buckets, in Fig. 11's legend order.
    pub const ALL: [Bucket; 5] = [
        Bucket::Estimation,
        Bucket::Execution,
        Bucket::Planning,
        Bucket::Coordination,
        Bucket::Other,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Bucket::Estimation => "Estimation",
            Bucket::Execution => "Execution",
            Bucket::Planning => "Planning",
            Bucket::Coordination => "Coordination",
            Bucket::Other => "Other",
        }
    }
}

#[derive(Debug, Clone, Default)]
struct ProcTimes {
    us: [f64; 5],
    txns: u64,
}

/// Accumulates simulated microseconds per (procedure, bucket).
#[derive(Debug, Default)]
pub struct Profiler {
    per_proc: FxHashMap<ProcId, ProcTimes>,
}

impl Profiler {
    /// Empty profiler.
    pub fn new() -> Self {
        Profiler::default()
    }

    /// Adds `us` microseconds of `bucket` time for `proc`.
    pub fn add(&mut self, proc: ProcId, bucket: Bucket, us: f64) {
        debug_assert!(us >= 0.0, "negative time {us}");
        let entry = self.per_proc.entry(proc).or_default();
        entry.us[bucket as usize] += us;
    }

    /// Marks one completed transaction of `proc` (for averaging).
    pub fn finish_txn(&mut self, proc: ProcId) {
        self.per_proc.entry(proc).or_default().txns += 1;
    }

    /// Total recorded microseconds for `proc` across buckets.
    pub fn total_us(&self, proc: ProcId) -> f64 {
        self.per_proc.get(&proc).map(|t| t.us.iter().sum()).unwrap_or(0.0)
    }

    /// Fraction of `proc`'s recorded time in `bucket` (Fig. 11's y-axis).
    pub fn share(&self, proc: ProcId, bucket: Bucket) -> f64 {
        let total = self.total_us(proc);
        if total == 0.0 {
            return 0.0;
        }
        self.per_proc.get(&proc).map(|t| t.us[bucket as usize]).unwrap_or(0.0) / total
    }

    /// Mean microseconds per transaction of `proc` spent in `bucket`
    /// (Table 4's rightmost column uses `Estimation`).
    pub fn mean_us(&self, proc: ProcId, bucket: Bucket) -> f64 {
        match self.per_proc.get(&proc) {
            Some(t) if t.txns > 0 => t.us[bucket as usize] / t.txns as f64,
            _ => 0.0,
        }
    }

    /// Transactions recorded for `proc`.
    pub fn txns(&self, proc: ProcId) -> u64 {
        self.per_proc.get(&proc).map(|t| t.txns).unwrap_or(0)
    }

    /// Procedures with recorded time, ascending by id.
    pub fn procs(&self) -> Vec<ProcId> {
        let mut ids: Vec<ProcId> = self.per_proc.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Weighted-average estimation share across all procedures (the paper's
    /// headline "5.8% of total execution time", §6.3).
    pub fn overall_share(&self, bucket: Bucket) -> f64 {
        let total: f64 = self.per_proc.values().map(|t| t.us.iter().sum::<f64>()).sum();
        if total == 0.0 {
            return 0.0;
        }
        let b: f64 = self.per_proc.values().map(|t| t.us[bucket as usize]).sum();
        b / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_sum_to_one() {
        let mut p = Profiler::new();
        p.add(0, Bucket::Estimation, 10.0);
        p.add(0, Bucket::Execution, 70.0);
        p.add(0, Bucket::Coordination, 20.0);
        let sum: f64 = Bucket::ALL.iter().map(|&b| p.share(0, b)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!((p.share(0, Bucket::Execution) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn mean_per_txn() {
        let mut p = Profiler::new();
        p.add(1, Bucket::Estimation, 30.0);
        p.finish_txn(1);
        p.finish_txn(1);
        p.finish_txn(1);
        assert!((p.mean_us(1, Bucket::Estimation) - 10.0).abs() < 1e-12);
        assert_eq!(p.txns(1), 3);
    }

    #[test]
    fn empty_proc_is_zero() {
        let p = Profiler::new();
        assert_eq!(p.total_us(9), 0.0);
        assert_eq!(p.share(9, Bucket::Other), 0.0);
        assert_eq!(p.mean_us(9, Bucket::Other), 0.0);
    }

    #[test]
    fn overall_share_weighted() {
        let mut p = Profiler::new();
        p.add(0, Bucket::Estimation, 10.0);
        p.add(0, Bucket::Execution, 90.0);
        p.add(1, Bucket::Estimation, 0.0);
        p.add(1, Bucket::Execution, 100.0);
        assert!((p.overall_share(Bucket::Estimation) - 0.05).abs() < 1e-12);
    }
}
