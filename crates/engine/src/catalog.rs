//! The stored-procedure catalog: named parameterized queries with enough
//! metadata for the engine to execute them and for the partition-estimation
//! API (paper §3.1, reference \[5\]) to predict what they touch.

use common::{PartitionSet, ProcId, QueryId, Value};
use storage::Database;
use trace::PartitionResolver;

/// How a query's target partitions are derived from its parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionHint {
    /// The parameter at this index holds the partitioning-column value; the
    /// query touches exactly that value's home partition.
    Param(usize),
    /// The query must run on every partition (e.g. TATP's lookup on a
    /// column the table is not partitioned on).
    Broadcast,
}

/// A column mutation inside an update query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColumnOp {
    /// `SET col = ?`
    Set { column: usize, param: usize },
    /// `SET col = col + ?`
    Add { column: usize, param: usize },
}

/// What a query does to its table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryOp {
    /// Point select by primary key; `key_params[i]` is the parameter index
    /// holding the i-th primary-key column.
    GetByKey { key_params: Vec<usize> },
    /// Equality select on a non-key column (parameter `param`).
    LookupBy { column: usize, param: usize },
    /// Insert; the parameters *are* the row, in schema column order.
    InsertRow,
    /// Update by primary key, applying `sets`.
    UpdateByKey { key_params: Vec<usize>, sets: Vec<ColumnOp> },
    /// Delete by primary key.
    DeleteByKey { key_params: Vec<usize> },
}

impl QueryOp {
    /// True if the operation mutates rows.
    pub fn is_write(&self) -> bool {
        matches!(
            self,
            QueryOp::InsertRow | QueryOp::UpdateByKey { .. } | QueryOp::DeleteByKey { .. }
        )
    }
}

/// One named parameterized query inside a stored procedure.
#[derive(Debug, Clone)]
pub struct QueryDef {
    /// Unique name within the procedure (e.g. `GetWarehouse`).
    pub name: String,
    /// Target table id in the [`storage::Database`].
    pub table: usize,
    /// Row operation.
    pub op: QueryOp,
    /// Partition derivation rule.
    pub hint: PartitionHint,
}

impl QueryDef {
    /// True if the query writes.
    pub fn is_write(&self) -> bool {
        self.op.is_write()
    }

    /// The partitions this invocation would touch, given its parameters —
    /// this is the engine's internal partition-estimation API.
    pub fn estimate_partitions(&self, db: &Database, params: &[Value]) -> PartitionSet {
        self.estimate_partitions_n(db.num_partitions(), params)
    }

    /// [`QueryDef::estimate_partitions`] from the cluster size alone —
    /// partition routing ([`Value::home_partition`]) depends only on
    /// parameter values, so callers that do not hold the database (live
    /// coordinators, workers) get identical answers.
    pub fn estimate_partitions_n(&self, num_partitions: u32, params: &[Value]) -> PartitionSet {
        match &self.hint {
            PartitionHint::Param(i) => {
                PartitionSet::single(params[*i].home_partition(num_partitions))
            }
            PartitionHint::Broadcast => PartitionSet::all(num_partitions),
        }
    }
}

/// A stored-procedure definition: its queries plus behavioural metadata.
#[derive(Debug, Clone)]
pub struct ProcDef {
    /// Procedure name (e.g. `NewOrder`).
    pub name: String,
    /// The parameterized queries the control code may invoke.
    pub queries: Vec<QueryDef>,
    /// True if the control code never issues a write (read-only txns commit
    /// speculatively without waiting, §2 OP4).
    pub read_only: bool,
    /// True if the control code contains an abort path (e.g. TPC-C NewOrder
    /// rolls back on an invalid item). Used by ground-truth evaluation.
    pub can_abort: bool,
}

impl ProcDef {
    /// Looks up a query id by name.
    pub fn query_id(&self, name: &str) -> Option<QueryId> {
        self.queries.iter().position(|q| q.name == name).map(|i| i as QueryId)
    }

    /// The query definition for `id`.
    pub fn query(&self, id: QueryId) -> &QueryDef {
        &self.queries[id as usize]
    }
}

/// A benchmark's full catalog of stored procedures.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    /// Procedure definitions, indexed by [`ProcId`].
    pub procs: Vec<ProcDef>,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Registers a procedure, returning its id.
    pub fn add_proc(&mut self, def: ProcDef) -> ProcId {
        self.procs.push(def);
        (self.procs.len() - 1) as ProcId
    }

    /// Procedure id by name.
    pub fn proc_id(&self, name: &str) -> Option<ProcId> {
        self.procs.iter().position(|p| p.name == name).map(|i| i as ProcId)
    }

    /// Procedure definition by id.
    pub fn proc(&self, id: ProcId) -> &ProcDef {
        &self.procs[id as usize]
    }

    /// Number of procedures.
    pub fn len(&self) -> usize {
        self.procs.len()
    }

    /// True if no procedures are registered.
    pub fn is_empty(&self) -> bool {
        self.procs.is_empty()
    }
}

/// Adapts a [`Catalog`] plus a cluster size into the [`PartitionResolver`]
/// interface that model generation consumes. Partition math is
/// [`Value::home_partition`] — the same rule storage routing uses, by
/// construction.
pub struct CatalogResolver<'a> {
    catalog: &'a Catalog,
    num_partitions: u32,
}

impl<'a> CatalogResolver<'a> {
    /// Wraps `catalog` for a cluster of `num_partitions` partitions.
    pub fn new(catalog: &'a Catalog, num_partitions: u32) -> Self {
        CatalogResolver { catalog, num_partitions }
    }
}

impl PartitionResolver for CatalogResolver<'_> {
    fn partitions(&self, proc: ProcId, query: QueryId, params: &[Value]) -> PartitionSet {
        let def = self.catalog.proc(proc).query(query);
        def.estimate_partitions_n(self.num_partitions, params)
    }

    fn is_write(&self, proc: ProcId, query: QueryId) -> bool {
        self.catalog.proc(proc).query(query).is_write()
    }

    fn query_name(&self, proc: ProcId, query: QueryId) -> String {
        self.catalog.proc(proc).query(query).name.clone()
    }

    fn num_partitions(&self) -> u32 {
        self.num_partitions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_proc(ProcDef {
            name: "P".into(),
            queries: vec![
                QueryDef {
                    name: "Get".into(),
                    table: 0,
                    op: QueryOp::GetByKey { key_params: vec![0] },
                    hint: PartitionHint::Param(0),
                },
                QueryDef {
                    name: "Find".into(),
                    table: 0,
                    op: QueryOp::LookupBy { column: 1, param: 0 },
                    hint: PartitionHint::Broadcast,
                },
                QueryDef {
                    name: "Ins".into(),
                    table: 0,
                    op: QueryOp::InsertRow,
                    hint: PartitionHint::Param(0),
                },
            ],
            read_only: false,
            can_abort: false,
        });
        c
    }

    #[test]
    fn lookup_by_name() {
        let c = catalog();
        assert_eq!(c.proc_id("P"), Some(0));
        assert_eq!(c.proc(0).query_id("Find"), Some(1));
        assert_eq!(c.proc(0).query_id("Nope"), None);
    }

    #[test]
    fn write_detection() {
        let c = catalog();
        assert!(!c.proc(0).query(0).is_write());
        assert!(c.proc(0).query(2).is_write());
    }

    #[test]
    fn resolver_param_and_broadcast() {
        let c = catalog();
        let r = CatalogResolver::new(&c, 4);
        assert_eq!(r.partitions(0, 0, &[Value::Int(5)]), PartitionSet::single(1));
        assert_eq!(r.partitions(0, 1, &[Value::Int(5)]), PartitionSet::all(4));
        assert_eq!(r.num_partitions(), 4);
        assert!(r.is_write(0, 2));
        assert_eq!(r.query_name(0, 0), "Get");
    }

    #[test]
    fn resolver_matches_database_routing() {
        let c = catalog();
        let r = CatalogResolver::new(&c, 8);
        let schemas = vec![storage::Schema::new("T", &["ID", "X"], &[0], Some(0))];
        let db = Database::new(schemas, 8, &[]);
        for v in [Value::Int(0), Value::Int(13), Value::from("abc")] {
            assert_eq!(
                r.partitions(0, 0, std::slice::from_ref(&v)),
                PartitionSet::single(db.partition_for_value(&v)),
                "value {v}"
            );
        }
    }
}
