//! The simulated-time cost model.
//!
//! All durations are in microseconds of simulated time. Defaults are
//! calibrated so that transaction latencies and cluster throughputs land in
//! the same order of magnitude as the paper's testbed (single-partition
//! transactions well under a millisecond, TPC-C Delivery tens of
//! milliseconds, cluster throughput in the thousands of txn/s) — the *shape*
//! of every curve is what the reproduction targets (DESIGN.md §1).

/// Cost-model parameters, microseconds unless noted.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// CPU to execute one query at a partition (index lookup + row access).
    pub query_exec_us: f64,
    /// Extra CPU for a write on top of `query_exec_us`.
    pub write_extra_us: f64,
    /// CPU to append one undo record (the OP3 saving; ~30% of write cost,
    /// echoing the concurrency-control share reported by \[14\] in §1).
    pub undo_record_us: f64,
    /// CPU per control-code step (one batch dispatch) at the base partition.
    pub control_code_us: f64,
    /// Per-transaction planning cost at the arrival node.
    pub planning_us: f64,
    /// Per-transaction miscellaneous setup ("other" in Fig. 11).
    pub setup_us: f64,
    /// One-way message latency between partitions on the same node.
    pub local_msg_us: f64,
    /// One-way message latency between nodes.
    pub remote_msg_us: f64,
    /// Coordinator CPU per two-phase-commit round.
    pub twopc_cpu_us: f64,
    /// Penalty to abort + re-queue a transaction for restart.
    pub restart_penalty_us: f64,
    /// CPU to roll back one undo record on abort.
    pub rollback_record_us: f64,
    /// Client think time between requests (the paper drives clients with
    /// zero think time and full queues, §6.4).
    pub client_think_us: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            query_exec_us: 20.0,
            write_extra_us: 4.0,
            undo_record_us: 5.0,
            control_code_us: 4.0,
            planning_us: 14.0,
            setup_us: 10.0,
            local_msg_us: 3.0,
            remote_msg_us: 60.0,
            twopc_cpu_us: 6.0,
            restart_penalty_us: 350.0,
            rollback_record_us: 4.0,
            client_think_us: 0.0,
        }
    }
}

impl CostModel {
    /// One-way latency between two partitions given the node mapping.
    pub fn msg_us(&self, node_a: u32, node_b: u32) -> f64 {
        if node_a == node_b {
            self.local_msg_us
        } else {
            self.remote_msg_us
        }
    }

    /// CPU cost of executing one query, including undo logging if enabled.
    pub fn query_cost_us(&self, is_write: bool, undo_enabled: bool) -> f64 {
        let mut c = self.query_exec_us;
        if is_write {
            c += self.write_extra_us;
            if undo_enabled {
                c += self.undo_record_us;
            }
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_cheaper_than_remote() {
        let c = CostModel::default();
        assert!(c.msg_us(0, 0) < c.msg_us(0, 1));
    }

    #[test]
    fn undo_logging_costs_extra_only_on_writes() {
        let c = CostModel::default();
        assert_eq!(c.query_cost_us(false, true), c.query_cost_us(false, false));
        assert!(c.query_cost_us(true, true) > c.query_cost_us(true, false));
        assert!(c.query_cost_us(true, false) > c.query_cost_us(false, false));
    }
}
