//! Query execution against storage, shared by the timed simulator and the
//! offline trace executor.

use crate::catalog::{Catalog, ColumnOp, QueryDef, QueryOp};
use crate::procedure::{ProcedureRegistry, Step};
use common::{PartitionId, PartitionSet, ProcId, Result, Value};
use storage::{Database, Row, Shard, UndoLog};
use trace::{QueryRecord, TraceRecord};

/// A query the transaction actually executed: parameters plus the partitions
/// it touched. The advisor's runtime-update hook receives these.
#[derive(Debug, Clone)]
pub struct ExecutedQuery {
    /// Query id within the procedure.
    pub query: common::QueryId,
    /// Invocation parameters.
    pub params: Vec<Value>,
    /// Partitions the invocation touched.
    pub partitions: PartitionSet,
    /// True if it wrote.
    pub is_write: bool,
}

/// One partition's slice of the row-operation surface, so the per-query
/// execution logic is written once and runs either against the whole
/// [`Database`] (simulator, offline executor) or against a single [`Shard`]
/// owned by a live worker thread.
trait PartitionStore {
    fn ps_get(&self, table: usize, key: &[Value]) -> Option<&Row>;
    fn ps_insert(&mut self, table: usize, row: Row, undo: &mut UndoLog) -> Result<()>;
    /// Applies `sets` with `params` to the row at `key` (the `apply_sets`
    /// mutation is invoked inside the impl so no closure crosses the trait
    /// boundary — updates are the hot write path).
    fn ps_update(
        &mut self,
        table: usize,
        key: &[Value],
        sets: &[ColumnOp],
        params: &[Value],
        undo: &mut UndoLog,
    ) -> Result<()>;
    fn ps_delete(&mut self, table: usize, key: &[Value], undo: &mut UndoLog) -> Result<Row>;
    fn ps_lookup_by(&self, table: usize, column: usize, value: &Value) -> Vec<Row>;
}

struct DbPartition<'a> {
    db: &'a mut Database,
    p: PartitionId,
}

impl PartitionStore for DbPartition<'_> {
    fn ps_get(&self, table: usize, key: &[Value]) -> Option<&Row> {
        self.db.get(self.p, table, key)
    }
    fn ps_insert(&mut self, table: usize, row: Row, undo: &mut UndoLog) -> Result<()> {
        self.db.insert(self.p, table, row, undo)
    }
    fn ps_update(
        &mut self,
        table: usize,
        key: &[Value],
        sets: &[ColumnOp],
        params: &[Value],
        undo: &mut UndoLog,
    ) -> Result<()> {
        self.db.update(self.p, table, key, |row| apply_sets(row, sets, params), undo)
    }
    fn ps_delete(&mut self, table: usize, key: &[Value], undo: &mut UndoLog) -> Result<Row> {
        self.db.delete(self.p, table, key, undo)
    }
    fn ps_lookup_by(&self, table: usize, column: usize, value: &Value) -> Vec<Row> {
        self.db.lookup_by(self.p, table, column, value)
    }
}

impl PartitionStore for &mut Shard {
    fn ps_get(&self, table: usize, key: &[Value]) -> Option<&Row> {
        Shard::get(self, table, key)
    }
    fn ps_insert(&mut self, table: usize, row: Row, undo: &mut UndoLog) -> Result<()> {
        Shard::insert(self, table, row, undo)
    }
    fn ps_update(
        &mut self,
        table: usize,
        key: &[Value],
        sets: &[ColumnOp],
        params: &[Value],
        undo: &mut UndoLog,
    ) -> Result<()> {
        Shard::update(self, table, key, |row| apply_sets(row, sets, params), undo)
    }
    fn ps_delete(&mut self, table: usize, key: &[Value], undo: &mut UndoLog) -> Result<Row> {
        Shard::delete(self, table, key, undo)
    }
    fn ps_lookup_by(&self, table: usize, column: usize, value: &Value) -> Vec<Row> {
        Shard::lookup_by(self, table, column, value)
    }
}

/// Runs `def` against one partition's store, appending result rows.
fn run_on_partition<S: PartitionStore>(
    store: &mut S,
    def: &QueryDef,
    params: &[Value],
    undo: &mut UndoLog,
    rows: &mut Vec<Row>,
) -> Result<()> {
    match &def.op {
        QueryOp::GetByKey { key_params } => {
            let key: Vec<Value> = key_params.iter().map(|&i| params[i].clone()).collect();
            if let Some(r) = store.ps_get(def.table, &key) {
                rows.push(r.clone());
            }
        }
        QueryOp::LookupBy { column, param } => {
            rows.extend(store.ps_lookup_by(def.table, *column, &params[*param]));
        }
        QueryOp::InsertRow => {
            store.ps_insert(def.table, params.to_vec(), undo)?;
            rows.push(params.to_vec());
        }
        QueryOp::UpdateByKey { key_params, sets } => {
            let key: Vec<Value> = key_params.iter().map(|&i| params[i].clone()).collect();
            if store.ps_get(def.table, &key).is_some() {
                store.ps_update(def.table, &key, sets, params, undo)?;
                rows.push(store.ps_get(def.table, &key).expect("just updated").clone());
            }
        }
        QueryOp::DeleteByKey { key_params } => {
            let key: Vec<Value> = key_params.iter().map(|&i| params[i].clone()).collect();
            if store.ps_get(def.table, &key).is_some() {
                let before = store.ps_delete(def.table, &key, undo)?;
                rows.push(before);
            }
        }
    }
    Ok(())
}

/// Executes one query invocation against the database, returning the result
/// rows and the partitions touched. Writes are undo-logged into `undo`.
///
/// Missing keys on update/delete affect zero rows (empty result) rather than
/// erroring; a point select that finds nothing returns an empty result. The
/// control code decides whether that is an abort condition.
pub fn execute_query(
    db: &mut Database,
    def: &QueryDef,
    params: &[Value],
    undo: &mut UndoLog,
) -> Result<(Vec<Row>, PartitionSet)> {
    let targets = def.estimate_partitions(db, params);
    let mut rows = Vec::new();
    for p in targets.iter() {
        let mut store = DbPartition { db, p };
        run_on_partition(&mut store, def, params, undo, &mut rows)?;
    }
    Ok((rows, targets))
}

/// Executes the slice of one query invocation that targets `shard`'s
/// partition — the fragment a live worker runs. The caller (coordinator or
/// fast path) has already established that the shard is among the query's
/// target partitions. Returns this partition's result rows in partition-
/// local order; the coordinator merges fragments in ascending partition
/// order, matching [`execute_query`]'s whole-cluster row order.
pub fn execute_fragment(
    shard: &mut Shard,
    def: &QueryDef,
    params: &[Value],
    undo: &mut UndoLog,
) -> Result<Vec<Row>> {
    let mut rows = Vec::new();
    let mut store = shard;
    run_on_partition(&mut store, def, params, undo, &mut rows)?;
    Ok(rows)
}

fn apply_sets(row: &mut Row, sets: &[ColumnOp], params: &[Value]) {
    for s in sets {
        match s {
            ColumnOp::Set { column, param } => row[*column] = params[*param].clone(),
            ColumnOp::Add { column, param } => {
                let cur = row[*column].expect_int();
                row[*column] = Value::Int(cur + params[*param].expect_int());
            }
        }
    }
}

/// Outcome of an offline (untimed) execution.
#[derive(Debug, Clone)]
pub struct OfflineOutcome {
    /// The trace record: procedure args plus executed queries (paper §3.1).
    pub record: TraceRecord,
    /// Partitions the transaction touched, in aggregate.
    pub touched: PartitionSet,
    /// True if the transaction committed (false = control-code abort).
    pub committed: bool,
}

/// Runs a procedure to completion against the database with no timing — the
/// workhorse of workload-trace collection and of the Oracle advisor's
/// dry-runs. If `keep_effects` is false (dry-run) or the control code
/// aborts, all changes are rolled back.
pub fn run_offline(
    db: &mut Database,
    registry: &ProcedureRegistry,
    catalog: &Catalog,
    proc: ProcId,
    args: &[Value],
    keep_effects: bool,
) -> Result<OfflineOutcome> {
    let mut inst = registry.get(proc).instantiate(args);
    let mut undo = UndoLog::new();
    let mut queries = Vec::new();
    let mut touched = PartitionSet::EMPTY;
    let mut results: Option<Vec<Vec<Row>>> = None;
    let committed;
    'outer: loop {
        let step = inst.next(results.as_deref());
        match step {
            Step::Queries(batch) => {
                let mut batch_results = Vec::with_capacity(batch.len());
                for inv in batch {
                    let def = catalog.proc(proc).query(inv.query);
                    // Constraint violations abort the transaction like any
                    // SQL error, mirroring the timed simulator.
                    let (rows, parts) = match execute_query(db, def, &inv.params, &mut undo) {
                        Ok(v) => v,
                        Err(common::Error::Constraint(_)) => {
                            committed = false;
                            break 'outer;
                        }
                        Err(e) => return Err(e),
                    };
                    touched = touched.union(parts);
                    queries.push(QueryRecord { query: inv.query, params: inv.params });
                    batch_results.push(rows);
                }
                results = Some(batch_results);
            }
            Step::Commit => {
                committed = true;
                break;
            }
            Step::Abort(_) => {
                committed = false;
                break;
            }
        }
    }
    if !committed || !keep_effects {
        db.rollback(&mut undo)?;
    }
    Ok(OfflineOutcome {
        record: TraceRecord { proc, params: args.to_vec(), queries, aborted: !committed },
        touched,
        committed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::procedure::testing::{kv_database, kv_registry};

    #[test]
    fn offline_commit_mutates_when_keeping_effects() {
        let mut db = kv_database(4, 4);
        let reg = kv_registry();
        let cat = reg.catalog();
        let args = vec![Value::Array(vec![Value::Int(1), Value::Int(2)])];
        let out = run_offline(&mut db, &reg, &cat, 0, &args, true).unwrap();
        assert!(out.committed);
        assert!(!out.record.aborted);
        assert_eq!(out.record.queries.len(), 4); // 2 gets + 2 bumps
        assert_eq!(out.touched, PartitionSet::from_iter([1u32, 2]));
        assert_eq!(db.get(1, 0, &[Value::Int(1)]).unwrap()[2], Value::Int(1));
    }

    #[test]
    fn offline_dry_run_rolls_back() {
        let mut db = kv_database(4, 4);
        let reg = kv_registry();
        let cat = reg.catalog();
        let args = vec![Value::Array(vec![Value::Int(1)])];
        let out = run_offline(&mut db, &reg, &cat, 0, &args, false).unwrap();
        assert!(out.committed);
        assert_eq!(db.get(1, 0, &[Value::Int(1)]).unwrap()[2], Value::Int(0));
    }

    #[test]
    fn offline_abort_rolls_back_and_flags() {
        let mut db = kv_database(4, 4);
        let reg = kv_registry();
        let cat = reg.catalog();
        // id 999 does not exist -> control code aborts after the read batch.
        let args = vec![Value::Array(vec![Value::Int(1), Value::Int(999)])];
        let out = run_offline(&mut db, &reg, &cat, 0, &args, true).unwrap();
        assert!(!out.committed);
        assert!(out.record.aborted);
        assert_eq!(db.get(1, 0, &[Value::Int(1)]).unwrap()[2], Value::Int(0));
    }

    #[test]
    fn executed_partitions_match_resolver() {
        use trace::PartitionResolver;
        let mut db = kv_database(8, 2);
        let reg = kv_registry();
        let cat = reg.catalog();
        let resolver = crate::catalog::CatalogResolver::new(&cat, 8);
        let args = vec![Value::Array(vec![Value::Int(3), Value::Int(11)])];
        let out = run_offline(&mut db, &reg, &cat, 0, &args, true).unwrap();
        for q in &out.record.queries {
            let predicted = resolver.partitions(0, q.query, &q.params);
            assert!(predicted.is_subset(out.touched));
        }
    }

    #[test]
    fn update_on_missing_key_affects_zero_rows() {
        let mut db = kv_database(2, 2);
        let reg = kv_registry();
        let cat = reg.catalog();
        let def = cat.proc(0).query(1); // BumpKV
        let mut undo = UndoLog::new();
        let (rows, _) =
            execute_query(&mut db, def, &[Value::Int(777), Value::Int(1)], &mut undo).unwrap();
        assert!(rows.is_empty());
        assert!(undo.is_empty());
    }
}
