//! Durability policy and crash-recovery replay for the live runtime.
//!
//! The live runtime's durability subsystem (DESIGN.md §7) is H-Store-style
//! *command logging*: workers append compact records — transaction id,
//! procedure, arguments, commit decision — for every committed writer, and
//! group-commit batches ride the existing `FlushSequencer` epochs so one
//! real `write+fsync` covers a whole coalesced group. Recovery loads the
//! newest complete snapshot and re-executes the logged commands.
//!
//! ## Replay order
//!
//! Each partition's log file order *is* that partition's serialization:
//! the worker thread appends records at the same single-threaded service
//! points where it applies effects, so no cross-thread reordering can slip
//! between a record and the effects it describes. Single-partition writers
//! appear as [`wal::LogRecord::Local`] on their home partition.
//! Distributed transactions appear as a [`wal::LogRecord::DistBegin`] on
//! every participant (at the position the worker began serving it) plus a
//! [`wal::LogRecord::Decision`] at its 2PC resolution point.
//!
//! `replay` (crate-internal) merges the per-partition streams
//! topologically: `Local` and
//! `Decision` records advance freely; a `DistBegin` is a synchronization
//! point — the transaction re-executes exactly once, when *every*
//! participant's cursor has parked at its own begin record, and only if a
//! durable `Decision{commit: true}` exists anywhere in the streams. The
//! participant set is *derived* from the streams themselves (partitions
//! whose stream contains the begin), which makes torn begins harmless: a
//! committed transaction's ack was only released after one device flush
//! covered every participant's begin and decision records, so committed
//! transactions always recover their full participant set, while a crash
//! mid-transaction can only tear records of transactions that were never
//! acked — replay skips those. Cross-partition parking cannot deadlock:
//! live coordinators claim locks in ascending partition order and
//! speculation windows park fragments the same way, so the begin records
//! of concurrent distributed transactions never interleave in conflicting
//! orders on different partitions.

use crate::catalog::Catalog;
use crate::exec::run_offline;
use crate::procedure::ProcedureRegistry;
use std::collections::{HashMap, HashSet};
use std::path::PathBuf;
use std::time::Duration;
use storage::Database;
use wal::{LogRecord, RecoveredState};

/// Durability configuration for [`crate::runtime::LiveConfig`]. When set,
/// every committed writer is command-logged to `dir` before its client sees
/// the commit, and background snapshots (if enabled) bound replay length.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Directory holding log segments, snapshot files, and markers.
    pub dir: PathBuf,
    /// Background snapshot cadence; `None` disables the snapshotter thread
    /// (snapshots can still be taken on demand via
    /// [`crate::runtime::LiveRuntime::snapshot_now`]).
    pub snapshot_every: Option<Duration>,
    /// Group-commit accumulation window: after the flusher receives a
    /// closed commit group it waits this long before draining its queue
    /// and performing the device flush, so concurrently closing groups
    /// (and the held read acks riding them) share one `write+fsync`
    /// instead of paying one each. Zero flushes immediately — lowest
    /// commit latency, but on a loaded system the fsync rate approaches
    /// the group-close rate and throughput collapses to the device.
    pub group_commit_window: Duration,
    /// Fence read-only fast-path replies behind the log: a read served
    /// after a not-yet-durable write on its partition holds its ack until
    /// the covering flush completes, so no client ever observes state a
    /// crash could un-commit. H-Store/VoltDB command logging does *not*
    /// give this guarantee — read-only transactions skip the log and
    /// return immediately — and neither does our own distributed path
    /// (a read-only multi-partition transaction never waits), so the
    /// default follows the reproduced system: `false`. The cost of `true`
    /// is that under continuous writes most reads wait out a group-commit
    /// window, which on a closed loop costs throughput, not just latency.
    pub read_fence: bool,
}

impl DurabilityConfig {
    /// Command logging to `dir`, no background snapshotter, the default
    /// group-commit window.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig {
            dir: dir.into(),
            snapshot_every: None,
            // 1 ms: aggressive next to H-Store's 10 ms default
            // command-log group-commit timeout, but this engine's calls
            // are tens of microseconds, so 1 ms already coalesces dozens
            // of commits per fsync while keeping writer ack latency in
            // the low milliseconds.
            group_commit_window: Duration::from_micros(1_000),
            read_fence: false,
        }
    }

    /// Enables the background snapshotter at the given cadence.
    pub fn snapshot_every(mut self, every: Duration) -> Self {
        self.snapshot_every = Some(every);
        self
    }

    /// Overrides the group-commit accumulation window.
    pub fn group_commit_window(mut self, window: Duration) -> Self {
        self.group_commit_window = window;
        self
    }

    /// Enables the strict read fence (see [`DurabilityConfig::read_fence`]).
    pub fn read_fence(mut self) -> Self {
        self.read_fence = true;
        self
    }
}

/// What [`crate::runtime::LiveRuntime::recover`] did, for operators and the
/// benchmark summary.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// Wall-clock milliseconds the whole recovery took (scan + snapshot
    /// load + replay).
    pub recovery_ms: f64,
    /// Snapshot generation restored, `None` when recovery replayed from
    /// the beginning of the log.
    pub snapshot_gen: Option<u64>,
    /// Transactions re-executed from the command log.
    pub replayed: u64,
    /// Logged transactions whose effects were *not* re-applied: aborted or
    /// undecided distributed transactions (their effects were never acked).
    pub skipped: u64,
    /// Total log records decoded across all partition streams.
    pub log_records_scanned: u64,
}

/// Highest transaction id appearing anywhere in the recovered streams;
/// the recovered runtime allocates ids strictly above this.
pub(crate) fn max_txn_id(state: &RecoveredState) -> u64 {
    state.streams.iter().flat_map(|s| s.iter().map(LogRecord::txn_id)).max().unwrap_or(0)
}

/// Re-executes the recovered command streams against `db` in a
/// serialization equivalent to the crashed run's. Returns
/// `(replayed, skipped)` transaction counts. See the module docs for the
/// topological-merge argument.
pub(crate) fn replay(
    db: &mut Database,
    registry: &ProcedureRegistry,
    catalog: &Catalog,
    state: &RecoveredState,
) -> (u64, u64) {
    let streams = &state.streams;
    // Pre-scan: 2PC outcomes, and each distributed transaction's *derived*
    // participant set (the partitions whose streams hold its begin record).
    let mut decisions: HashMap<u64, bool> = HashMap::new();
    let mut participants: HashMap<u64, Vec<usize>> = HashMap::new();
    for (p, stream) in streams.iter().enumerate() {
        for rec in stream {
            match rec {
                LogRecord::Decision { txn_id, commit } => {
                    // Participants never disagree: every Decision for one
                    // txn is written from the same coordinator outcome.
                    decisions.insert(*txn_id, *commit);
                }
                LogRecord::DistBegin { txn_id, .. } => {
                    participants.entry(*txn_id).or_default().push(p);
                }
                LogRecord::Local { .. } => {}
            }
        }
    }
    let mut cursors = vec![0usize; streams.len()];
    let mut executed: HashSet<u64> = HashSet::new();
    let mut skipped_dist: HashSet<u64> = HashSet::new();
    let mut replayed = 0u64;
    let mut skipped = 0u64;
    loop {
        let mut progress = false;
        for p in 0..streams.len() {
            while let Some(rec) = streams[p].get(cursors[p]) {
                match rec {
                    LogRecord::Local { proc, args, .. } => {
                        let ok = run_offline(db, registry, catalog, *proc, args, true)
                            .map(|o| o.committed)
                            .unwrap_or(false);
                        if ok {
                            replayed += 1;
                        } else {
                            skipped += 1;
                        }
                        cursors[p] += 1;
                        progress = true;
                    }
                    LogRecord::Decision { .. } => {
                        // Consumed by the pre-scan; positionally inert.
                        cursors[p] += 1;
                        progress = true;
                    }
                    LogRecord::DistBegin { txn_id, proc, args } => {
                        let id = *txn_id;
                        if executed.contains(&id) || skipped_dist.contains(&id) {
                            cursors[p] += 1;
                            progress = true;
                            continue;
                        }
                        if decisions.get(&id) != Some(&true) {
                            // Aborted, or undecided at the crash: either
                            // way its effects were never acked and were
                            // rolled back (or never applied) live.
                            skipped_dist.insert(id);
                            skipped += 1;
                            cursors[p] += 1;
                            progress = true;
                            continue;
                        }
                        let parts = &participants[&id];
                        let all_parked = parts.iter().all(|&q| {
                            q == p
                                || matches!(
                                    streams[q].get(cursors[q]),
                                    Some(LogRecord::DistBegin { txn_id: t, .. }) if *t == id
                                )
                        });
                        if !all_parked {
                            // Park this partition until the rest catch up.
                            break;
                        }
                        let ok = run_offline(db, registry, catalog, *proc, args, true)
                            .map(|o| o.committed)
                            .unwrap_or(false);
                        if ok {
                            replayed += 1;
                        } else {
                            skipped += 1;
                        }
                        executed.insert(id);
                        for &q in parts {
                            cursors[q] += 1;
                        }
                        progress = true;
                    }
                }
            }
        }
        if !progress {
            break;
        }
    }
    (replayed, skipped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::procedure::testing::{kv_database, kv_registry};
    use common::Value;

    fn local(txn_id: u64, id: i64) -> LogRecord {
        LogRecord::Local { txn_id, proc: 0, args: vec![Value::Array(vec![Value::Int(id)])] }
    }

    fn state(streams: Vec<Vec<LogRecord>>) -> RecoveredState {
        let scanned = streams.iter().map(|s| s.len() as u64).sum();
        RecoveredState {
            snapshot_gen: None,
            snapshot: None,
            streams,
            max_gen: 0,
            log_records_scanned: scanned,
        }
    }

    fn val(db: &Database, id: i64) -> i64 {
        let p = db.partition_for_value(&Value::Int(id));
        db.get(p, 0, &[Value::Int(id)]).unwrap()[2].expect_int()
    }

    #[test]
    fn locals_replay_in_file_order_and_decisions_are_inert() {
        let mut db = kv_database(2, 4);
        let reg = kv_registry();
        let cat = reg.catalog();
        let s = state(vec![
            vec![local(1, 0), LogRecord::Decision { txn_id: 7, commit: true }, local(2, 0)],
            vec![local(3, 1)],
        ]);
        let (replayed, skipped) = replay(&mut db, &reg, &cat, &s);
        assert_eq!((replayed, skipped), (3, 0));
        assert_eq!(val(&db, 0), 2, "two bumps of key 0");
        assert_eq!(val(&db, 1), 1);
        assert_eq!(max_txn_id(&s), 7);
    }

    #[test]
    fn committed_dist_txn_waits_for_all_participants_then_runs_once() {
        let mut db = kv_database(2, 4);
        let reg = kv_registry();
        let cat = reg.catalog();
        // Keys 0 and 1 hash to different partitions; the distributed txn 5
        // bumps both. Partition 1 has a Local *before* its begin record, so
        // partition 0 must park until that Local replays.
        let dist_args = vec![Value::Array(vec![Value::Int(0), Value::Int(1)])];
        let begin = |p: &[Value]| LogRecord::DistBegin { txn_id: 5, proc: 0, args: p.to_vec() };
        let s = state(vec![
            vec![begin(&dist_args), LogRecord::Decision { txn_id: 5, commit: true }],
            vec![local(4, 1), begin(&dist_args), LogRecord::Decision { txn_id: 5, commit: true }],
        ]);
        let (replayed, skipped) = replay(&mut db, &reg, &cat, &s);
        assert_eq!((replayed, skipped), (2, 0), "one local + one dist, executed once");
        assert_eq!(val(&db, 0), 1);
        assert_eq!(val(&db, 1), 2, "local bump then dist bump");
    }

    #[test]
    fn aborted_and_undecided_dist_txns_are_skipped() {
        let mut db = kv_database(2, 4);
        let reg = kv_registry();
        let cat = reg.catalog();
        let args = vec![Value::Array(vec![Value::Int(0), Value::Int(1)])];
        let s = state(vec![
            vec![
                // Aborted 2PC: decision says no.
                LogRecord::DistBegin { txn_id: 8, proc: 0, args: args.clone() },
                LogRecord::Decision { txn_id: 8, commit: false },
                // Crash before any decision: undecided, never acked.
                LogRecord::DistBegin { txn_id: 9, proc: 0, args: args.clone() },
            ],
            vec![LogRecord::DistBegin { txn_id: 8, proc: 0, args }],
        ]);
        let (replayed, skipped) = replay(&mut db, &reg, &cat, &s);
        assert_eq!((replayed, skipped), (0, 2));
        assert_eq!(val(&db, 0), 0);
        assert_eq!(val(&db, 1), 0);
    }
}
