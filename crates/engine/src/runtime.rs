//! The live multi-threaded partition runtime.
//!
//! Where [`crate::Simulation`] charges a cost model for time, this module
//! runs the paper's architecture (§2, Fig. 1) for real: one OS worker
//! thread per partition with *exclusive ownership* of that partition's
//! [`storage::Shard`], a lock-free SPSC ring-lane dispatcher with a
//! doorbell-parked control channel, and any number of caller-owned
//! [`Client`] handles that route every request through a shared, trained,
//! read-only [`LiveAdvisor`].
//!
//! ## Thread and ownership model
//!
//! The runtime is a *server*, embeddable as a library: [`LiveRuntime::
//! start`] owns the worker threads, the lock manager, and (when the
//! advisor learns) the maintenance thread; everything those threads share
//! lives in one `Arc`-held `Shared` block, so the runtime outlives the
//! stack frame that started it. [`LiveRuntime::client`] mints cheap `Send`
//! [`Client`] handles; [`Client::call`] plans, coordinates, and blocks for
//! one transaction. [`LiveRuntime::shutdown`] drains in-flight work, stops
//! every owned thread, and reassembles the [`Database`]. The closed-loop
//! benchmark entry point [`run_live`] is a thin wrapper over exactly this
//! lifecycle.
//!
//! * **Workers** (one per partition) own their shard outright — no locks
//!   guard row access, ever. Fast-path requests arrive on *per-client SPSC
//!   ring lanes* ([`common::ring`]) — each [`Client`] registers a
//!   dedicated bounded lock-free lane with each worker it talks to, so
//!   the hot path crosses no shared mutex and no MPSC channel; rare
//!   control traffic (lane registration, reservations, 2PC outcomes,
//!   shutdown) rides a plain shared channel, and a [`common::ring::
//!   Doorbell`] wakes a worker that parked with everything empty. A
//!   worker collects work *in runs*: it drains the control channel, then
//!   sweeps its lanes fairly (round-robin, one message per lane per pass)
//!   until a pass comes up empty. The swept single-partition transactions
//!   execute as one group — their durable effects share a single commit
//!   flush and their acknowledgements go out together in completion order
//!   (group commit + group ack) — and the flush window itself is
//!   *adaptive*: sized by the backlog the lanes show when the group
//!   closes, from zero (nobody waiting — flush immediately) up to the
//!   `commit_flush_us` cap (deep backlog — widen the window so the next
//!   group coalesces more). A reservation from a distributed transaction
//!   is admitted after the current group (everything swept before it is
//!   flushed and acknowledged first; per-client FIFO order is the lane
//!   itself).
//! * **Clients** (the paper's §6.4 load generators, or any embedding
//!   application thread) plan each request via the shared advisor, then
//!   either hand the whole transaction to its base partition's worker, or
//!   — for a multi-partition lock set — become the transaction's
//!   *coordinator*: they acquire the cluster lock atomically, drive the
//!   control code themselves, and ship query fragments over reusable
//!   per-(client, worker) SPSC *fragment lanes* (`FragConn`, registered
//!   once like the fast path's lanes), batched per participant per query
//!   batch (`FragCmd::ExecBatch`). Holding a partition's lock entitles
//!   the client to push on its lane — the lock *is* the reservation, so
//!   the steady state has no per-transaction channel setup and no
//!   reservation round trip at all.
//! * **The lock manager** is sharded by partition: one FIFO ticket queue
//!   and condvar per partition, claimed in ascending partition order —
//!   distributed transactions on disjoint shards never touch the same
//!   mutex. The globally consistent claim order makes lock acquisition
//!   deadlock-free (the classic ordered-resource argument), and no wait
//!   edge ever points *into* the lock manager after acquisition: workers
//!   never take locks, and a coordinator acquires its whole set up front
//!   and only releases afterwards. A reservation only ever waits behind
//!   finite single-partition work or reservations of already-granted (and
//!   therefore progressing) transactions, so the runtime as a whole stays
//!   deadlock-free by construction.
//!
//! Mispredicts are handled exactly like [`crate::Simulation`]: a query
//! batch that targets a partition outside the lock set rolls the
//! transaction back, the advisor replans (`attempt` counting up), and after
//! `max_restarts` the transaction falls back to a lock-all plan that cannot
//! mispredict.
//!
//! Commit runs real two-phase commit, coalesced per (coordinator,
//! participant) pair: participants in this engine always vote yes (every
//! fragment error already surfaced at execution), so the coordinator ships
//! one `VoteFinish` message carrying the flush-and-vote *and* the decision
//! together and awaits one acknowledgement — halving the per-participant
//! round trips and the modeled network hops of the split `Vote` + `Finish`
//! rounds while keeping identical outcomes. Commit durability is paid
//! once per distributed write transaction, *by the coordinator*: after
//! every participant acked it waits on the shared cross-worker
//! [`common::flush::FlushSequencer`], whose epoch tickets let concurrent
//! coordinators (and worker group commits) coalesce into one device
//! operation — participants never sleep a flush on their own thread, so a
//! distributed commit no longer stalls its partitions' fast paths.
//! `LiveConfig::msg_delay_us` optionally sleeps at the participant before
//! each fragment *message* (a whole `ExecBatch` counts once) — the live
//! twin of `CostModel::remote_msg_us` — so 2PC costs wall-clock lock-hold
//! time as it would over a network.
//!
//! ## Early prepare + speculative execution (OP4, §2/§4.4)
//!
//! When the advisor declares locked partitions *finished* mid-transaction
//! (`Updates::finished`, gated by `TxnPlan::early_prepare`), the
//! coordinator sends those workers an early-prepare at the end of the
//! batch and releases their slots in the lock manager at once — the
//! prepare *is* the unsolicited 2PC vote, nothing is awaited, and the
//! worker (serving this lane's commands in order) is guaranteed to
//! observe it before anything a later lock holder pushes. Unlike the
//! simulator's engine the base partition is releasable too: live control
//! code runs on the coordinating client, so the base is just another
//! fragment executor. A *read-only* participant simply drops the
//! reservation — nothing to flush, undo, or decide (the classic 2PC
//! read-only optimization). A participant whose fragment *wrote* keeps
//! the fragment's undo log as the base of a [`storage::SpeculationStack`], and
//! opens a speculation window: until the 2PC outcome arrives — pushed on
//! the worker's control channel as `CtrlMsg::SpecFinish` — queued
//! single-partition transactions execute *speculatively*, with undo
//! logging force-enabled regardless of OP3 (§4.3). A speculative
//! transaction that touched no table written inside the window (by the
//! fragment or by a deferred speculative commit) is acknowledged
//! immediately and its effects are final — §2 OP4's non-conflicting case,
//! the same table-mask rule the simulator charges; every *conflicting*
//! completion — commit, user abort, or mispredict — is deferred, and a
//! conflicting speculative commit pushes its undo log onto the stack. On
//! commit the stack is discarded and the deferred acknowledgements go out
//! in completion order; on abort the stack unwinds LIFO (cascading
//! rollback) restoring the shard byte-for-byte, and each deferred client
//! receives `Cascaded` — it transparently re-derives the same plan with a
//! fresh advisor session and retries (not counted as a mispredict
//! restart). Reservations from *other* distributed transactions that
//! arrive during a speculation window are admitted only once the window
//! resolves; touching an early-released partition again is a mispredict,
//! exactly as in the simulator.
//!
//! Deadlock-freedom still holds: a speculating worker waits only for the
//! coordinator that early-prepared it, and "C' reserves a worker
//! speculating for C" implies C' acquired its (atomic, all-or-nothing)
//! lock set *after* C released that slot — so every wait edge points from
//! a later-granted transaction to an earlier-granted one and no cycle can
//! form; blocked single-partition clients hold no locks at all.
//!
//! ## On-line model maintenance (§4.5)
//!
//! Every session teardown (commit, user abort, or mispredict replan) may
//! yield structured [`TxnFeedback`]; clients push it into a *bounded*
//! channel with `try_send` — never blocking the acknowledgement path — and
//! a background **maintenance thread** (spawned by [`LiveRuntime::start`]
//! when the advisor provides a [`LiveMaintainer`]) drains it, accumulates per-model
//! accuracy and transition deltas, rebuilds only drifted models, and
//! publishes them as new advisor epochs that *fresh* transactions pick up
//! while in-flight ones keep their snapshot (see DESIGN.md §5). Dropped
//! records (`RunMetrics::feedback_dropped`) cost signal, not correctness.
//!
//! ## Per-stage time attribution (Fig. 11, live)
//!
//! Every [`Client::call`] attributes its wall time across the paper's
//! Fig. 11 buckets into `RunMetrics::profile`: advisor planning/updates →
//! `Estimation`; fragment/control-code execution → `Execution`; lock
//! acquisition, 2PC, and the sequenced commit flush → `Coordination`,
//! further split into `CoordSub::{LockWait, TwoPc, Flush}` sub-buckets on
//! the distributed path; time a fast-path message sat on the worker queue
//! → `Queueing`; the unattributed remainder (channel hops, group-commit
//! waits measured at the worker, cascade retries) → `Other`. `Planning`
//! stays a sim-only bucket — the live runtime ships pre-compiled
//! fragments.

use crate::advisor::{
    LiveAdvisor, LiveMaintainer, PlanContext, Request, TxnFeedback, TxnOutcome, TxnPlan,
};
use crate::catalog::Catalog;
use crate::durability::{DurabilityConfig, RecoveryReport};
use crate::exec::{execute_fragment, ExecutedQuery};
use crate::metrics::RunMetrics;
use crate::procedure::{ProcedureRegistry, Step};
use crate::profiler::{Bucket, CoordSub};
use crate::sim::RequestGenerator;
use common::flush::FlushSequencer;
use common::ring::{self, Doorbell, PushError};
use common::sync::atomic::{AtomicU64, Ordering};
use common::sync::mpsc::{channel, sync_channel, Receiver, Sender, SyncSender, TryRecvError};
use common::sync::{Arc, Condvar, Mutex, PoisonError};
use common::{
    derive_seed, seeded_rng, Error, FxHashMap, PartitionId, PartitionSet, ProcId, QueryId, Result,
    Value,
};
use rand::rngs::SmallRng;
use rand::Rng;
use std::collections::VecDeque;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use storage::{Database, Row, Shard, SpeculationStack, UndoLog};
use wal::{FileDevice, LogRecord, LogSet};

use crate::metrics::MaintenanceReport;

/// Watchdog interval of a speculating worker. The 2PC outcome normally
/// arrives *pushed* on the worker's control channel
/// ([`CtrlMsg::SpecFinish`]), whose sender rings the doorbell, so the
/// worker parks like any idle worker; this timeout only bounds how long a
/// window can dangle if its coordinator died without sending an outcome
/// (detected as a disconnect of the reservation channel). Rare by
/// construction, so it can be long — a speculating worker costs ~40
/// wake-ups per second, which matters on single-core hosts.
const SPEC_WATCHDOG: Duration = Duration::from_millis(25);

/// Watchdog interval of a client parked on its reply slot. A reply
/// normally arrives as a condvar signal; the tick only bounds how long a
/// client can sleep past a shutdown that retired its lane with the call
/// still buffered (the "calls racing shutdown fail cleanly" contract).
const REPLY_WATCHDOG: Duration = Duration::from_millis(25);

/// Capacity of one client→worker SPSC lane. A blocking [`Client`] has at
/// most one call in flight, so any power of two ≥ 2 works; 8 leaves slack
/// for embedders that pipeline a few calls per thread before blocking.
const LANE_CAPACITY: usize = 8;

/// Backlog depth at which the adaptive group-commit window reaches the
/// full `commit_flush_us` cap (see [`adaptive_flush`]).
const FLUSH_KNEE: usize = 8;

/// Bounded yield-spin a client performs on its reply slot before falling
/// back to the condvar ([`ReplySlot::take_or_abandon`]). Each iteration is
/// one `yield_now`, so even on a single-core host the worker gets the CPU
/// immediately. Sized past the typical closed-loop reply wait (a few
/// peers' service plus scheduling) — a client that parks mid-steady-state
/// costs a futex wait *and* puts a wake on the worker's ack path, so the
/// budget errs long; it is only ever burned in full when no reply is
/// coming (shutdown races), where the condvar backstop still bounds the
/// wait.
const REPLY_SPIN: u32 = 256;

/// Bounded yield-spin re-sweeps an out-of-work worker performs before
/// engaging the doorbell park protocol ([`worker_loop`]). Sized to cover
/// a full closed-loop client cohort's between-call processing (each
/// yield donates the CPU to one of them), so the steady state never pays
/// a park/unpark futex cycle per batch.
const IDLE_SPIN: u32 = 256;

/// Transparent cascade redos of one request before the client falls back to
/// a lock-all plan. Cascades are rare by construction (they need an
/// early-prepared transaction to abort *and* a conflicting speculative
/// execution in its window), so the bound exists purely as a liveness
/// backstop against a pathological stream of aborting windows on one
/// partition.
const MAX_CASCADE_RETRIES: u32 = 8;

/// Live-runtime parameters. The first two fields drive only the
/// closed-loop [`run_live`] wrapper (an embedding application mints its
/// own [`Client`] handles and decides its own request volume); the rest
/// configure the [`LiveRuntime`] itself.
#[derive(Debug, Clone)]
pub struct LiveConfig {
    /// Closed-loop client threads per partition in [`run_live`] (the paper
    /// uses 4). Ignored by [`LiveRuntime::start`].
    pub clients_per_partition: u32,
    /// Requests each [`run_live`] client issues before its stream runs
    /// dry. Ignored by [`LiveRuntime::start`].
    pub requests_per_client: u64,
    /// Mispredict restarts before falling back to lock-all.
    pub max_restarts: u32,
    /// Seed for the clients' random-partition draws.
    pub seed: u64,
    /// *Maximum* group-commit coalescing window per partition (µs, 0 =
    /// off). Models the durable group-commit H-Store overlaps. On the
    /// fast path this caps the *adaptive* window a commit group may stay
    /// open, scaled by the backlog observed as the group runs — zero when
    /// no one is waiting (the group cannot grow, so flush immediately),
    /// the full cap under deep backlog (see `adaptive_window`) — and
    /// the window elapses under useful work, never as a sleep. A
    /// distributed write commit pays this cap once, as the coordinator's
    /// wait on the shared [`common::flush::FlushSequencer`], where
    /// concurrent coordinators and worker group closes coalesce into one
    /// device operation instead of sleeping per participant.
    pub commit_flush_us: u64,
    /// One-way coordinator→participant message latency (µs of real sleep at
    /// the participant before it processes a fragment *message*, 0 = off;
    /// a whole `FragCmd::ExecBatch` counts once) — the live twin of
    /// `CostModel::remote_msg_us`. In-process lanes are otherwise
    /// near-instant, which would hide exactly the cost OP4 eliminates:
    /// the 2PC rounds a reserved partition sits through.
    pub msg_delay_us: u64,
    /// Bound of the session-teardown → maintenance-thread feedback channel
    /// (§4.5). Clients never block on maintenance: a full channel drops the
    /// record (counted in `RunMetrics::feedback_dropped`) and the
    /// transaction's acknowledgement proceeds untouched.
    pub feedback_capacity: usize,
    /// Real durability (DESIGN.md §7): when set, every committed writer is
    /// command-logged under the configured directory and its
    /// acknowledgement is withheld until a real `write+fsync` covers it
    /// (group commit via the shared [`FlushSequencer`], the fsync itself
    /// off-worker on a dedicated flusher thread). `None` keeps the seed
    /// behavior: `commit_flush_us` *models* the device as a sleep.
    pub durability: Option<DurabilityConfig>,
}

impl Default for LiveConfig {
    fn default() -> Self {
        LiveConfig {
            clients_per_partition: 4,
            requests_per_client: 500,
            max_restarts: 2,
            seed: 7,
            commit_flush_us: 0,
            msg_delay_us: 0,
            feedback_capacity: 4096,
            durability: None,
        }
    }
}

/// Grants distributed transactions their whole lock set, sharded by
/// partition.
///
/// One FIFO ticket queue and condvar per partition: transactions on
/// disjoint shards never touch the same mutex (the previous design
/// serialized every grant, release, and wakeup of the whole cluster on one
/// global mutex — a scalability ceiling exactly where distributed traffic
/// is hottest). A transaction claims its partitions one at a time in
/// ascending partition order, waiting FIFO at each; the globally
/// consistent claim order means no cycle of lock waits can form (the
/// classic ordered-resource argument — it replaces the old design's
/// all-or-nothing-under-one-mutex argument). Single-partition
/// transactions never touch this structure: their ordering is the owning
/// worker's queue itself.
///
/// Fairness: per-partition FIFO by global ticket, which preserves the old
/// manager's FIFO-among-conflicting behaviour and additionally keeps a
/// lock-all transaction from being starved by a stream of small disjoint
/// ones (it holds its low partitions while queueing at the contended one).
struct LockManager {
    next_ticket: AtomicU64,
    shards: Vec<LockShard>,
}

struct LockShard {
    state: Mutex<ShardQueue>,
    cv: Condvar,
}

#[derive(Default)]
struct ShardQueue {
    /// Whether some transaction currently holds this partition's slot.
    busy: bool,
    /// Tickets waiting for this partition, FIFO.
    waiters: VecDeque<u64>,
}

impl LockManager {
    fn new(num_partitions: u32) -> Self {
        LockManager {
            next_ticket: AtomicU64::new(0),
            shards: (0..num_partitions.max(1))
                .map(|_| LockShard { state: Mutex::new(ShardQueue::default()), cv: Condvar::new() })
                .collect(),
        }
    }

    fn acquire(&self, set: PartitionSet) {
        // ordering: Relaxed — the ticket only needs global uniqueness and
        // atomicity of the counter itself; FIFO ordering per shard comes
        // from the shard mutex (the ticket is enqueued and compared only
        // under it), so no cross-thread publication rides on this RMW.
        // Verified by the ticket-FIFO model in tests/concurrency_models.rs.
        let ticket = self.next_ticket.fetch_add(1, Ordering::Relaxed);
        for p in set.iter() {
            let shard = &self.shards[p as usize];
            let mut st = shard.state.lock().expect("lock shard poisoned");
            st.waiters.push_back(ticket);
            while st.busy || st.waiters.front() != Some(&ticket) {
                st = shard.cv.wait(st).expect("lock shard poisoned");
            }
            st.waiters.pop_front();
            st.busy = true;
        }
    }

    fn release(&self, set: PartitionSet) {
        for p in set.iter() {
            let shard = &self.shards[p as usize];
            let mut st = shard.state.lock().expect("lock shard poisoned");
            debug_assert!(st.busy, "released a partition nobody holds");
            st.busy = false;
            let wake = !st.waiters.is_empty();
            drop(st);
            if wake {
                // Distinct tickets share the shard's condvar and only the
                // front one may proceed, so notify_all — a notify_one could
                // land on a non-front waiter and strand the front.
                shard.cv.notify_all();
            }
        }
    }

    /// Acquires `set` and returns a guard that releases it on drop — so a
    /// coordinator that unwinds mid-transaction cannot strand its lock set
    /// and wedge every later conflicting transaction.
    fn guard(&self, set: PartitionSet) -> LockGuard<'_> {
        self.acquire(set);
        LockGuard { mgr: self, set }
    }
}

struct LockGuard<'a> {
    mgr: &'a LockManager,
    set: PartitionSet,
}

impl LockGuard<'_> {
    /// Releases one partition's slot ahead of the rest (OP4 early prepare);
    /// the drop release then covers only the remaining set.
    fn release_early(&mut self, p: PartitionId) {
        if self.set.contains(p) {
            self.set.remove(p);
            self.mgr.release(PartitionSet::single(p));
        }
    }
}

impl Drop for LockGuard<'_> {
    fn drop(&mut self) {
        self.mgr.release(self.set);
    }
}

/// A fragment command sent to a reserved worker.
enum FragCmd {
    /// Execute this partition's slice of one query invocation. Legacy:
    /// production coordinators ship [`FragCmd::ExecBatch`]; workers keep
    /// serving `Exec` for hand-driven protocol tests (hence the allow —
    /// only `cfg(test)` code constructs it).
    #[allow(dead_code)]
    Exec { proc: ProcId, query: QueryId, params: Vec<Value> },
    /// Every fragment this partition owes for one query batch, shipped as
    /// a single message (one lane push, one modeled network hop, one
    /// reply) instead of one `Exec` round trip per query. Items execute
    /// in batch order; the participant stops at its own first constraint
    /// violation — the coordinator re-derives the batch-global abort
    /// point from the merged per-item outcomes ([`FragReply::Batch`]),
    /// and the transaction rollback makes any item executed past it
    /// invisible, so outcomes are byte-identical to the unbatched path.
    ExecBatch { proc: ProcId, queries: Vec<(QueryId, Vec<Value>)> },
    /// Early prepare (OP4): the transaction is finished with this partition.
    /// With `speculate` (the fragment wrote here) the worker flushes — the
    /// unsolicited commit vote — keeps the fragment undo as a speculation
    /// base, and executes queued transactions speculatively until the 2PC
    /// outcome arrives. Without it (read-only fragment) the classic
    /// read-only participant optimization applies: nothing to flush, undo,
    /// or decide — the worker drops the reservation outright and never
    /// hears from this transaction again.
    Prepare { speculate: bool },
    /// Durable-mode preamble (DESIGN.md §7): the coordinator's first
    /// command to each participant, positioning the transaction's
    /// [`wal::LogRecord::DistBegin`] in that partition's command log
    /// *before* any of its fragments execute there — per-partition file
    /// order is the replay order, so the begin must precede every effect
    /// it covers. Carries the full request so replay can re-execute the
    /// procedure. No reply, no modeled network delay (it rides the same
    /// lane push cycle as the batch that follows it). Never sent when
    /// durability is off.
    LogBegin { txn_id: u64, proc: ProcId, args: Vec<Value> },
    /// Both 2PC rounds coalesced into one message per (coordinator,
    /// participant) pair: flush-and-vote plus the decision together.
    /// Outcome-equivalent to a split prepare/decide exchange because
    /// participants in this engine always vote yes (every fragment error
    /// already surfaced at execution, so the decision never depends on the
    /// vote round) — but one round trip and one modeled network hop where
    /// split rounds would cost two.
    VoteFinish { commit: bool },
}

/// A reserved worker's answer to a fragment command.
enum FragReply {
    /// One [`FragCmd::Exec`]'s rows (legacy path; read by test drivers).
    #[allow(dead_code)]
    Rows(Vec<Row>),
    /// Per-item outcomes of an [`FragCmd::ExecBatch`], in item order. A
    /// participant that hit a constraint stops there, so the vector may be
    /// shorter than the batch it answers; the coordinator only ever reads
    /// items up to the batch-global abort point, which is covered on every
    /// target (see `run_distributed`).
    Batch(Vec<BatchItem>),
    /// One [`FragCmd::Exec`]'s constraint violation (legacy path).
    #[allow(dead_code)]
    Constraint(String),
    Finished,
    Fatal(Error),
}

/// One query's outcome inside a [`FragReply::Batch`]. Fatal errors abort
/// the whole reply ([`FragReply::Fatal`]) rather than appearing per item.
enum BatchItem {
    Rows(Vec<Row>),
    Constraint(String),
}

/// Reservation of one worker by a distributed transaction's coordinator —
/// the *legacy* per-transaction channel pair, kept alongside the reusable
/// fragment lanes ([`FragConn`]) for hand-driven protocol tests and
/// embedders predating lanes. Production coordination registers one
/// [`CtrlMsg::FragLane`] per (client, worker) pair instead and reuses it
/// for every distributed transaction after: the partition lock *is* the
/// reservation, so the lock holder's first lane push opens service.
struct Reserve {
    frags: Receiver<FragCmd>,
    results: Sender<FragReply>,
}

/// One client's distributed-path connection at the worker: a reusable
/// bounded SPSC fragment lane plus the client's reusable fragment reply
/// slot — registered once per (client, worker) pair over the control
/// channel (mirroring the fast path's `CtrlMsg::Lane`) and reused by every
/// distributed transaction after, replacing two fresh channel allocations
/// per participant per transaction.
struct FragConn {
    frags: ring::Consumer<FragCmd>,
    replies: Arc<ReplySlot<FragReply>>,
}

/// Wall-clock stage timings measured at the worker for one fast-path
/// transaction, reported back to the coordinating client for Fig. 11
/// attribution (the client cannot observe queue wait or execution time
/// from its side of the channel).
#[derive(Debug, Clone, Copy, Default)]
struct StageTimes {
    /// Time the message sat on the worker queue before being picked up.
    queued_us: f64,
    /// Advisor time inside execution (`on_query_live`).
    est_us: f64,
    /// Execution time at the worker, minus the advisor share.
    exec_us: f64,
}

/// How a single-partition fast-path transaction ended at its worker.
enum SingleReply<S> {
    Done {
        committed: bool,
        session: S,
        accessed: PartitionSet,
        access_counts: FxHashMap<PartitionId, u32>,
        undo_disabled_ever: bool,
        /// Executed inside a speculation window (deferred acknowledgement).
        speculative: bool,
        times: StageTimes,
    },
    Mispredict {
        /// The request handed back for the replan — the client moved it
        /// into the message, so the reply returns ownership.
        req: Request,
        observed: PartitionSet,
        session: S,
        times: StageTimes,
    },
    /// The transaction executed speculatively and was rolled back by the
    /// cascade after the early-prepared transaction aborted; the client
    /// retries transparently with a fresh session (no restart counted).
    /// Carries the request back for the redo.
    Cascaded {
        req: Request,
    },
    Fatal(Error),
}

/// A single-partition fast-path message, carried on the issuing client's
/// dedicated SPSC ring lane to the base partition's worker — never on the
/// shared control channel (see [`WorkerGate`]).
struct SingleMsg<S> {
    req: Request,
    plan: TxnPlan,
    session: S,
    /// The client's reusable reply mailbox (one per client, every call
    /// reuses it — a blocking client has one call in flight at a time).
    reply: Arc<SingleSlot<S>>,
    /// When the client enqueued the message — the worker derives the
    /// queue-wait time (Fig. 11 `Queueing`) at pickup.
    enqueued: Instant,
}

/// Control-plane traffic to one worker. Rare by construction, so it stays
/// on a plain shared MPSC channel; the hot fast path rides the SPSC lanes.
enum CtrlMsg<S> {
    /// A client registered a new fast-path lane with this worker.
    Lane(ring::Consumer<SingleMsg<S>>),
    /// A client registered its distributed-path fragment lane with this
    /// worker (once per (client, worker) pair, like `Lane`). Fragment
    /// commands arrive on the lane afterwards — only the partition-lock
    /// holder pushes, so the lock itself serializes transactions on it.
    FragLane(FragConn),
    /// Legacy per-transaction reservation (see [`Reserve`]); constructed
    /// by hand-driven protocol tests only, still served by every worker.
    #[allow(dead_code)]
    Reserve(Reserve),
    /// 2PC outcome for the speculation window this worker has open — sent
    /// on the control channel (not the reservation channel) so a
    /// speculating worker parks on its doorbell instead of polling two
    /// receivers.
    SpecFinish {
        commit: bool,
    },
    /// Snapshot fence (durability): rotate this partition's command log to
    /// segment `gen` and serialize the shard's rows — at this worker's own
    /// main-loop service point, i.e. at a partition-transaction boundary —
    /// then reply on `done`. Sent by [`snapshot_cluster`] while it holds
    /// every partition's lock slot, so no distributed transaction spans
    /// the cut (fast-path singles stay live; each worker's rotation *is*
    /// its cut).
    Snapshot {
        gen: u64,
        done: Sender<()>,
    },
    Shutdown,
}

/// A client's fast-path reply mailbox payload (the reply slot is generic
/// so the same machinery serves fragment replies — see [`FragConn`]).
type SingleSlot<S> = ReplySlot<SingleReply<S>>;

/// A client's reusable one-shot reply mailbox: the worker fills it, the
/// client sleeps on the condvar. Replaces a fresh channel per call — the
/// `Arc` is cloned into each message but never reallocated. One slot per
/// (client, payload kind): fast-path calls block on a [`SingleSlot`],
/// distributed coordination keeps one `ReplySlot<FragReply>` per worker —
/// either way at most one reply is outstanding per slot (ping-pong).
struct ReplySlot<T> {
    state: Mutex<Option<T>>,
    cv: Condvar,
    /// 1 while the owning client is blocked in a condvar wait (it spins
    /// first — see [`ReplySlot::take_or_abandon`]). Lets [`ReplySlot::put`]
    /// skip the futex-wake syscall in the common case where the client is
    /// still spinning and will observe the reply on its next probe.
    sleeper: AtomicU64,
}

impl<T> ReplySlot<T> {
    fn new() -> Self {
        ReplySlot { state: Mutex::new(None), cv: Condvar::new(), sleeper: AtomicU64::new(0) }
    }

    /// Fills the slot and wakes the waiting client. Empty by contract:
    /// the owning client blocks for each call's reply before reusing it.
    fn put(&self, reply: T) {
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        debug_assert!(st.is_none(), "reply slot already full");
        *st = Some(reply);
        drop(st);
        // ordering: Relaxed — no lost wakeup possible. A client only sets
        // `sleeper` while holding `state`, before the wait releases it; if
        // this load misses the flag, our mutex section above must have run
        // *before* the client's final empty-check of the slot, so the
        // client sees the reply under the lock and never sleeps. (The
        // client's store happens-before our lock acquisition whenever it
        // actually reached the wait, making the flag visible here.)
        if self.sleeper.load(Ordering::Relaxed) != 0 {
            self.cv.notify_all();
        }
    }

    /// Blocks until a reply arrives. `abandoned` is polled on watchdog
    /// ticks: once it reports true (the worker retired this client's lane
    /// — possibly discarding the buffered call at shutdown) and the slot
    /// is still empty, no reply can ever arrive, so give up with `None`.
    fn take_or_abandon(&self, abandoned: impl Fn() -> bool) -> Option<T> {
        // Fast-path replies land within microseconds of the doorbell ring,
        // so a bounded yield-spin usually collects them without paying the
        // condvar's futex sleep/wake round trip — which would otherwise
        // dominate the call's coordination share, especially on small
        // hosts where the wake is a full scheduler pass. The condvar wait
        // below stays the correctness path; the spin is best-effort.
        for _ in 0..REPLY_SPIN {
            {
                let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
                if let Some(r) = st.take() {
                    return Some(r);
                }
            }
            std::thread::yield_now();
        }
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        // ordering: Relaxed — published to the worker by the mutex: the
        // store precedes every release of `state` below (the waits), so a
        // `put` that finds the slot unclaimed observes it (see `put`).
        self.sleeper.store(1, Ordering::Relaxed);
        let reply = loop {
            if let Some(r) = st.take() {
                break Some(r);
            }
            if abandoned() {
                break None;
            }
            let (g, _) =
                self.cv.wait_timeout(st, REPLY_WATCHDOG).unwrap_or_else(PoisonError::into_inner);
            st = g;
        };
        // ordering: Relaxed — same-thread cleanup; the next call's spin
        // phase must not leave stale wake requests behind.
        self.sleeper.store(0, Ordering::Relaxed);
        reply
    }

    /// Waits up to `dur` for a reply — test hook for deferred-ack checks.
    #[cfg(test)]
    fn take_within(&self, dur: Duration) -> Option<T> {
        let deadline = Instant::now() + dur;
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        // ordering: Relaxed — published by the mutex, as in
        // `take_or_abandon`.
        self.sleeper.store(1, Ordering::Relaxed);
        let reply = loop {
            if let Some(r) = st.take() {
                break Some(r);
            }
            let now = Instant::now();
            if now >= deadline {
                break None;
            }
            let (g, _) =
                self.cv.wait_timeout(st, deadline - now).unwrap_or_else(PoisonError::into_inner);
            st = g;
        };
        self.sleeper.store(0, Ordering::Relaxed);
        reply
    }
}

/// One worker's client-facing intake: the shared control channel plus the
/// doorbell that wakes it out of an idle park. Fast-path producers push
/// onto their own lane and then ring the bell directly.
struct WorkerGate<S> {
    ctrl: Sender<CtrlMsg<S>>,
    bell: Doorbell,
}

impl<S> WorkerGate<S> {
    /// Sends a control message and rings the doorbell — every sender must
    /// ring after publishing work, or a parked worker sleeps through it.
    /// Returns false if the worker is gone (its receiver dropped).
    fn send_ctrl(&self, msg: CtrlMsg<S>) -> bool {
        let ok = self.ctrl.send(msg).is_ok();
        self.bell.ring();
        ok
    }
}

/// A record or a shutdown sentinel on the session-teardown → maintenance
/// channel. The explicit `Stop` lets [`LiveRuntime::shutdown`] end the
/// maintenance thread even while [`Client`] handles (each holding a sender
/// clone through [`Shared`]) are still alive in the embedding application.
enum FeedbackMsg {
    Record(TxnFeedback),
    Stop,
}

/// Everything the runtime's threads share. One `Arc<Shared>` is held by
/// the [`LiveRuntime`] handle, every worker thread, the maintenance
/// thread, and every minted [`Client`] — the ownership inversion that lets
/// the runtime outlive the stack frame that started it (no scoped
/// borrows).
struct Shared<A: LiveAdvisor> {
    registry: ProcedureRegistry,
    catalog: Catalog,
    advisor: A,
    cfg: LiveConfig,
    num_partitions: u32,
    commit_flush: Duration,
    msg_delay: Duration,
    /// One control-channel + doorbell gate per partition worker. Fast-path
    /// traffic bypasses the gate's channel entirely: it rides the issuing
    /// client's SPSC lane and only rings the gate's bell.
    workers: Vec<WorkerGate<A::Session>>,
    locks: LockManager,
    /// Cross-worker commit-flush sequencer for the shared log device:
    /// worker group commits and coordinator 2PC durability waits all go
    /// through it, so concurrent flush demands — from *different* workers
    /// and coordinators — coalesce into one device operation (epoch-
    /// ticketed; see [`common::flush`]). A no-op when `commit_flush` is
    /// zero.
    seq: FlushSequencer,
    /// Run-wide counters: [`Client::call`] folds each transaction's
    /// tallies in here *once, at the end of the call* — per-call scratch
    /// lives in cheap locals on the client, so the fast path touches this
    /// mutex exactly once per transaction and allocates nothing for it.
    /// Mid-run [`LiveRuntime::metrics`] snapshots therefore lag by at most
    /// the calls currently in flight.
    metrics: Mutex<RunMetrics>,
    /// Bounded feedback channel toward the maintenance thread (§4.5);
    /// `None` when the advisor has no [`LiveMaintainer`].
    fb_tx: Option<SyncSender<FeedbackMsg>>,
    /// Next [`Client`] id — also selects the client's RNG stream.
    next_client: AtomicU64,
    started: Instant,
    /// Real-durability state ([`LiveConfig::durability`]): the open
    /// command-log segments, the txn-id allocator, snapshot bookkeeping,
    /// and the flusher-thread intake. `None` keeps the seed's simulated
    /// device.
    durable: Option<Durable<A::Session>>,
}

/// Live durability state (DESIGN.md §7), shared by workers, coordinators,
/// the flusher thread, and the snapshotter.
struct Durable<S> {
    logs: Arc<LogSet>,
    /// Next command-log transaction id. Ids only need global uniqueness —
    /// replay order comes from per-partition file order, never from ids.
    next_txn_id: AtomicU64,
    /// Snapshot generations completed (marker written).
    snapshots_taken: AtomicU64,
    /// Generation the open segments belong to; a snapshot fence bumps it.
    active_gen: AtomicU64,
    /// Milliseconds [`LiveRuntime::recover`] spent before this runtime
    /// started serving; zero for a fresh boot.
    recovery_ms: f64,
    /// Intake of the dedicated flusher thread ([`flusher_loop`]): closed
    /// durable commit groups ride here with their sequencer ticket, so the
    /// real fsync happens off every worker's serving path.
    flusher: Sender<FlushJob<S>>,
    /// Group-commit accumulation window
    /// ([`DurabilityConfig::group_commit_window`]): how long the flusher
    /// lets further groups pile in behind the first before one device
    /// flush covers them all.
    group_window: Duration,
    /// Strict read fence ([`DurabilityConfig::read_fence`]): hold
    /// read-only fast-path acks behind the covering flush when their
    /// partition has not-yet-durable writes.
    read_fence: bool,
}

impl<S> Durable<S> {
    fn next_id(&self) -> u64 {
        // ordering: Relaxed — ids only need uniqueness (see field docs);
        // every use is published through a channel or the log mutex.
        self.next_txn_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Command-logs one committed single-partition writer at its service
    /// position in `p`'s log.
    fn append_local(&self, p: PartitionId, req: &Request) {
        let record =
            LogRecord::Local { txn_id: self.next_id(), proc: req.proc, args: req.args.clone() };
        self.logs.append(p, &record);
    }
}

/// One unit of flusher-thread work: a closed commit group whose held acks
/// may only be released once the device flush covering `ticket` completed.
enum FlushJob<S> {
    Group { ticket: u64, acks: Vec<DeferredAck<S>> },
    Stop,
}

/// The dedicated flusher thread (durable mode only): receives closed
/// commit groups from every worker, coalesces whatever else is already
/// queued (one device wait at the max ticket covers every earlier one —
/// the sequencer's epoch argument), performs the real `write+fsync`
/// through the shared [`FlushSequencer`], and releases the held acks.
/// Workers never fsync on their serving path; distributed coordinators
/// wait on the same sequencer from their client threads, so both demand
/// streams coalesce into the same device operations.
fn flusher_loop<A: LiveAdvisor>(env: &Shared<A>, rx: &Receiver<FlushJob<A::Session>>) {
    let durable = env.durable.as_ref().expect("flusher thread requires durability state");
    let device = FileDevice(Arc::clone(&durable.logs));
    let mut last_flush: Option<Instant> = None;
    while let Ok(job) = rx.recv() {
        let FlushJob::Group { mut ticket, mut acks } = job else { return };
        // Group-commit pacing: bound the fsync rate by 1/window without
        // taxing an idle device. A group arriving on the heels of the
        // previous flush sleeps only the *remainder* of the window,
        // letting concurrently closing groups land behind it so the drain
        // below folds them into the same device flush — on a loaded (or
        // single-core) host the sub-window groups arrive one at a time,
        // and flushing eagerly would pay one fsync each. A group arriving
        // after a quiet spell flushes immediately: its coalescing already
        // happened, nothing else is coming.
        if let Some(t0) = last_flush {
            let elapsed = t0.elapsed();
            if elapsed < durable.group_window {
                flush(durable.group_window - elapsed);
            }
        }
        let mut stop = false;
        loop {
            match rx.try_recv() {
                Ok(FlushJob::Group { ticket: t, acks: mut more }) => {
                    ticket = ticket.max(t);
                    acks.append(&mut more);
                }
                Ok(FlushJob::Stop) => {
                    stop = true;
                    break;
                }
                Err(_) => break,
            }
        }
        last_flush = Some(Instant::now());
        env.seq.wait_durable_dev(ticket, &device);
        release_acks(&mut acks);
        if stop {
            return;
        }
    }
}

fn flush(d: Duration) {
    if !d.is_zero() {
        std::thread::sleep(d);
    }
}

/// A fast-path reply held back until its group's commit flush completes
/// (group commit: one flush covers every write in the group).
type DeferredAck<S> = (Arc<SingleSlot<S>>, SingleReply<S>);

/// Drains the control channel: registers new lanes, parks reservations,
/// records shutdown. With `window_finish` set (a speculation window is
/// open) the first 2PC outcome is stored there and the drain stops — the
/// outcome ends the window, and everything behind it stays queued for
/// after; without it a stray outcome (its window already resolved via the
/// disconnect watchdog) is dropped. Never blocks: the doorbell is the
/// only park/wake mechanism, and every control sender rings it.
fn gather_ctrl<S>(
    ctrl: &Receiver<CtrlMsg<S>>,
    lanes: &mut Vec<ring::Consumer<SingleMsg<S>>>,
    frag_lanes: &mut Vec<FragConn>,
    resv: &mut VecDeque<Reserve>,
    snaps: &mut Vec<(u64, Sender<()>)>,
    shutdown: &mut bool,
    mut window_finish: Option<&mut Option<bool>>,
) {
    while let Ok(m) = ctrl.try_recv() {
        match m {
            CtrlMsg::Lane(l) => lanes.push(l),
            CtrlMsg::FragLane(c) => frag_lanes.push(c),
            CtrlMsg::Reserve(r) => resv.push_back(r),
            CtrlMsg::Snapshot { gen, done } => snaps.push((gen, done)),
            CtrlMsg::SpecFinish { commit } => {
                if let Some(slot) = window_finish.as_deref_mut() {
                    *slot = Some(commit);
                    return;
                }
            }
            CtrlMsg::Shutdown => *shutdown = true,
        }
    }
}

/// Fair sweep over the fast-path lanes: one pop per lane per pass,
/// round-robin, until a full pass yields nothing — no lane can starve
/// another, and a blocking client has at most one call in flight per
/// lane, so the sweep is bounded and ends as soon as every client is
/// waiting on a reply. Lanes whose producer dropped (client gone) are
/// retired once drained.
fn sweep_lanes<S>(lanes: &mut Vec<ring::Consumer<SingleMsg<S>>>, run: &mut Vec<SingleMsg<S>>) {
    loop {
        let mut any = false;
        for lane in lanes.iter_mut() {
            if let Some(m) = lane.pop() {
                run.push(m);
                any = true;
            }
        }
        if !any {
            break;
        }
    }
    lanes.retain(|l| !l.is_closed());
}

/// Total fast-path backlog currently buffered across this worker's lanes.
fn lane_depth<S>(lanes: &[ring::Consumer<SingleMsg<S>>]) -> usize {
    lanes.iter().map(ring::Consumer::len).sum()
}

/// Adaptive group-commit coalescing window: how long commit
/// acknowledgements may stay deferred past the oldest unflushed commit,
/// as a function of the *observed backlog*. With nobody waiting the group
/// is as large as it will get — zero window, flush immediately; as the
/// backlog grows the window widens linearly, reaching the full
/// `commit_flush_us` cap at [`FLUSH_KNEE`], coalescing more commits into
/// one flush exactly when queue depth says load is high (the H-Store
/// group-commit timeout, made adaptive). The worker keeps *serving* while
/// a window is open — the deadline elapses under useful work, never under
/// a sleep, so the cap bounds ack latency without adding any.
fn adaptive_window(cap: Duration, depth: usize) -> Duration {
    if depth == 0 || cap.is_zero() {
        return Duration::ZERO;
    }
    #[allow(clippy::cast_possible_truncation)]
    let k = depth.min(FLUSH_KNEE) as u32;
    cap * k / FLUSH_KNEE as u32
}

/// Releases the held acknowledgements of a closing commit group in
/// completion order (group ack). The group's one flush is the adaptive
/// window that just elapsed — spent serving, not sleeping (see
/// [`adaptive_window`]). 2PC durability is not paid here either: the
/// *coordinator* waits once per distributed commit through the shared
/// [`FlushSequencer`], covering every participant's writes.
fn release_acks<S>(pending: &mut Vec<DeferredAck<S>>) {
    for (slot, reply) in pending.drain(..) {
        slot.put(reply);
    }
}

/// Closes the open commit group: registers its flush demand with the
/// shared sequencer (a non-empty group always contains a durable write —
/// acks are only deferred from the first unflushed commit on), then
/// releases the held acks. On the simulated device the sequencer call is
/// pure accounting — the group's flush already elapsed as the adaptive
/// window — but it lets `RunMetrics` report how many group closes
/// coalesced with a flush another worker or coordinator had in flight.
/// In durable mode the group instead rides the flusher thread
/// ([`release_group`]); the returned ticket becomes the worker's new
/// `last_ticket` high-water mark.
fn close_group<A: LiveAdvisor>(
    env: &Shared<A>,
    pending: &mut Vec<DeferredAck<A::Session>>,
    last_ticket: u64,
) -> Option<u64> {
    if pending.is_empty() {
        return None;
    }
    release_group(env, std::mem::take(pending), true, last_ticket)
}

/// Releases one closed commit group under the configured durability
/// regime. Simulated device: the adaptive window already "was" the flush,
/// so register the demand and ack inline (the seed's behavior,
/// byte-for-byte). Durable mode: the group's acks may only go out after a
/// real `write+fsync` covers its log records, so the group is handed to
/// the flusher thread with a sequencer ticket — `wrote` groups get a
/// fresh ticket; read-only groups (a read that observed a closed-but-
/// unflushed group's writes) ride `last_ticket`, the ticket of the last
/// group this worker routed, which the flusher's FIFO guarantees is
/// already durable by the time the job is seen, so no extra device
/// operation results. Returns the ticket the group rides, if any.
fn release_group<A: LiveAdvisor>(
    env: &Shared<A>,
    mut acks: Vec<DeferredAck<A::Session>>,
    wrote: bool,
    last_ticket: u64,
) -> Option<u64> {
    let Some(d) = &env.durable else {
        if wrote && !env.commit_flush.is_zero() {
            env.seq.commit_group();
        }
        release_acks(&mut acks);
        return None;
    };
    let ticket = if wrote {
        env.seq.enqueue()
    } else if last_ticket > env.seq.durable_epoch() {
        last_ticket
    } else {
        // Everything this worker ever routed is already durable: the
        // read-only replies depend on durable state only. Ack inline.
        release_acks(&mut acks);
        return None;
    };
    if let Err(err) = d.flusher.send(FlushJob::Group { ticket, acks }) {
        // Flusher already stopped (teardown race): flush synchronously
        // and release here — held acks must never be dropped.
        let FlushJob::Group { ticket, mut acks } = err.0 else { return Some(ticket) };
        env.seq.wait_durable_dev(ticket, &FileDevice(Arc::clone(&d.logs)));
        release_acks(&mut acks);
    }
    Some(ticket)
}

/// Takes a transaction-consistent snapshot of the whole cluster: fences
/// every partition through the lock manager (no distributed transaction
/// can straddle the cut — every rotation completes before any new lock
/// grant), has each worker rotate its command log to generation `gen` and
/// serialize its shard, then publishes the generation's completion marker
/// and truncates segments below it. Returns the published generation, or
/// `None` when durability is off or a worker died mid-snapshot (no
/// marker ⇒ recovery ignores the partial generation).
fn snapshot_cluster<A: LiveAdvisor>(env: &Shared<A>) -> Option<u64> {
    let d = env.durable.as_ref()?;
    // ordering: Relaxed — the lock fence below serializes the bump against
    // every worker's rotation; the counter only names the generation.
    let gen = d.active_gen.fetch_add(1, Ordering::Relaxed) + 1;
    let guard = env.locks.guard(PartitionSet::all(env.num_partitions));
    let (done_tx, done_rx) = channel();
    let mut sent = 0usize;
    for gate in env.workers.iter() {
        if gate.send_ctrl(CtrlMsg::Snapshot { gen, done: done_tx.clone() }) {
            sent += 1;
        }
    }
    drop(done_tx);
    if sent != env.num_partitions as usize {
        return None;
    }
    for _ in 0..sent {
        if done_rx.recv().is_err() {
            return None;
        }
    }
    drop(guard);
    wal::write_marker(d.logs.dir(), gen).expect("write snapshot marker");
    // ordering: Relaxed — metrics-only counter.
    d.snapshots_taken.fetch_add(1, Ordering::Relaxed);
    let _ = wal::truncate_below(d.logs.dir(), gen);
    Some(gen)
}

/// One partition's server loop: collect work *in runs* until shutdown,
/// then hand the shard back. Each run is a control-channel drain
/// ([`gather_ctrl`]) followed by a fair lane sweep ([`sweep_lanes`]); if
/// both come up empty the worker parks on its doorbell under the
/// [`common::ring::Doorbell`] protocol (announce intent, mandatory second
/// sweep, then sleep).
///
/// Committed writes form one open *group* whose acknowledgements are
/// held in `pending` until the group's single commit flush — and the
/// group stays open *across* drained runs while backlog remains, up to
/// the adaptive coalescing deadline ([`adaptive_window`]): the window
/// elapses under useful work, so coalescing costs the backlog nothing.
/// The moment the backlog empties (or the deadline passes, or a
/// reservation / shutdown closes the group) the flush covers the whole
/// group and the held acks go out in completion order (group ack). A
/// reservation from a distributed transaction is admitted only after the
/// open group is flushed and acknowledged, so the distributed transaction
/// observes exactly the state a one-message-at-a-time loop would have
/// produced.
///
/// Reservations that arrive during a speculation window stay parked in
/// `resv` and are admitted once the window resolves (they may open
/// windows of their own). At shutdown, calls still buffered in the lanes
/// are failed cleanly ([`fail_lanes`]) rather than executed — a client
/// racing shutdown gets an error, never silence.
fn worker_loop<A: LiveAdvisor>(
    mut shard: Shard,
    ctrl: &Receiver<CtrlMsg<A::Session>>,
    env: &Shared<A>,
    me: usize,
) -> Shard {
    let bell = &env.workers[me].bell;
    let mut lanes: Vec<ring::Consumer<SingleMsg<A::Session>>> = Vec::new();
    let mut frag_lanes: Vec<FragConn> = Vec::new();
    let mut resv: VecDeque<Reserve> = VecDeque::new();
    let mut run: Vec<SingleMsg<A::Session>> = Vec::new();
    // Held acknowledgements of the open commit group, plus when its
    // oldest unflushed commit completed (the coalescing deadline's
    // anchor).
    let mut pending: Vec<DeferredAck<A::Session>> = Vec::new();
    // Pending cluster-snapshot requests (served only here, at the main
    // loop's top — never inside a speculation window), and the ticket of
    // the last commit group this worker routed to the flusher (durable
    // mode's read-ordering high-water mark; see [`release_group`]).
    let mut snaps: Vec<(u64, Sender<()>)> = Vec::new();
    let mut last_ticket = 0u64;
    let mut opened = Instant::now();
    let mut shutdown = false;
    while !shutdown {
        while let Some((gen, done)) = snaps.pop() {
            // The snapshot fence holds every partition lock, so this shard
            // is at a transaction boundary: close the group, rotate the
            // command log to the new generation (the rotation makes the
            // old segment durable first), and serialize the shard. The
            // `expect`s fire *before* the completion send — the
            // snapshotter abandons the generation if this worker dies.
            if let Some(t) = close_group(env, &mut pending, last_ticket) {
                last_ticket = t;
            }
            let d = env.durable.as_ref().expect("snapshot request requires durability state");
            d.logs.rotate(shard.partition(), gen).expect("rotate command log");
            wal::write_snapshot(d.logs.dir(), shard.partition(), gen, &shard.snapshot_rows())
                .expect("write snapshot");
            let _ = done.send(());
        }
        if let Some(r) = resv.pop_front() {
            // The reservation closes the open group: flush and ack before
            // the distributed transaction reads anything.
            if let Some(t) = close_group(env, &mut pending, last_ticket) {
                last_ticket = t;
            }
            if let Some(spec) = serve_reservation(&mut shard, env, FragSource::Legacy(r)) {
                shutdown = speculate(
                    &mut shard,
                    env,
                    ctrl,
                    bell,
                    &mut lanes,
                    &mut frag_lanes,
                    &mut resv,
                    &mut snaps,
                    &mut last_ticket,
                    spec,
                );
            }
            continue;
        }
        // A non-empty fragment lane is a reservation: its client holds
        // this partition's lock and pushed the transaction's first
        // command. At most one lane holds a live transaction (the lock is
        // exclusive); a closed lane's leftovers come from a coordinator
        // that died mid-transaction and are rolled back inside serve.
        if let Some(i) = frag_lanes.iter().position(|c| !c.frags.is_empty()) {
            if let Some(t) = close_group(env, &mut pending, last_ticket) {
                last_ticket = t;
            }
            let src = FragSource::Lane { conns: &mut frag_lanes, i, bell };
            if let Some(spec) = serve_reservation(&mut shard, env, src) {
                shutdown = speculate(
                    &mut shard,
                    env,
                    ctrl,
                    bell,
                    &mut lanes,
                    &mut frag_lanes,
                    &mut resv,
                    &mut snaps,
                    &mut last_ticket,
                    spec,
                );
            }
            continue;
        }
        frag_lanes.retain(|c| !c.frags.is_closed());
        gather_ctrl(ctrl, &mut lanes, &mut frag_lanes, &mut resv, &mut snaps, &mut shutdown, None);
        sweep_lanes(&mut lanes, &mut run);
        if shutdown {
            break;
        }
        if run.is_empty() && resv.is_empty() && !has_frags(&frag_lanes) && snaps.is_empty() {
            // No work means no backlog: close the group (normally already
            // closed by the post-run check below — this is the backstop
            // for a group left open by a race with an emptying lane).
            if let Some(t) = close_group(env, &mut pending, last_ticket) {
                last_ticket = t;
            }
            // Closed-loop clients resubmit within microseconds of their
            // acks, so a bounded yield-spin re-sweep usually catches the
            // next batch without a futex park/wake cycle (whose scheduler
            // latency would land squarely in the Queueing bucket). Only a
            // genuinely idle worker falls through to the park protocol.
            let mut found = false;
            for _ in 0..IDLE_SPIN {
                std::thread::yield_now();
                gather_ctrl(
                    ctrl,
                    &mut lanes,
                    &mut frag_lanes,
                    &mut resv,
                    &mut snaps,
                    &mut shutdown,
                    None,
                );
                sweep_lanes(&mut lanes, &mut run);
                if !run.is_empty()
                    || !resv.is_empty()
                    || has_frags(&frag_lanes)
                    || !snaps.is_empty()
                    || shutdown
                {
                    found = true;
                    break;
                }
            }
            if found {
                continue;
            }
            // Doorbell park protocol: announce intent, then the MANDATORY
            // second look — a ring that landed before the parked bit went
            // up is only visible here — and only then sleep.
            let token = bell.prepare_park();
            gather_ctrl(
                ctrl,
                &mut lanes,
                &mut frag_lanes,
                &mut resv,
                &mut snaps,
                &mut shutdown,
                None,
            );
            sweep_lanes(&mut lanes, &mut run);
            if run.is_empty()
                && resv.is_empty()
                && !has_frags(&frag_lanes)
                && snaps.is_empty()
                && !shutdown
            {
                bell.park(token);
            } else {
                bell.cancel_park();
            }
            continue;
        }
        // One timestamp per completion bounds two intervals at once: the
        // previous transaction's execution span and this one's queue wait
        // (execution starts when the predecessor finishes) — halving the
        // clock reads of a stamp-before-and-after scheme.
        let mut t_cursor = Instant::now();
        for msg in run.drain(..) {
            let SingleMsg { req, plan, session, reply, enqueued } = msg;
            let queued_us = t_cursor.duration_since(enqueued).as_secs_f64() * 1e6;
            let mut out = run_single(&mut shard, env, req, &plan, session, false);
            debug_assert!(out.spec_undo.is_none(), "non-speculative commit retained undo");
            let t_done = Instant::now();
            stamp_times(&mut out, queued_us, (t_done - t_cursor).as_secs_f64() * 1e6);
            t_cursor = t_done;
            if !pending.is_empty() || out.needs_flush() {
                // From the first unflushed durable write onward every
                // reply waits for the group flush: later transactions may
                // have observed the unflushed writes.
                if out.needs_flush() {
                    if let Some(d) = &env.durable {
                        // Command-log the committed writer at its service
                        // position, before its ack can be grouped.
                        let req =
                            out.req.as_ref().expect("committed fast path retains its request");
                        d.append_local(shard.partition(), req);
                    }
                }
                if pending.is_empty() {
                    opened = t_done;
                }
                pending.push((reply, out.reply));
                if env.durable.is_some() {
                    // Durable mode: close at the writer itself. The
                    // flusher's accumulation window does the cross-writer
                    // coalescing, so holding the group open through the
                    // rest of the drain would only add batch time to the
                    // writer's ack latency — and drag every read served
                    // behind it into the fence.
                    if let Some(t) = close_group(env, &mut pending, last_ticket) {
                        last_ticket = t;
                    }
                }
            } else if env.durable.as_ref().is_some_and(|d| d.read_fence)
                && last_ticket > env.seq.durable_epoch()
            {
                // Strict read fence: an earlier group this worker closed
                // may still be in the flusher's hands — and this reply may
                // depend on its writes. Ride the prior ticket through the
                // flusher (FIFO makes the release a no-wait, no new
                // device operation) instead of acking un-durable state.
                if let Some(t) = release_group(env, vec![(reply, out.reply)], false, last_ticket) {
                    last_ticket = t;
                }
            } else {
                // Nothing unflushed precedes this one in the group, so its
                // result depends on durable state only — ack now, at the
                // latency the one-at-a-time loop gave read-only traffic.
                reply.put(out.reply);
            }
        }
        if !pending.is_empty() {
            // The backlog is measured *after* the group executed: exactly
            // the traffic that piled up while we worked. An empty backlog
            // closes the group at once; otherwise the group stays open —
            // serving the backlog *is* the coalescing window — until the
            // adaptive deadline passes. A flush another worker or
            // coordinator has in flight also closes the group early: the
            // shared device is being written *right now*, so riding that
            // operation beats waiting for a window that would demand a
            // fresh one (the adaptive window, made cross-worker).
            let depth = lane_depth(&lanes);
            if depth == 0
                || opened.elapsed() >= adaptive_window(env.commit_flush, depth)
                || env.seq.flush_in_progress()
            {
                if let Some(t) = close_group(env, &mut pending, last_ticket) {
                    last_ticket = t;
                }
            }
        }
    }
    // Shutdown closes the open group before failing the stragglers: the
    // held acks are *completed* transactions and must reach their clients.
    close_group(env, &mut pending, last_ticket);
    fail_lanes(&mut run, &mut lanes);
    shard
}

/// Whether any registered fragment lane has a command buffered — a
/// distributed transaction is waiting to be served.
fn has_frags(frag_lanes: &[FragConn]) -> bool {
    frag_lanes.iter().any(|c| !c.frags.is_empty())
}

/// Shutdown teardown: calls swept but not yet executed, plus everything
/// still buffered in the lanes, fail cleanly — the client racing shutdown
/// gets an error rather than silence (its abandoned-lane watchdog is only
/// the backstop for a message discarded between push and sweep).
fn fail_lanes<S>(run: &mut Vec<SingleMsg<S>>, lanes: &mut [ring::Consumer<SingleMsg<S>>]) {
    let dead = |m: SingleMsg<S>| {
        m.reply.put(SingleReply::Fatal(Error::Other("runtime shut down".into())));
    };
    run.drain(..).for_each(&dead);
    for lane in lanes.iter_mut() {
        while let Some(m) = lane.pop() {
            dead(m);
        }
    }
}

/// What one fast-path execution produced: the client reply plus what the
/// speculation machinery needs to classify it (see [`speculate`]).
struct SingleOutcome<S> {
    reply: SingleReply<S>,
    /// The request, returned to the worker for cascade routing — `None`
    /// when the reply itself carries it (`Mispredict`/`Cascaded`).
    req: Option<Request>,
    /// The commit's undo log, retained only when executed speculatively
    /// (for the shard's [`SpeculationStack`]).
    spec_undo: Option<UndoLog>,
    /// [`crate::sim::table_bit`] mask of tables read or written.
    touched_tables: u64,
    /// Mask of tables written.
    wrote_tables: u64,
    /// Advisor time (`on_query_live`) inside this execution, for Fig. 11.
    est_us: f64,
}

impl<S> SingleOutcome<S> {
    fn plain(reply: SingleReply<S>, req: Option<Request>) -> Self {
        SingleOutcome {
            reply,
            req,
            spec_undo: None,
            touched_tables: 0,
            wrote_tables: 0,
            est_us: 0.0,
        }
    }

    /// Whether this transaction's group needs a commit flush: it committed
    /// and wrote something durable. The flush itself is the *caller's* job
    /// — one flush covers every such transaction in a drained run (group
    /// commit).
    fn needs_flush(&self) -> bool {
        matches!(self.reply, SingleReply::Done { committed: true, .. }) && self.wrote_tables != 0
    }
}

/// Microseconds elapsed since `t`.
fn us_since(t: Instant) -> f64 {
    t.elapsed().as_secs_f64() * 1e6
}

/// Stamps the worker-side stage timings (queue wait, advisor share,
/// execution) onto a fast-path reply; `span_us` is the transaction's
/// whole execution span as the caller's clock batching measured it.
fn stamp_times<S>(out: &mut SingleOutcome<S>, queued_us: f64, span_us: f64) {
    let times =
        StageTimes { queued_us, est_us: out.est_us, exec_us: (span_us - out.est_us).max(0.0) };
    match &mut out.reply {
        SingleReply::Done { times: t, .. } | SingleReply::Mispredict { times: t, .. } => *t = times,
        SingleReply::Cascaded { .. } | SingleReply::Fatal(_) => {}
    }
}

/// Executes one whole single-partition transaction on the owning worker —
/// the lock-free fast path. Mirrors `Simulation::try_execute` minus timing
/// and remote work.
///
/// With `speculating` set the transaction runs inside an open speculation
/// window: undo logging is force-enabled whatever OP3 decided (initial
/// `disable_undo` *and* runtime updates are ignored, §4.3 — the same
/// invariant the simulator applies), and a commit returns its undo log for
/// the caller to push onto the shard's [`SpeculationStack`] instead of
/// clearing it.
fn run_single<A: LiveAdvisor>(
    shard: &mut Shard,
    env: &Shared<A>,
    req: Request,
    plan: &TxnPlan,
    mut session: A::Session,
    speculating: bool,
) -> SingleOutcome<A::Session> {
    let me = shard.partition();
    debug_assert_eq!(plan.lock_set, PartitionSet::single(me), "fast path misrouted");
    let lock_set = plan.lock_set;
    let mut inst = env.registry.get(req.proc).instantiate(&req.args);
    let start_without_undo = plan.disable_undo && !speculating;
    let mut undo = if start_without_undo { UndoLog::disabled() } else { UndoLog::new() };
    let mut undo_disabled_ever = start_without_undo;
    let mut results: Option<Vec<Vec<Row>>> = None;
    let mut accessed = PartitionSet::EMPTY;
    let mut access_counts: FxHashMap<PartitionId, u32> = FxHashMap::default();
    let mut touched_tables = 0u64;
    let mut wrote_tables = 0u64;
    let mut est_us = 0.0f64;
    let mut pending_abort: Option<String> = None;
    loop {
        let step = match pending_abort.take() {
            Some(msg) => Step::Abort(msg),
            None => inst.next(results.as_deref()),
        };
        match step {
            Step::Queries(batch) => {
                // Validate targets before touching storage, exactly like the
                // simulator: the transaction learns the partitions of the
                // queries up to and including the first offending one.
                let mut seen = PartitionSet::EMPTY;
                let mut violation = false;
                for inv in &batch {
                    let def = env.catalog.proc(req.proc).query(inv.query);
                    let targets = def.estimate_partitions_n(env.num_partitions, &inv.params);
                    seen = seen.union(targets);
                    if !targets.is_subset(lock_set) {
                        violation = true;
                        break;
                    }
                }
                if violation {
                    if !undo.can_rollback() {
                        return SingleOutcome::plain(
                            SingleReply::Fatal(Error::UnrecoverableAbort {
                                txn: u64::from(req.proc) + 1000,
                            }),
                            Some(req),
                        );
                    }
                    if let Err(e) = shard.rollback(&mut undo) {
                        return SingleOutcome::plain(SingleReply::Fatal(e), Some(req));
                    }
                    return SingleOutcome {
                        reply: SingleReply::Mispredict {
                            req,
                            observed: accessed.union(seen),
                            session,
                            times: StageTimes::default(),
                        },
                        req: None,
                        spec_undo: None,
                        touched_tables,
                        wrote_tables,
                        est_us,
                    };
                }
                let mut batch_results = Vec::with_capacity(batch.len());
                for inv in batch {
                    let def = env.catalog.proc(req.proc).query(inv.query);
                    let is_write = def.is_write();
                    let rows = match execute_fragment(shard, def, &inv.params, &mut undo) {
                        Ok(rows) => rows,
                        Err(Error::Constraint(msg)) => {
                            pending_abort = Some(msg);
                            break;
                        }
                        Err(e) => return SingleOutcome::plain(SingleReply::Fatal(e), Some(req)),
                    };
                    accessed.insert(me);
                    *access_counts.entry(me).or_insert(0) += 1;
                    touched_tables |= crate::sim::table_bit(def.table);
                    if is_write {
                        wrote_tables |= crate::sim::table_bit(def.table);
                    }
                    let t_est = Instant::now();
                    let upd = env.advisor.on_query_live(
                        &mut session,
                        &ExecutedQuery {
                            query: inv.query,
                            params: inv.params,
                            partitions: PartitionSet::single(me),
                            is_write,
                        },
                    );
                    est_us += us_since(t_est);
                    // Runtime OP3 is ignored while speculating: a
                    // speculative transaction must stay able to cascade.
                    if upd.disable_undo && !speculating && undo.is_enabled() {
                        undo.disable();
                        undo_disabled_ever = true;
                    }
                    batch_results.push(rows);
                }
                results = Some(batch_results);
            }
            Step::Commit => {
                // Durable effects are *not* flushed here: the caller
                // applies one group-commit flush per drained run, covering
                // every committed write in it (see [`worker_loop`]) —
                // `SingleOutcome::needs_flush` tells it whether this
                // transaction participates.
                let reply = SingleReply::Done {
                    committed: true,
                    session,
                    accessed,
                    access_counts,
                    undo_disabled_ever,
                    speculative: speculating,
                    times: StageTimes::default(),
                };
                if speculating {
                    // The commit is contingent on the early-prepared
                    // transaction: hand the undo log back for the
                    // speculation stack (§4.3 — undo is always kept here).
                    assert!(
                        undo.can_rollback(),
                        "speculative transaction ran without undo (OP3 leak)"
                    );
                    return SingleOutcome {
                        reply,
                        req: Some(req),
                        spec_undo: Some(undo),
                        touched_tables,
                        wrote_tables,
                        est_us,
                    };
                }
                undo.clear();
                return SingleOutcome {
                    reply,
                    req: Some(req),
                    spec_undo: None,
                    touched_tables,
                    wrote_tables,
                    est_us,
                };
            }
            Step::Abort(_) => {
                if !undo.can_rollback() {
                    return SingleOutcome::plain(
                        SingleReply::Fatal(Error::UnrecoverableAbort { txn: u64::from(req.proc) }),
                        Some(req),
                    );
                }
                if let Err(e) = shard.rollback(&mut undo) {
                    return SingleOutcome::plain(SingleReply::Fatal(e), Some(req));
                }
                return SingleOutcome {
                    reply: SingleReply::Done {
                        committed: false,
                        session,
                        accessed,
                        access_counts,
                        undo_disabled_ever,
                        speculative: speculating,
                        times: StageTimes::default(),
                    },
                    req: Some(req),
                    // Aborted effects are already rolled back; nothing for
                    // the stack, but the masks still classify conflicts.
                    spec_undo: None,
                    touched_tables,
                    wrote_tables,
                    est_us,
                };
            }
        }
    }
}

/// Where a reservation's fragment commands come from and where its
/// replies go: the client's registered fragment lane (production — the
/// partition lock *is* the reservation, so the lock holder's first push
/// opens service), or the legacy per-transaction channel pair
/// ([`CtrlMsg::Reserve`] — hand-driven protocol tests and embedders
/// predating lanes).
enum FragSource<'a> {
    Lane { conns: &'a mut Vec<FragConn>, i: usize, bell: &'a Doorbell },
    Legacy(Reserve),
}

impl FragSource<'_> {
    /// Blocks for the next fragment command; `None` when the coordinator
    /// is gone (producer dropped / channel disconnected). Lane waits park
    /// on the worker's own doorbell — the coordinator rings it after every
    /// push; stray rings from other clients just cost a re-check.
    fn recv(&mut self) -> Option<FragCmd> {
        match self {
            FragSource::Legacy(r) => r.frags.recv().ok(),
            FragSource::Lane { conns, i, bell } => {
                let lane = &mut conns[*i].frags;
                loop {
                    if let Some(cmd) = lane.pop() {
                        return Some(cmd);
                    }
                    if lane.is_closed() {
                        return None;
                    }
                    // Doorbell protocol: announce intent, MANDATORY second
                    // look (a push-and-ring that landed before the parked
                    // bit went up is only visible here), then sleep.
                    let token = bell.prepare_park();
                    if lane.is_empty() && !lane.is_closed() {
                        bell.park(token);
                    } else {
                        bell.cancel_park();
                    }
                }
            }
        }
    }

    /// Delivers a reply to the coordinator; false if it is gone.
    fn send(&mut self, reply: FragReply) -> bool {
        match self {
            FragSource::Legacy(r) => r.results.send(reply).is_ok(),
            FragSource::Lane { conns, i, .. } => {
                let conn = &conns[*i];
                // A closed lane's coordinator died: nobody will ever take
                // this reply, so leave the slot reusable-empty instead.
                if conn.frags.is_closed() {
                    return false;
                }
                conn.replies.put(reply);
                true
            }
        }
    }

    /// Consumes the source into the channel handle a speculation window
    /// keeps (a lane itself stays registered at the worker).
    fn into_spec_channel(self) -> SpecChannel {
        match self {
            FragSource::Legacy(r) => SpecChannel::Legacy { frags: r.frags, results: r.results },
            FragSource::Lane { i, .. } => SpecChannel::Lane(i),
        }
    }
}

/// The channel a speculation window keeps toward its coordinator: the
/// index of the client's fragment lane in the worker's `frag_lanes`
/// (stable — lanes are only retired between transactions, never while a
/// window is open), or the legacy per-transaction endpoints moved out of
/// the reservation.
enum SpecChannel {
    Lane(usize),
    Legacy { frags: Receiver<FragCmd>, results: Sender<FragReply> },
}

/// A speculation window opened by an early-prepared distributed
/// transaction: its coordinator channel plus the shard's undo stack and
/// the conflict mask.
struct SpecSession {
    chan: SpecChannel,
    stack: SpeculationStack,
    /// [`crate::sim::table_bit`] mask of tables written inside the window
    /// so far: the early-prepared fragment's writes plus every deferred
    /// speculative commit's. A speculative transaction whose touched set is
    /// disjoint from this cannot depend on contingent state (§2 OP4).
    written_tables: u64,
    /// The distributed transaction's command-log id (durable mode): its
    /// `DistBegin` is already on this partition's log, and the window's
    /// resolution appends the matching `Decision`.
    dist_id: Option<u64>,
}

/// Parks the worker for one distributed transaction: execute its fragments
/// against the owned shard until the coordinator sends the 2PC outcome —
/// or an early prepare, which hands back an open [`SpecSession`] for the
/// caller to speculate under.
fn serve_reservation<A: LiveAdvisor>(
    shard: &mut Shard,
    env: &Shared<A>,
    mut src: FragSource<'_>,
) -> Option<SpecSession> {
    let mut undo = UndoLog::new();
    let mut wrote_tables = 0u64;
    let mut dist_id: Option<u64> = None;
    loop {
        match src.recv() {
            Some(FragCmd::LogBegin { txn_id, proc, args }) => {
                // Durable mode only (never sent otherwise): record the
                // distributed transaction's begin at its service position —
                // before any of its fragments execute here. No reply, no
                // modeled delay: this is durability bookkeeping, not one of
                // the paper's network messages.
                if let Some(d) = &env.durable {
                    let rec = LogRecord::DistBegin { txn_id, proc, args };
                    d.logs.append(shard.partition(), &rec);
                }
                dist_id = Some(txn_id);
            }
            Some(FragCmd::Exec { proc, query, params }) => {
                flush(env.msg_delay);
                let def = env.catalog.proc(proc).query(query);
                let reply = match execute_fragment(shard, def, &params, &mut undo) {
                    Ok(rows) => {
                        if def.is_write() {
                            wrote_tables |= crate::sim::table_bit(def.table);
                        }
                        FragReply::Rows(rows)
                    }
                    Err(Error::Constraint(msg)) => FragReply::Constraint(msg),
                    Err(e) => FragReply::Fatal(e),
                };
                if !src.send(reply) {
                    // Coordinator vanished: restore the shard and move on.
                    let _ = shard.rollback(&mut undo);
                    return None;
                }
            }
            Some(FragCmd::ExecBatch { proc, queries }) => {
                // One modeled network hop covers the whole sub-batch —
                // exactly the per-query message cost batching removes.
                flush(env.msg_delay);
                let mut items = Vec::with_capacity(queries.len());
                let mut fatal = None;
                for (query, params) in queries {
                    let def = env.catalog.proc(proc).query(query);
                    match execute_fragment(shard, def, &params, &mut undo) {
                        Ok(rows) => {
                            if def.is_write() {
                                wrote_tables |= crate::sim::table_bit(def.table);
                            }
                            items.push(BatchItem::Rows(rows));
                        }
                        Err(Error::Constraint(msg)) => {
                            // Stop at the first local constraint: the
                            // coordinator aborts at the batch-global first
                            // constraint anyway, and the rollback erases
                            // anything executed past it.
                            items.push(BatchItem::Constraint(msg));
                            break;
                        }
                        Err(e) => {
                            fatal = Some(e);
                            break;
                        }
                    }
                }
                let reply = match fatal {
                    Some(e) => FragReply::Fatal(e),
                    None => FragReply::Batch(items),
                };
                if !src.send(reply) {
                    let _ = shard.rollback(&mut undo);
                    return None;
                }
            }
            Some(FragCmd::Prepare { speculate }) => {
                flush(env.msg_delay);
                if !speculate {
                    // Read-only participant: no effects to keep or undo, no
                    // outcome to wait for — the reservation simply ends and
                    // the worker serves everything normally again.
                    debug_assert!(undo.is_empty(), "read-only fragment logged undo");
                    return None;
                }
                // Early prepare of a written fragment: open the speculation
                // window over this fragment's undo. Its durability is the
                // *coordinator's* debt — one wait on the shared
                // [`FlushSequencer`] after all Finished acks, with a ticket
                // that covers this fragment's log records (the acks order
                // the writes before the wait). No sleep here: the old
                // ungrouped per-participant flush stalled this partition's
                // whole fast path behind every distributed writer.
                let stack = SpeculationStack::new(undo);
                return Some(SpecSession {
                    chan: src.into_spec_channel(),
                    stack,
                    written_tables: wrote_tables,
                    dist_id,
                });
            }
            Some(FragCmd::VoteFinish { commit }) => {
                // Coalesced 2PC: flush-and-vote plus the decision in one
                // message — one modeled network hop, one acknowledgement.
                // Outcome-identical to Vote + Finish because the vote is
                // always yes. Commit durability is the coordinator's one
                // sequenced flush (see the Prepare arm above).
                flush(env.msg_delay);
                if let (Some(d), Some(id)) = (&env.durable, dist_id) {
                    // Appended before the Finished reply: the coordinator's
                    // one real flush (after all Finished acks) covers it.
                    let rec = LogRecord::Decision { txn_id: id, commit };
                    d.logs.append(shard.partition(), &rec);
                }
                let reply = if commit {
                    undo.clear();
                    FragReply::Finished
                } else {
                    match shard.rollback(&mut undo) {
                        Ok(()) => FragReply::Finished,
                        Err(e) => FragReply::Fatal(e),
                    }
                };
                let _ = src.send(reply);
                return None;
            }
            None => {
                let _ = shard.rollback(&mut undo);
                return None;
            }
        }
    }
}

/// Runs the worker through one speculation window: swept single-partition
/// transactions execute speculatively (deferred acknowledgement, undo
/// force-enabled) and new reservations are parked in `resv` until the
/// early-prepared transaction's 2PC outcome arrives. Work is collected in
/// runs exactly like [`worker_loop`] — control channel first, then a fair
/// lane sweep — and one adaptive group flush covers a run's speculative
/// commits (they must be durable before any acknowledgement, immediate or
/// deferred, goes out), with non-conflicting acknowledgements leaving as
/// a group. The control channel is gathered *before* each sweep, so an
/// outcome already buffered ends the window before any further singles
/// are admitted — they execute non-speculatively after it, a schedule the
/// racing clients cannot distinguish. Returns true if a shutdown was
/// observed while speculating (the window still resolves first).
#[allow(clippy::too_many_arguments)]
fn speculate<A: LiveAdvisor>(
    shard: &mut Shard,
    env: &Shared<A>,
    ctrl: &Receiver<CtrlMsg<A::Session>>,
    bell: &Doorbell,
    lanes: &mut Vec<ring::Consumer<SingleMsg<A::Session>>>,
    frag_lanes: &mut Vec<FragConn>,
    resv: &mut VecDeque<Reserve>,
    snaps: &mut Vec<(u64, Sender<()>)>,
    last_ticket: &mut u64,
    mut spec: SpecSession,
) -> bool {
    // A deferred completion: the client's slot, the reply, the request
    // (unless the reply carries it itself — needed to route the `Cascaded`
    // retry if the window aborts), and the command-log id of its contingent
    // `DistBegin` record (durable mode, conflicting commits only — the
    // window's resolution appends the matching `Decision`, or nothing on
    // abort, so replay skips it).
    type Deferred<S> = (Arc<SingleSlot<S>>, SingleReply<S>, Option<Request>, Option<u64>);
    let mut deferred: Vec<Deferred<A::Session>> = Vec::new();
    let mut run: Vec<SingleMsg<A::Session>> = Vec::new();
    let mut shutdown = false;
    // `None` = the coordinator disappeared without an outcome (it unwound);
    // the window resolves exactly like an abort.
    let outcome: Option<bool> = 'window: loop {
        let mut finish: Option<bool> = None;
        gather_ctrl(ctrl, lanes, frag_lanes, resv, snaps, &mut shutdown, Some(&mut finish));
        if finish.is_none() {
            sweep_lanes(lanes, &mut run);
        }
        if run.is_empty() && finish.is_none() {
            // Idle: park under the doorbell protocol, but with the
            // watchdog timeout — the outcome normally arrives as a rung
            // control message, so an empty 25 ms is only expected for a
            // long-running coordinator, unless it died (its fragment lane
            // or reservation channel disconnects without a buffered
            // outcome) or it still speaks the reservation-channel
            // protocol's in-band VoteFinish (tests, legacy).
            let token = bell.prepare_park();
            gather_ctrl(ctrl, lanes, frag_lanes, resv, snaps, &mut shutdown, Some(&mut finish));
            if finish.is_none() {
                sweep_lanes(lanes, &mut run);
            }
            if run.is_empty() && finish.is_none() {
                if bell.park_timeout(token, SPEC_WATCHDOG) {
                    match &spec.chan {
                        SpecChannel::Legacy { frags, results } => loop {
                            match frags.try_recv() {
                                Ok(FragCmd::VoteFinish { commit }) => break 'window Some(commit),
                                Ok(FragCmd::Prepare { .. }) => {} // duplicate: already prepared
                                Ok(FragCmd::LogBegin { .. }) => {} // begin already logged
                                Ok(FragCmd::Exec { .. } | FragCmd::ExecBatch { .. }) => {
                                    // The coordinator treats a batch that
                                    // re-targets a released partition as a
                                    // mispredict before shipping anything:
                                    // protocol violation.
                                    let _ = results.send(FragReply::Fatal(Error::Other(
                                        "fragment shipped to an early-prepared partition".into(),
                                    )));
                                }
                                Err(TryRecvError::Empty) => break,
                                Err(TryRecvError::Disconnected) => break 'window None,
                            }
                        },
                        SpecChannel::Lane(i) => {
                            // Production coordinators deliver the outcome on
                            // the control channel; the lane matters here only
                            // as the liveness signal. Anything buffered in it
                            // belongs to the *next* transaction of a client
                            // that reacquired after an early release — never
                            // popped here. A closed (drained, producer
                            // dropped) lane means the coordinator died; one
                            // final control drain closes the race where it
                            // sent the outcome just before dropping.
                            if frag_lanes[*i].frags.is_closed() {
                                let mut last: Option<bool> = None;
                                gather_ctrl(
                                    ctrl,
                                    lanes,
                                    frag_lanes,
                                    resv,
                                    snaps,
                                    &mut shutdown,
                                    Some(&mut last),
                                );
                                break 'window last;
                            }
                        }
                    }
                }
                continue 'window;
            }
            bell.cancel_park();
        }
        // Serve the swept run, same group structure as the non-speculating
        // loop; an outcome gathered above ends the window after this run.
        let mut acks: Vec<DeferredAck<A::Session>> = Vec::new();
        let mut group_wrote = false;
        let mut t_cursor = Instant::now();
        for msg in run.drain(..) {
            let SingleMsg { req, plan, session, reply, enqueued } = msg;
            let queued_us = t_cursor.duration_since(enqueued).as_secs_f64() * 1e6;
            let mut out = run_single(shard, env, req, &plan, session, true);
            let durable = out.needs_flush();
            let t_done = Instant::now();
            stamp_times(&mut out, queued_us, (t_done - t_cursor).as_secs_f64() * 1e6);
            t_cursor = t_done;
            // Same conflict rule as the simulator (§2 OP4): contingent
            // means having touched a table written inside the window — by
            // the early-prepared fragment or by a deferred speculative
            // commit. A non-conflicting transaction read nothing
            // contingent, so its outcome is final whatever the 2PC
            // decides, and even its *writes* are safe to keep off the
            // stack: on a cascade, the deferred transactions' row-level
            // pre-images restore around them (their tables are disjoint
            // from everything the cascade undoes up to their own later —
            // also undone — overwrites).
            let conflict = out.touched_tables & spec.written_tables != 0;
            match out.spec_undo {
                Some(u) if conflict => {
                    // A contingent commit: effects join the window (and
                    // its conflict mask), the ack waits. Durable mode logs
                    // it *here*, at its true serialization position, as a
                    // single-participant `DistBegin` — contingent on the
                    // `Decision` the window's resolution appends (commit)
                    // or withholds (abort ⇒ replay skips; the client's
                    // transparent retry re-logs the new attempt).
                    let log_id = env.durable.as_ref().map(|d| {
                        let txn_id = d.next_id();
                        let req =
                            out.req.as_ref().expect("deferred completion retains its request");
                        let rec =
                            LogRecord::DistBegin { txn_id, proc: req.proc, args: req.args.clone() };
                        d.logs.append(shard.partition(), &rec);
                        txn_id
                    });
                    spec.stack.push_commit(u);
                    spec.written_tables |= out.wrote_tables;
                    deferred.push((reply, out.reply, out.req, log_id));
                }
                None if conflict => deferred.push((reply, out.reply, out.req, None)),
                // Non-conflicting (commit, user abort, or mispredict):
                // acknowledge with the group, effects (if any) are final.
                Some(_) | None => {
                    if durable {
                        if let Some(d) = &env.durable {
                            // Final whatever the 2PC decides: a plain
                            // command-log record, like the fast path's.
                            let req =
                                out.req.as_ref().expect("committed fast path retains its request");
                            d.append_local(shard.partition(), req);
                        }
                    }
                    group_wrote |= durable;
                    acks.push((reply, out.reply));
                }
            }
        }
        // Non-conflicting acks leave now: their effects are disjoint from
        // the window's, and their group-commit window is the run that just
        // served them — the in-flight 2PC round trip this window spans is
        // the widest coalescing period the adaptive policy can produce.
        // Deferred acks wait for the outcome, which arrives strictly later.
        // The group's flush demand is registered with the shared sequencer
        // (accounting on the simulated device, a real flusher hand-off in
        // durable mode) when any of them wrote.
        if !acks.is_empty() {
            if let Some(t) = release_group(env, acks, group_wrote, *last_ticket) {
                *last_ticket = t;
            }
        }
        if let Some(commit) = finish {
            break 'window Some(commit);
        }
    };
    if outcome == Some(true) {
        // Speculative work becomes final: acknowledge in completion order.
        spec.stack.commit();
        if let Some(d) = &env.durable {
            // The window's decision, then each contingent commit's — all
            // appended before the Finished ack below, so the coordinator's
            // one sequenced flush covers them; the deferred acks ride a
            // flusher ticket of their own rather than wait for it.
            if let Some(id) = spec.dist_id {
                d.logs.append(shard.partition(), &LogRecord::Decision { txn_id: id, commit: true });
            }
            for (_, _, _, log_id) in &deferred {
                if let Some(id) = *log_id {
                    d.logs.append(
                        shard.partition(),
                        &LogRecord::Decision { txn_id: id, commit: true },
                    );
                }
            }
            if !deferred.is_empty() {
                let acks = deferred.into_iter().map(|(slot, reply, _, _)| (slot, reply)).collect();
                if let Some(t) = release_group(env, acks, true, *last_ticket) {
                    *last_ticket = t;
                }
            }
        } else {
            for (slot, reply, _, _) in deferred {
                slot.put(reply);
            }
        }
        spec_reply(frag_lanes, &spec.chan, FragReply::Finished);
    } else {
        // Cascading rollback (LIFO) of every speculative commit, then the
        // fragment itself; deferred clients retry transparently. Durable
        // mode appends the window's abort decision (the contingent
        // `DistBegin`s get nothing — no decision ⇒ replay skips them).
        if let (Some(d), Some(id)) = (&env.durable, spec.dist_id) {
            d.logs.append(shard.partition(), &LogRecord::Decision { txn_id: id, commit: false });
        }
        let reply = match shard.rollback_speculation(spec.stack) {
            Ok(_) => FragReply::Finished,
            Err(e) => FragReply::Fatal(e),
        };
        for (slot, dropped, req, _) in deferred {
            // The rolled-back attempt's request routes the transparent
            // retry; a Mispredict reply carries it itself.
            let req = match dropped {
                SingleReply::Mispredict { req, .. } => req,
                _ => req.expect("deferred completion retains its request"),
            };
            slot.put(SingleReply::Cascaded { req });
        }
        if outcome.is_some() {
            spec_reply(frag_lanes, &spec.chan, reply);
        }
    }
    shutdown
}

/// Delivers a speculation window's final participant acknowledgement over
/// its coordinator channel; dropped when the coordinator is already gone
/// (a closed lane's reply slot must stay reusable-empty).
fn spec_reply(frag_lanes: &[FragConn], chan: &SpecChannel, reply: FragReply) {
    match chan {
        SpecChannel::Legacy { results, .. } => {
            let _ = results.send(reply);
        }
        SpecChannel::Lane(i) => {
            let conn = &frag_lanes[*i];
            if !conn.frags.is_closed() {
                conn.replies.put(reply);
            }
        }
    }
}

/// How one execution attempt ended, from the client's point of view.
enum Attempt<S> {
    Done {
        committed: bool,
        accessed: PartitionSet,
        access_counts: FxHashMap<PartitionId, u32>,
        undo_disabled_ever: bool,
        speculative: bool,
        early_released: bool,
        session: S,
    },
    Mispredict {
        observed: PartitionSet,
        session: S,
    },
    /// Rolled back by a speculation cascade; retry with the same plan and a
    /// fresh session (no restart counted).
    Cascaded,
    Fatal(Error),
}

/// Client-side Fig. 11 stage accumulator for one [`Client::call`]: folded
/// into `RunMetrics::profile` once the call resolves, with the residual
/// against total wall time reported as `Other`.
#[derive(Debug, Clone, Copy, Default)]
struct StageAcc {
    est_us: f64,
    exec_us: f64,
    coord_us: f64,
    queue_us: f64,
    /// Sub-buckets *of* `coord_us` (each amount below is also added to
    /// `coord_us`), splitting the distributed path's coordination cost the
    /// way Fig. 11's analysis needs it: time blocked acquiring the lock
    /// set, time in the 2PC finish round (outcome sends + acks), and time
    /// waiting on the shared commit-flush sequencer. The fast path's
    /// residual coordination (group flush waits, channel hops) lands in
    /// none of them.
    lock_us: f64,
    twopc_us: f64,
    flush_us: f64,
}

impl StageAcc {
    /// Folds one fast-path round trip: the stages the worker measured,
    /// plus the round trip's unexplained remainder (channel hops, waiting
    /// for the group flush and groupmates) as coordination.
    fn fold_reply(&mut self, times: StageTimes, round_trip_us: f64) {
        self.queue_us += times.queued_us;
        self.est_us += times.est_us;
        self.exec_us += times.exec_us;
        self.coord_us += (round_trip_us - times.queued_us - times.est_us - times.exec_us).max(0.0);
    }
}

/// Records one lock-hold sample (acquisition → now) for every partition
/// still held in `lock_set` minus `released`, into the client's reused
/// sample buffer (folded under the metrics lock once per call).
fn record_remaining_hold(
    samples: &mut Vec<f64>,
    lock_set: PartitionSet,
    released: PartitionSet,
    t_locked: Instant,
) {
    let us = t_locked.elapsed().as_secs_f64() * 1e6;
    for _ in lock_set.difference(released).iter() {
        samples.push(us);
    }
}

/// The client-side half of one [`FragConn`]: the producer of this
/// client's fragment lane to one worker plus the reusable reply slot that
/// worker fills. Registered lazily on the client's first distributed use
/// of the partition, then reused by every later distributed transaction —
/// the per-transaction channel pairs (and their reservation round trip)
/// are gone from the steady state entirely.
struct FragPort {
    tx: ring::Producer<FragCmd>,
    replies: Arc<ReplySlot<FragReply>>,
}

/// Bounded yield-retry on a full fragment lane before declaring the
/// worker wedged. Fragment shipping is ping-pong per worker (at most an
/// unacknowledged `Prepare` plus the next transaction's opening command
/// sit in a lane), so the retry only guards a protocol bug, never a real
/// backlog.
const FRAG_PUSH_RETRY: u32 = 1 << 16;

/// Ensures this client's fragment lane to worker `p` exists (registering
/// it over the control channel on first use), pushes one command, and
/// rings the worker's doorbell.
fn push_frag<S>(
    ports: &mut [Option<FragPort>],
    workers: &[WorkerGate<S>],
    p: usize,
    cmd: FragCmd,
) -> Result<()> {
    if ports[p].is_none() {
        let (tx, rx) = ring::spsc(LANE_CAPACITY);
        let replies = Arc::new(ReplySlot::new());
        if !workers[p]
            .send_ctrl(CtrlMsg::FragLane(FragConn { frags: rx, replies: Arc::clone(&replies) }))
        {
            return Err(Error::Other(format!("worker {p} is gone")));
        }
        ports[p] = Some(FragPort { tx, replies });
    }
    let port = ports[p].as_mut().expect("port just ensured");
    let mut cmd = cmd;
    for _ in 0..FRAG_PUSH_RETRY {
        match port.tx.push(cmd) {
            Ok(()) => {
                workers[p].bell.ring();
                return Ok(());
            }
            Err(ring::PushError::Disconnected(_)) => {
                return Err(Error::Other(format!("worker {p} is gone")));
            }
            Err(ring::PushError::Full(c)) => {
                cmd = c;
                std::thread::yield_now();
            }
        }
    }
    Err(Error::Other(format!("fragment lane to worker {p} wedged")))
}

/// Coordinates one distributed transaction from the client thread: atomic
/// lock acquisition, batched fragment shipping over the reusable lanes,
/// early prepares (OP4), 2PC outcome, and the one sequenced commit flush.
#[allow(clippy::too_many_lines)]
fn run_distributed<A: LiveAdvisor>(
    env: &Shared<A>,
    req: &Request,
    plan: &TxnPlan,
    mut session: A::Session,
    lock_holds: &mut Vec<f64>,
    ports: &mut [Option<FragPort>],
    acc: &mut StageAcc,
) -> Attempt<A::Session> {
    let workers = &env.workers;
    let lock_set = plan.lock_set;
    // Held for the whole coordination; the drop guard also releases on an
    // unwind, so a panicking coordinator cannot wedge later transactions
    // (an unwinding client also drops its lane producers, and workers roll
    // back fragments of a closed lane).
    let t_acquire = Instant::now();
    let mut locks_held = env.locks.guard(lock_set);
    let lock_wait = us_since(t_acquire);
    acc.coord_us += lock_wait;
    acc.lock_us += lock_wait;
    let t_locked = Instant::now();
    // Early-released partitions: `released` is the union the mispredict
    // rule and metrics see; `windowed` is the subset whose fragment wrote
    // (speculation window open, 2PC outcome still owed), the rest were
    // read-only participants and are completely done with this txn.
    let mut released = PartitionSet::EMPTY;
    let mut windowed = PartitionSet::EMPTY;
    // Partitions any write query touched so far (the coordinator's view of
    // which fragments are contingent — same catalog knowledge the workers
    // have, so the two sides always agree on whether a window opens).
    let mut wrote_parts = PartitionSet::EMPTY;
    // Durable mode: this transaction's command-log id, and the participants
    // whose logs already hold its `DistBegin` (shipped once per partition,
    // before its first fragment).
    let dist_id = env.durable.as_ref().map(Durable::next_id);
    let mut began = PartitionSet::EMPTY;
    // No reservation step: holding a partition's lock entitles this client
    // to push on its (lazily registered) fragment lane, and the first push
    // opens service at the worker. The base partition is a fragment
    // executor like the others — control code runs here on the
    // coordinator.
    let n = env.num_partitions as usize;
    // Sends the 2PC outcome everywhere and waits for every ack; every call
    // site returns immediately afterwards, so the lock guard releases only
    // after all fragment effects are final (abort: undone; commit: kept —
    // durability is the caller's sequenced flush after this returns).
    // Coalesced 2PC (§2): each still-reserved participant gets one
    // `VoteFinish` carrying the flush-and-vote *and* the decision — the
    // split Vote round bought no information (participants always vote
    // yes; fragment errors surfaced at execution), only an extra message
    // round of lock-hold time per participant. Early prepares already
    // voted, unsolicited, off the critical path; windowed participants
    // take the outcome on their worker's control channel (the speculating
    // worker parks on its doorbell); read-only released participants hear
    // nothing (they are already out). All sends go out before any
    // acknowledgement is awaited, so participant-side work and modeled
    // delays overlap in wall-clock time.
    let finish_all = |ports: &mut [Option<FragPort>],
                      released: PartitionSet,
                      windowed: PartitionSet,
                      commit: bool|
     -> Result<()> {
        let mut failure = None;
        for p in lock_set.iter() {
            if windowed.contains(p) {
                workers[p as usize].send_ctrl(CtrlMsg::SpecFinish { commit });
            } else if !released.contains(p) {
                if let Err(e) =
                    push_frag(ports, workers, p as usize, FragCmd::VoteFinish { commit })
                {
                    failure = Some(e);
                }
            }
        }
        for p in lock_set.difference(released).union(windowed).iter() {
            let Some(port) = ports[p as usize].as_ref() else {
                // The lane registration itself failed above: worker gone.
                failure = Some(Error::Other(format!("worker {p} is gone")));
                continue;
            };
            match port.replies.take_or_abandon(|| port.tx.is_closed()) {
                Some(FragReply::Finished) => {}
                Some(FragReply::Fatal(e)) => failure = Some(e),
                Some(_) => failure = Some(Error::Other("fragment protocol violation".into())),
                None => failure = Some(Error::Other(format!("worker {p} hung up"))),
            }
        }
        match failure {
            None => Ok(()),
            Some(e) => Err(e),
        }
    };

    let mut inst = env.registry.get(req.proc).instantiate(&req.args);
    let mut results: Option<Vec<Vec<Row>>> = None;
    let mut accessed = PartitionSet::EMPTY;
    let mut access_counts: FxHashMap<PartitionId, u32> = FxHashMap::default();
    let mut pending_abort: Option<String> = None;
    // Per-participant reply cursors for the current batch, reused across
    // batch steps (entries are taken by the merge and cleared after it).
    let mut per_part: Vec<Option<std::vec::IntoIter<BatchItem>>> = (0..n).map(|_| None).collect();
    loop {
        // Control code runs here on the coordinator: Execution time.
        let t_step = Instant::now();
        let step = match pending_abort.take() {
            Some(msg) => Step::Abort(msg),
            None => inst.next(results.as_deref()),
        };
        acc.exec_us += us_since(t_step);
        match step {
            Step::Queries(batch) => {
                let t_batch = Instant::now();
                let mut batch_est_us = 0.0f64;
                let mut seen = PartitionSet::EMPTY;
                let mut violation = false;
                let mut q_targets: Vec<PartitionSet> = Vec::with_capacity(batch.len());
                for inv in &batch {
                    let def = env.catalog.proc(req.proc).query(inv.query);
                    let targets = def.estimate_partitions_n(env.num_partitions, &inv.params);
                    seen = seen.union(targets);
                    // Re-touching an early-released partition is a
                    // mispredict like leaving the lock set (same rule as
                    // the simulator).
                    if !targets.is_subset(lock_set) || !targets.intersect(released).is_empty() {
                        violation = true;
                        break;
                    }
                    q_targets.push(targets);
                }
                if violation {
                    let t_fin = Instant::now();
                    let fin = finish_all(ports, released, windowed, false);
                    let tw = us_since(t_fin);
                    acc.coord_us += tw;
                    acc.twopc_us += tw;
                    record_remaining_hold(lock_holds, lock_set, released, t_locked);
                    return match fin {
                        Ok(()) => Attempt::Mispredict { observed: accessed.union(seen), session },
                        Err(e) => Attempt::Fatal(e),
                    };
                }
                // Ship each participant's share of the batch as ONE
                // `ExecBatch` — one lane push, one modeled network hop and
                // one reply per participant per batch step, where the
                // per-query path paid all three per query. Participants
                // execute their sub-batches concurrently, each stopping at
                // its own first constraint violation; all pushes go out
                // before any reply is awaited.
                let mut to_ship: Vec<Vec<(QueryId, Vec<Value>)>> = vec![Vec::new(); n];
                for (inv, targets) in batch.iter().zip(&q_targets) {
                    for p in targets.iter() {
                        to_ship[p as usize].push((inv.query, inv.params.clone()));
                    }
                }
                let mut fatal: Option<Error> = None;
                let mut shipped = PartitionSet::EMPTY;
                for p in lock_set.iter() {
                    let queries = std::mem::take(&mut to_ship[p as usize]);
                    if queries.is_empty() {
                        continue;
                    }
                    if let Some(id) = dist_id {
                        if !began.contains(p) {
                            // The begin record precedes the partition's
                            // first fragment in lane order, so the worker
                            // logs it at exactly the position the fragments
                            // serialize at.
                            let begin = FragCmd::LogBegin {
                                txn_id: id,
                                proc: req.proc,
                                args: req.args.clone(),
                            };
                            if let Err(e) = push_frag(ports, workers, p as usize, begin) {
                                fatal = Some(e);
                                continue;
                            }
                            began.insert(p);
                        }
                    }
                    match push_frag(
                        ports,
                        workers,
                        p as usize,
                        FragCmd::ExecBatch { proc: req.proc, queries },
                    ) {
                        Ok(()) => shipped.insert(p),
                        // Keep shipping to the survivors: their replies and
                        // rollbacks still need collecting below.
                        Err(e) => fatal = Some(e),
                    }
                }
                // One reply per shipped participant, ascending partition
                // order; each is the participant's item list for its whole
                // sub-batch.
                for p in shipped.iter() {
                    let port = ports[p as usize].as_ref().expect("shipped over this port");
                    match port.replies.take_or_abandon(|| port.tx.is_closed()) {
                        Some(FragReply::Batch(items)) => {
                            per_part[p as usize] = Some(items.into_iter());
                        }
                        Some(FragReply::Fatal(e)) => fatal = Some(e),
                        Some(_) => {
                            fatal = Some(Error::Other("fragment protocol violation".into()));
                        }
                        None => fatal = Some(Error::Other(format!("worker {p} hung up"))),
                    }
                }
                if let Some(e) = fatal {
                    let t_fin = Instant::now();
                    let _ = finish_all(ports, released, windowed, false);
                    let tw = us_since(t_fin);
                    acc.coord_us += tw;
                    acc.twopc_us += tw;
                    record_remaining_hold(lock_holds, lock_set, released, t_locked);
                    return Attempt::Fatal(e);
                }
                // Merge per query in ascending partition order — identical
                // row order and abort choice to the per-query path. The
                // first query with any constraint reply is the batch-global
                // abort point: no participant stopped before it (an earlier
                // local constraint would be an earlier global one), so
                // every target of every query up to and including it
                // reports an item, and items past it stay unread — the 2PC
                // rollback erases whatever a participant over-executed.
                let mut pending_release = PartitionSet::EMPTY;
                let mut batch_results = Vec::with_capacity(batch.len());
                for (inv, targets) in batch.into_iter().zip(q_targets) {
                    let def = env.catalog.proc(req.proc).query(inv.query);
                    let is_write = def.is_write();
                    let mut rows = Vec::new();
                    let mut constraint: Option<String> = None;
                    for p in targets.iter() {
                        match per_part[p as usize].as_mut().and_then(Iterator::next) {
                            Some(BatchItem::Rows(mut r)) => rows.append(&mut r),
                            Some(BatchItem::Constraint(msg)) => constraint = Some(msg),
                            None => {
                                // Unreachable by the argument above; kept
                                // defensive so a protocol bug aborts the
                                // transaction instead of desyncing cursors.
                                constraint = Some("fragment batch underrun".into());
                            }
                        }
                    }
                    accessed = accessed.union(targets);
                    if is_write {
                        wrote_parts = wrote_parts.union(targets);
                    }
                    for p in targets.iter() {
                        *access_counts.entry(p).or_insert(0) += 1;
                    }
                    if let Some(msg) = constraint {
                        pending_abort = Some(msg);
                        break;
                    }
                    // Runtime updates: OP3 is ignored on the distributed
                    // path (undo stays on), but OP4 finish declarations
                    // accumulate for the end-of-batch early prepare.
                    let t_est = Instant::now();
                    let upd = env.advisor.on_query_live(
                        &mut session,
                        &ExecutedQuery {
                            query: inv.query,
                            params: inv.params,
                            partitions: targets,
                            is_write,
                        },
                    );
                    batch_est_us += us_since(t_est);
                    if plan.early_prepare {
                        pending_release = pending_release.union(upd.finished);
                    }
                    batch_results.push(rows);
                }
                for leftover in &mut per_part {
                    *leftover = None;
                }
                // Early prepare (OP4): release finished partitions at batch
                // granularity — the same point the simulator applies
                // `pending_release`, so a later query in this batch never
                // sees a partition released mid-batch there but live here.
                // Unlike the simulator, the *base* partition is releasable
                // too: live control code runs on the coordinating client,
                // so the base is just another fragment executor (the
                // simulator's base runs the control code and stays busy to
                // commit).
                let to_release = pending_release.difference(released).intersect(lock_set);
                for p in to_release.iter() {
                    // Unacknowledged by design (the paper's unsolicited
                    // vote): the worker serves this lane's commands in
                    // order, so it observes the prepare before anything a
                    // later lock holder pushes — releasing the lock
                    // immediately after the push is safe, and not blocking
                    // here keeps the coordinator off the scheduler's
                    // critical path (one ack round trip per released
                    // partition is measurable on small hosts).
                    let speculate = wrote_parts.contains(p);
                    if let Err(e) =
                        push_frag(ports, workers, p as usize, FragCmd::Prepare { speculate })
                    {
                        // The guard drop releases everything still held —
                        // record the hold time for those partitions like
                        // every other release path (this partition is still
                        // held too: `released` not yet updated).
                        record_remaining_hold(lock_holds, lock_set, released, t_locked);
                        return Attempt::Fatal(e);
                    }
                    released.insert(p);
                    if speculate {
                        windowed.insert(p);
                    }
                    lock_holds.push(t_locked.elapsed().as_secs_f64() * 1e6);
                    locks_held.release_early(p);
                }
                results = Some(batch_results);
                // Everything in this arm except the advisor calls —
                // fragment shipping, participant execution, reply
                // collection, early-prepare sends — counts as Execution;
                // the advisor share is Estimation.
                acc.est_us += batch_est_us;
                acc.exec_us += (us_since(t_batch) - batch_est_us).max(0.0);
            }
            Step::Commit => {
                let t_fin = Instant::now();
                let fin = finish_all(ports, released, windowed, true);
                let tw = us_since(t_fin);
                acc.coord_us += tw;
                acc.twopc_us += tw;
                // One durability wait per distributed write commit,
                // through the shared sequencer — and *after* the lock
                // guard drops. The ticket is taken first, while every
                // participant's ack is in hand (their log writes
                // happen-before it), so one device operation covers all
                // of them; the wait itself is group commit: effects are
                // visible the moment the locks release, only this
                // client's acknowledgement stalls on the device. Holding
                // the lock set through the sleep instead serializes every
                // other coordinator behind a 200 µs hold (measured: lock
                // wait was 82% of 2-worker TATP call time) — and any
                // later transaction that needs this commit durable
                // enqueues a ticket at least as large, so releasing early
                // never reorders durability. This replaces one full-cap
                // sleep per writing participant *on the participant's own
                // thread*, which stalled that partition's entire fast
                // path for the duration.
                let ticket = (fin.is_ok()
                    && !wrote_parts.is_empty()
                    && (env.durable.is_some() || !env.commit_flush.is_zero()))
                .then(|| env.seq.enqueue());
                record_remaining_hold(lock_holds, lock_set, released, t_locked);
                drop(locks_held);
                if let Some(t) = ticket {
                    let t_flush = Instant::now();
                    match &env.durable {
                        // Real device: every participant's begin and
                        // decision records are on their logs (the Finished
                        // acks above happen-after the appends), so one
                        // sequenced `write+fsync` makes the whole
                        // transaction durable. Ride the flusher's windowed
                        // group commit rather than leading eagerly —
                        // leading here would pin the fsync rate to the
                        // distributed-commit rate and collapse throughput
                        // to the device.
                        Some(d) => {
                            env.seq.wait_covered(
                                t,
                                &FileDevice(Arc::clone(&d.logs)),
                                d.group_window,
                            );
                        }
                        None => env.seq.wait_durable(t, env.commit_flush),
                    }
                    let fw = us_since(t_flush);
                    acc.coord_us += fw;
                    acc.flush_us += fw;
                }
                return match fin {
                    Ok(()) => Attempt::Done {
                        committed: true,
                        accessed,
                        access_counts,
                        undo_disabled_ever: false,
                        speculative: false,
                        early_released: !released.is_empty(),
                        session,
                    },
                    Err(e) => Attempt::Fatal(e),
                };
            }
            Step::Abort(_) => {
                let t_fin = Instant::now();
                let fin = finish_all(ports, released, windowed, false);
                let tw = us_since(t_fin);
                acc.coord_us += tw;
                acc.twopc_us += tw;
                record_remaining_hold(lock_holds, lock_set, released, t_locked);
                return match fin {
                    Ok(()) => Attempt::Done {
                        committed: false,
                        accessed,
                        access_counts,
                        undo_disabled_ever: false,
                        speculative: false,
                        early_released: !released.is_empty(),
                        session,
                    },
                    Err(e) => Attempt::Fatal(e),
                };
            }
        }
    }
}

/// Ships one session-teardown feedback record toward the maintenance
/// thread, if maintenance is on and the advisor produced one. `try_send`
/// keeps the client's acknowledgement latency independent of maintenance:
/// a full channel sheds the record and bumps the drop counter.
fn emit_feedback(
    dropped: &mut u64,
    fb_tx: Option<&SyncSender<FeedbackMsg>>,
    record: Option<TxnFeedback>,
) {
    if let (Some(tx), Some(rec)) = (fb_tx, record) {
        if tx.try_send(FeedbackMsg::Record(rec)).is_err() {
            *dropped += 1;
        }
    }
}

/// A `Send` handle for submitting transactions to a [`LiveRuntime`].
///
/// Handles are cheap (one `Arc` clone) and independent: mint one per
/// application thread with [`LiveRuntime::client`], move it there, and
/// drive it with [`Client::call`]. Dropping a handle just leaves the
/// runtime; handles may join and leave at any point of the run.
///
/// Each handle owns a deterministic RNG stream derived from
/// `(LiveConfig::seed, id)` — the pre-drawn `random_local_partition`
/// advisors see — so a fixed set of handles issuing fixed requests plans
/// reproducibly.
pub struct Client<A: LiveAdvisor + 'static> {
    shared: Arc<Shared<A>>,
    id: u64,
    rng: SmallRng,
    /// One SPSC fast-path lane per worker this handle has talked to,
    /// created lazily on the first call routed to that partition.
    lanes: Vec<Option<ring::Producer<SingleMsg<A::Session>>>>,
    /// One fragment lane + reply slot per worker this handle has
    /// coordinated a distributed transaction against, registered lazily
    /// and reused forever after — the distributed path's analogue of
    /// `lanes` (see [`FragPort`]).
    frag_ports: Vec<Option<FragPort>>,
    /// The reusable reply mailbox every fast-path call blocks on (an
    /// `Arc` clone travels inside each message; never reallocated).
    reply: Arc<SingleSlot<A::Session>>,
    /// Reclaimed advisor sessions, one spare per procedure: the next call
    /// to the same procedure reuses the session's plan scratch instead of
    /// allocating fresh (see [`LiveAdvisor::plan_live_reusing`]).
    spare: FxHashMap<ProcId, A::Session>,
    /// Reused buffer of lock-hold samples from distributed attempts,
    /// folded under the metrics lock once per call.
    lock_holds: Vec<f64>,
}

/// Commit-time details [`Client::call`] stashes at the `Done` arm for the
/// single end-of-call metrics fold.
struct DoneStats {
    latency_us: f64,
    base_partition: PartitionId,
    lock_set: PartitionSet,
    accessed: PartitionSet,
    access_counts: FxHashMap<PartitionId, u32>,
    undo_disabled_ever: bool,
    speculative: bool,
    early_released: bool,
}

/// Pushes one fast-path message onto this client's lane to worker `base`,
/// creating and registering the lane on first use, then rings the
/// worker's doorbell (the push-then-ring order the doorbell protocol
/// requires).
fn send_on_lane<S>(
    lanes: &mut [Option<ring::Producer<SingleMsg<S>>>],
    workers: &[WorkerGate<S>],
    base: usize,
    msg: SingleMsg<S>,
) -> Result<()> {
    if lanes[base].is_none() {
        let (tx, rx) = ring::spsc(LANE_CAPACITY);
        if !workers[base].send_ctrl(CtrlMsg::Lane(rx)) {
            return Err(Error::Other(format!("worker {base} is gone")));
        }
        lanes[base] = Some(tx);
    }
    let lane = lanes[base].as_mut().expect("lane just ensured");
    match lane.push(msg) {
        Ok(()) => {
            workers[base].bell.ring();
            Ok(())
        }
        Err(PushError::Disconnected(_)) => Err(Error::Other(format!("worker {base} is gone"))),
        // Unreachable for a blocking client (≤ 1 call in flight per lane,
        // capacity LANE_CAPACITY); report rather than spin, defensively.
        Err(PushError::Full(_)) => Err(Error::Other(format!("lane to worker {base} overflowed"))),
    }
}

impl<A: LiveAdvisor + 'static> Client<A> {
    /// This handle's id, unique within its runtime (assigned in mint
    /// order, starting at 0). Useful as a per-stream seed, e.g. for
    /// `workloads::Bench::client_generator`.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Invokes stored procedure `proc` with `args` and blocks until the
    /// transaction finishes: plans via the runtime's advisor, dispatches
    /// to the lock-free single-partition fast path or coordinates the
    /// distributed path (2PC, OP4 early prepare), restarts transparently
    /// on mispredicts and speculation cascades, and falls back to a
    /// lock-all plan after `LiveConfig::max_restarts`.
    ///
    /// Returns [`TxnOutcome::Committed`] or [`TxnOutcome::UserAborted`];
    /// `Err` means the transaction could not be completed — an
    /// unrecoverable abort inside the engine, or the runtime shut down
    /// while the call was in flight (calls racing
    /// [`LiveRuntime::shutdown`] fail cleanly, they never hang).
    ///
    /// The transaction's counters (commit/abort, latency, restarts, OP
    /// tallies) are folded into the runtime-wide metrics before the call
    /// returns, so [`LiveRuntime::metrics`] sees it immediately.
    #[allow(clippy::too_many_lines)]
    pub fn call(&mut self, proc: ProcId, args: Vec<Value>) -> Result<TxnOutcome> {
        let env = Arc::clone(&self.shared);
        let env = &*env;
        let fb_tx = env.fb_tx.as_ref();
        // Per-call tallies live in cheap locals (plus this handle's reused
        // sample buffer) and fold into the shared RunMetrics once, under a
        // single lock section at the end — the fast path allocates no
        // per-call metrics scratch.
        let mut fb_dropped = 0u64;
        let mut restarts = 0u64;
        let mut cascaded_aborts = 0u64;
        self.lock_holds.clear();
        // The request is `None` only while a fast-path message is in
        // flight — `Mispredict`/`Cascaded` replies hand it back.
        let mut req = Some(Request { proc, args, origin_node: 0 });
        let ctx = PlanContext {
            catalog: &env.catalog,
            num_partitions: env.num_partitions,
            random_local_partition: self.rng.gen_range(0..env.num_partitions),
        };
        let t0 = Instant::now();
        let mut acc = StageAcc::default();
        let (mut plan, mut session) = env.advisor.plan_live_reusing(
            req.as_ref().expect("request in hand"),
            &ctx,
            self.spare.remove(&proc),
        );
        acc.est_us += us_since(t0);
        let mut attempt = 0u32;
        let mut cascades = 0u32;
        let mut last_observed = PartitionSet::EMPTY;
        let mut done: Option<DoneStats> = None;
        let result = loop {
            plan.lock_set.insert(plan.base_partition);
            let outcome = if plan.lock_set.is_single() {
                let base = plan.base_partition as usize;
                // The request, plan, and session all *move* into the
                // message (the plan is `Copy`, the reply slot an `Arc`
                // clone): the steady-state send is allocation-free.
                let t_send = Instant::now();
                let msg = SingleMsg {
                    req: req.take().expect("request in hand"),
                    plan,
                    session,
                    reply: Arc::clone(&self.reply),
                    enqueued: t_send,
                };
                if let Err(e) = send_on_lane(&mut self.lanes, &env.workers, base, msg) {
                    break Err(e);
                }
                let got = {
                    let lane = self.lanes[base].as_ref().expect("lane just used");
                    // If the worker retired this lane at shutdown with the
                    // message still buffered, no reply ever comes — the
                    // abandoned check turns that race into a clean error.
                    self.reply.take_or_abandon(|| lane.is_closed())
                };
                match got {
                    Some(SingleReply::Done {
                        committed,
                        session,
                        accessed,
                        access_counts,
                        undo_disabled_ever,
                        speculative,
                        times,
                    }) => {
                        acc.fold_reply(times, us_since(t_send));
                        Attempt::Done {
                            committed,
                            accessed,
                            access_counts,
                            undo_disabled_ever,
                            speculative,
                            early_released: false,
                            session,
                        }
                    }
                    Some(SingleReply::Mispredict { req: r, observed, session, times }) => {
                        acc.fold_reply(times, us_since(t_send));
                        req = Some(r);
                        Attempt::Mispredict { observed, session }
                    }
                    // A cascaded attempt's worker time was discarded with
                    // its effects; it lands in the call's Other residual.
                    Some(SingleReply::Cascaded { req: r }) => {
                        req = Some(r);
                        Attempt::Cascaded
                    }
                    Some(SingleReply::Fatal(e)) => Attempt::Fatal(e),
                    None => Attempt::Fatal(Error::Other(format!("worker {base} hung up"))),
                }
            } else {
                run_distributed(
                    env,
                    req.as_ref().expect("request in hand"),
                    &plan,
                    session,
                    &mut self.lock_holds,
                    &mut self.frag_ports,
                    &mut acc,
                )
            };
            match outcome {
                Attempt::Done {
                    committed,
                    accessed,
                    access_counts,
                    undo_disabled_ever,
                    speculative,
                    early_released,
                    session: s,
                } => {
                    let (record, reclaimed) = env.advisor.end_live_reclaim(
                        s,
                        if committed { TxnOutcome::Committed } else { TxnOutcome::UserAborted },
                    );
                    emit_feedback(&mut fb_dropped, fb_tx, record);
                    if let Some(r) = reclaimed {
                        self.spare.insert(proc, r);
                    }
                    if committed {
                        done = Some(DoneStats {
                            latency_us: us_since(t0),
                            base_partition: plan.base_partition,
                            lock_set: plan.lock_set,
                            accessed,
                            access_counts,
                            undo_disabled_ever,
                            speculative,
                            early_released,
                        });
                        break Ok(TxnOutcome::Committed);
                    }
                    break Ok(TxnOutcome::UserAborted);
                }
                Attempt::Mispredict { observed, session: s } => {
                    attempt += 1;
                    restarts += 1;
                    last_observed = observed;
                    // The superseded session's executed prefix is
                    // maintenance signal (the sim path records it the same
                    // way, §4.5) before the replan replaces it; its plan
                    // scratch is reclaimed for the retry's session.
                    let (record, reclaimed) =
                        env.advisor.end_live_reclaim(s, TxnOutcome::Mispredicted);
                    emit_feedback(&mut fb_dropped, fb_tx, record);
                    if let Some(r) = reclaimed {
                        self.spare.insert(proc, r);
                    }
                    let r = req.as_ref().expect("request survives a mispredict");
                    if attempt > env.cfg.max_restarts {
                        // Forced fallback: the *plan* is lock-all without
                        // consulting the advisor — exactly like the
                        // simulator past `max_restarts`, guaranteeing
                        // termination for any advisor. (The aborted
                        // attempt's session was torn down above like any
                        // other; riding it into the retry would
                        // concatenate two walks into one feedback path and
                        // intern phantom states.)
                        let t_est = Instant::now();
                        let (_, ns) = env.advisor.replan_live(r, observed, attempt, &ctx);
                        acc.est_us += us_since(t_est);
                        plan = TxnPlan::lock_all(
                            observed.first().unwrap_or(plan.base_partition),
                            env.num_partitions,
                        );
                        session = ns;
                    } else {
                        let t_est = Instant::now();
                        let (p, ns) = env.advisor.replan_live(r, observed, attempt, &ctx);
                        acc.est_us += us_since(t_est);
                        plan = p;
                        session = ns;
                    }
                }
                Attempt::Cascaded => {
                    // The speculative execution was discarded by a cascade;
                    // retry transparently at the same attempt with a fresh
                    // plan and session (the speculative one died mid-walk).
                    // Re-asking normally reproduces the plan this attempt
                    // ran with; if a maintenance epoch swapped in between,
                    // the retry simply runs under the newer (equally valid)
                    // plan — target validation catches any mispredict.
                    cascaded_aborts += 1;
                    cascades += 1;
                    let r = req.as_ref().expect("request survives a cascade");
                    let t_est = Instant::now();
                    let (p, ns) = if cascades > MAX_CASCADE_RETRIES {
                        // Liveness backstop: a hot partition whose windows
                        // keep aborting could cascade the same transaction
                        // indefinitely. Lock-all runs distributed — never
                        // speculative — so it terminates. (Not counted as a
                        // restart: the plan never mispredicted.)
                        let (_, ns) = env.advisor.plan_live(r, &ctx);
                        (TxnPlan::lock_all(plan.base_partition, env.num_partitions), ns)
                    } else if attempt == 0 {
                        env.advisor.plan_live(r, &ctx)
                    } else {
                        env.advisor.replan_live(r, last_observed, attempt, &ctx)
                    };
                    acc.est_us += us_since(t_est);
                    plan = p;
                    session = ns;
                }
                Attempt::Fatal(e) => break Err(e),
            }
        };
        // Fold this transaction's tallies into the run-wide counters even
        // on an error path: restarts and cascades that happened are real.
        // Per-stage attribution (Fig. 11): whatever the staged accumulators
        // didn't claim of the call's wall time — cascaded attempts, channel
        // hops outside a timed region, fatal-path teardown — is `Other`.
        // One lock section; a worker that panicked mid-call poisons this
        // mutex, but the counters stay consistent (all updates additive)
        // and calls racing a teardown must not turn one panic into many.
        let total_us = us_since(t0);
        let mut m = env.metrics.lock().unwrap_or_else(PoisonError::into_inner);
        m.restarts += restarts;
        m.cascaded_aborts += cascaded_aborts;
        m.feedback_dropped += fb_dropped;
        for &us in &self.lock_holds {
            m.lock_hold.record_us(us);
        }
        match &result {
            Ok(TxnOutcome::Committed) => {
                let d = done.take().expect("commit recorded its stats");
                m.committed += 1;
                *m.committed_by_proc.entry(proc).or_insert(0) += 1;
                m.record_latency(proc, d.latency_us);
                if d.lock_set.is_single() {
                    m.single_partition += 1;
                } else {
                    m.distributed += 1;
                }
                if d.undo_disabled_ever {
                    m.no_undo += 1;
                }
                if d.speculative {
                    m.speculative += 1;
                }
                m.tally_ops(
                    proc,
                    d.base_partition,
                    d.lock_set,
                    d.accessed,
                    &d.access_counts,
                    env.num_partitions,
                    d.undo_disabled_ever,
                    d.speculative,
                    d.early_released,
                );
            }
            Ok(_) => m.user_aborts += 1,
            Err(_) => {}
        }
        let p = &mut m.profile;
        p.add(proc, Bucket::Estimation, acc.est_us);
        p.add(proc, Bucket::Execution, acc.exec_us);
        p.add(proc, Bucket::Coordination, acc.coord_us);
        p.add_coord(proc, CoordSub::LockWait, acc.lock_us);
        p.add_coord(proc, CoordSub::TwoPc, acc.twopc_us);
        p.add_coord(proc, CoordSub::Flush, acc.flush_us);
        p.add(proc, Bucket::Queueing, acc.queue_us);
        let known = acc.est_us + acc.exec_us + acc.coord_us + acc.queue_us;
        p.add(proc, Bucket::Other, (total_us - known).max(0.0));
        p.finish_txn(proc);
        drop(m);
        result
    }
}

impl<A: LiveAdvisor + 'static> Drop for Client<A> {
    /// Retires this handle's lanes: dropping a producer marks the lane
    /// closed, and the follow-up ring gives a parked worker the wake-up
    /// it needs to observe that and drop its consumer — the drop
    /// handshake the ring model checks (drop strictly before ring).
    fn drop(&mut self) {
        for (p, lane) in self.lanes.iter_mut().enumerate() {
            if let Some(producer) = lane.take() {
                drop(producer);
                self.shared.workers[p].bell.ring();
            }
        }
        for (p, port) in self.frag_ports.iter_mut().enumerate() {
            if let Some(port) = port.take() {
                drop(port);
                self.shared.workers[p].bell.ring();
            }
        }
    }
}

/// The threads a running [`LiveRuntime`] owns; `None` once torn down.
struct Running {
    workers: Vec<JoinHandle<Shard>>,
    maintenance: Option<JoinHandle<MaintenanceReport>>,
    /// Durable mode's dedicated fsync thread (see [`flusher_loop`]).
    flusher: Option<JoinHandle<()>>,
    /// Background snapshotter: its stop flag (0 = run, 1 = stop) and
    /// handle. The thread sleeps via `park_timeout`, so teardown stores
    /// the flag and unparks.
    snapshotter: Option<(Arc<AtomicU64>, JoinHandle<()>)>,
}

/// What a recovered boot seeds [`LiveRuntime`]'s durability state with.
struct RecoverySeed {
    /// Generation the fresh log segments open at — strictly above every
    /// generation found on disk, because appending to a segment whose tail
    /// holds a torn frame would put the new records behind it, invisible
    /// to the decoder.
    gen: u64,
    /// First transaction id the recovered runtime may allocate.
    next_txn_id: u64,
    recovery_ms: f64,
}

/// An embeddable, running instance of the live partition runtime — the
/// *server* of the paper's Fig. 1, usable as a library.
///
/// The runtime owns its threads outright (no scoped borrows):
///
/// ```text
/// LiveRuntime ──owns──> worker thread per partition (owns its Shard)
///      │      ──owns──> maintenance thread (when the advisor learns, §4.5)
///      │      ──Arc───> Shared { registry, catalog, advisor, lock manager,
///      │                         worker queues, metrics, feedback channel }
///      └─mints─> Client handles (Send; Arc into Shared) — application-owned
/// ```
///
/// [`LiveRuntime::start`] consumes the database (splitting it into
/// per-worker shards), the procedure registry, and the advisor; wrap the
/// advisor in an `Arc` to keep a handle on it (the blanket
/// `LiveAdvisor for Arc<A>` impl delegates). [`LiveRuntime::client`] mints
/// any number of [`Client`] handles for application threads;
/// [`LiveRuntime::metrics`] snapshots run-wide counters mid-run;
/// [`LiveRuntime::shutdown`] drains in-flight work and returns the final
/// metrics plus the reassembled [`Database`]. Dropping the runtime without
/// calling `shutdown` tears it down the same way, discarding the results.
pub struct LiveRuntime<A: LiveAdvisor + 'static> {
    shared: Arc<Shared<A>>,
    running: Option<Running>,
}

impl<A: LiveAdvisor + 'static> LiveRuntime<A> {
    /// Boots the runtime: splits `db` into per-partition shards, spawns
    /// one owned worker thread per shard, and — when `advisor.maintainer()`
    /// yields a [`LiveMaintainer`] — the §4.5 feedback channel plus its
    /// background maintenance thread. Returns immediately; the server is
    /// ready for [`Client::call`] traffic as soon as this returns.
    pub fn start(db: Database, registry: ProcedureRegistry, advisor: A, cfg: LiveConfig) -> Self {
        Self::start_inner(db, registry, advisor, cfg, None)
    }

    /// Boots the runtime after a crash: loads the newest complete snapshot
    /// set from `cfg.durability.dir` (if any), replays each partition's
    /// command log ([`crate::durability`]), and starts serving on the
    /// recovered state with fresh log segments. Returns the running
    /// runtime plus a [`RecoveryReport`]. Panics if `cfg.durability` is
    /// `None` or the log directory is unreadable.
    pub fn recover(
        db: Database,
        registry: ProcedureRegistry,
        advisor: A,
        cfg: LiveConfig,
    ) -> (Self, RecoveryReport) {
        let dc = cfg.durability.as_ref().expect("recover requires LiveConfig::durability");
        let t0 = Instant::now();
        let mut state = wal::scan(&dc.dir, db.num_partitions()).expect("scan durability dir");
        let mut db = db;
        if let Some(rows) = state.snapshot.take() {
            let mut shards = db.into_shards();
            for (shard, tables) in shards.iter_mut().zip(rows) {
                shard.restore_tables(tables);
            }
            db = Database::from_shards(shards);
        }
        let catalog = registry.catalog();
        let (replayed, skipped) = crate::durability::replay(&mut db, &registry, &catalog, &state);
        let recovery_ms = t0.elapsed().as_secs_f64() * 1e3;
        let report = RecoveryReport {
            recovery_ms,
            snapshot_gen: state.snapshot_gen,
            replayed,
            skipped,
            log_records_scanned: state.log_records_scanned,
        };
        let seed = RecoverySeed {
            gen: state.max_gen + 1,
            next_txn_id: crate::durability::max_txn_id(&state) + 1,
            recovery_ms,
        };
        (Self::start_inner(db, registry, advisor, cfg, Some(seed)), report)
    }

    fn start_inner(
        db: Database,
        registry: ProcedureRegistry,
        advisor: A,
        cfg: LiveConfig,
        recovered: Option<RecoverySeed>,
    ) -> Self {
        let num_partitions = db.num_partitions();
        let catalog = registry.catalog();
        let shards = db.into_shards();
        // Durable mode: open the command-log segments (a recovered boot
        // starts a fresh generation above everything on disk) and the
        // flusher intake before any worker can serve.
        let seed = recovered.unwrap_or(RecoverySeed { gen: 0, next_txn_id: 1, recovery_ms: 0.0 });
        let mut flusher_rx: Option<Receiver<FlushJob<A::Session>>> = None;
        let durable = cfg.durability.as_ref().map(|dc| {
            let logs = LogSet::open(&dc.dir, num_partitions, seed.gen)
                .expect("open command-log directory");
            let (tx, rx) = channel();
            flusher_rx = Some(rx);
            Durable {
                logs: Arc::new(logs),
                next_txn_id: AtomicU64::new(seed.next_txn_id),
                snapshots_taken: AtomicU64::new(0),
                active_gen: AtomicU64::new(seed.gen),
                recovery_ms: seed.recovery_ms,
                flusher: tx,
                group_window: dc.group_commit_window,
                read_fence: dc.read_fence,
            }
        });
        // The §4.5 feedback pipeline exists only when the advisor can
        // learn: a bounded channel from session teardown to one background
        // maintenance thread that owns the advisor's `LiveMaintainer`.
        let (fb_tx, fb_rx) = if advisor.maintainer().is_some() {
            let (tx, rx) = sync_channel::<FeedbackMsg>(cfg.feedback_capacity.max(1));
            (Some(tx), Some(rx))
        } else {
            (None, None)
        };
        let mut gates: Vec<WorkerGate<A::Session>> = Vec::new();
        let mut worker_rx: Vec<Receiver<CtrlMsg<A::Session>>> = Vec::new();
        for _ in 0..num_partitions {
            let (tx, rx) = channel();
            gates.push(WorkerGate { ctrl: tx, bell: Doorbell::new() });
            worker_rx.push(rx);
        }
        let shared = Arc::new(Shared {
            commit_flush: Duration::from_micros(cfg.commit_flush_us),
            msg_delay: Duration::from_micros(cfg.msg_delay_us),
            registry,
            catalog,
            advisor,
            cfg,
            num_partitions,
            workers: gates,
            locks: LockManager::new(num_partitions),
            seq: FlushSequencer::new(),
            metrics: Mutex::new(RunMetrics::default()),
            fb_tx,
            next_client: AtomicU64::new(0),
            started: Instant::now(),
            durable,
        });
        let flusher = flusher_rx.map(|rx| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("wal-flusher".into())
                .spawn(move || flusher_loop::<A>(&shared, &rx))
                .expect("spawn flusher thread")
        });
        let snapshotter =
            shared.cfg.durability.as_ref().and_then(|dc| dc.snapshot_every).map(|every| {
                let stop = Arc::new(AtomicU64::new(0));
                let flag = Arc::clone(&stop);
                let shared = Arc::clone(&shared);
                let handle = std::thread::Builder::new()
                    .name("snapshotter".into())
                    .spawn(move || {
                        loop {
                            std::thread::park_timeout(every);
                            // ordering: Relaxed — the join in teardown is
                            // the only consumer of this thread's effects; a
                            // spurious early wake just snapshots early.
                            if flag.load(Ordering::Relaxed) != 0 {
                                return;
                            }
                            snapshot_cluster(&shared);
                        }
                    })
                    .expect("spawn snapshotter thread");
                (stop, handle)
            });
        let workers = shards
            .into_iter()
            .zip(worker_rx)
            .enumerate()
            .map(|(p, (shard, rx))| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("partition-{p}"))
                    .spawn(move || worker_loop::<A>(shard, &rx, &shared, p))
                    .expect("spawn worker thread")
            })
            .collect();
        let maintenance = fb_rx.map(|rx| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("maintenance".into())
                .spawn(move || {
                    // The maintainer borrows the advisor; building it here,
                    // on the thread's own stack over its own Arc, keeps the
                    // runtime free of self-references. Drain until Stop (or
                    // every sender is gone): records queued before shutdown
                    // are consumed, so `feedback_records + feedback_dropped`
                    // equals the records the clients emitted.
                    // An advisor that reported `maintains() == true` but
                    // returns no maintainer is a contract violation; drain
                    // the queue (so client try_sends keep succeeding and
                    // shutdown still joins cleanly) and report zero work
                    // instead of taking the maintenance thread down.
                    let mt: Option<Box<dyn LiveMaintainer + '_>> = shared.advisor.maintainer();
                    let Some(mut mt) = mt else {
                        while let Ok(FeedbackMsg::Record(_)) = rx.recv() {}
                        return MaintenanceReport::default();
                    };
                    while let Ok(FeedbackMsg::Record(fb)) = rx.recv() {
                        mt.absorb(fb);
                    }
                    mt.report()
                })
                .expect("spawn maintenance thread")
        });
        LiveRuntime {
            shared,
            running: Some(Running { workers, maintenance, flusher, snapshotter }),
        }
    }

    /// Takes a transaction-consistent snapshot of every partition right
    /// now (durable mode only): fences the cluster, rotates every command
    /// log, serializes every shard, publishes the generation marker, and
    /// truncates obsolete segments. Returns the published generation, or
    /// `None` when durability is off or the snapshot was abandoned.
    pub fn snapshot_now(&self) -> Option<u64> {
        snapshot_cluster(&self.shared)
    }

    /// Mints a new [`Client`] handle. Handles are `Send`, independent, and
    /// may be created and dropped at any point of the run; ids are
    /// assigned in mint order starting at 0 and never reused.
    pub fn client(&self) -> Client<A> {
        // ordering: Relaxed — client ids only need to be unique; the handle
        // itself is handed to its thread via ordinary Rust ownership (a
        // `Send` move), which already synchronizes everything else.
        let id = self.shared.next_client.fetch_add(1, Ordering::Relaxed);
        Client {
            rng: seeded_rng(derive_seed(self.shared.cfg.seed, 0xC11E47 ^ id)),
            lanes: (0..self.shared.num_partitions as usize).map(|_| None).collect(),
            frag_ports: (0..self.shared.num_partitions as usize).map(|_| None).collect(),
            reply: Arc::new(ReplySlot::new()),
            spare: FxHashMap::default(),
            lock_holds: Vec::new(),
            shared: Arc::clone(&self.shared),
            id,
        }
    }

    /// The advisor serving this runtime (e.g. to inspect published epochs).
    pub fn advisor(&self) -> &A {
        &self.shared.advisor
    }

    /// Number of partitions (= worker threads) this runtime serves.
    pub fn num_partitions(&self) -> u32 {
        self.shared.num_partitions
    }

    /// Snapshots the run-wide counters without stopping traffic:
    /// everything [`Client::call`] has folded in so far, with `window_us`
    /// set to the elapsed wall-clock time since [`LiveRuntime::start`].
    /// Maintenance-thread counters (`model_swaps`, `feedback_records`,
    /// per-epoch accuracy) are folded in at [`LiveRuntime::shutdown`] only.
    pub fn metrics(&self) -> RunMetrics {
        // Mid-run snapshots must stay available even if a client thread
        // panicked while folding its per-call metrics in (same reasoning as
        // teardown below: the aggregate is additive, never half-updated in
        // a way a reader could misread).
        let mut m = self.shared.metrics.lock().unwrap_or_else(PoisonError::into_inner).clone();
        m.window_us = self.shared.started.elapsed().as_secs_f64() * 1e6;
        let (ft, fc) = self.shared.seq.counters();
        m.flushes_total = ft;
        m.flushes_coalesced = fc;
        absorb_durability(&mut m, self.shared.durable.as_ref());
        m
    }

    /// Stops the runtime: every in-flight call resolves (workers finish
    /// the run they are executing and reservations still being served
    /// complete; clients block per call, so a quiesced application has
    /// nothing buffered), joins every owned thread, folds the maintenance
    /// report into the final metrics, and reassembles the [`Database`]
    /// from the workers' shards.
    ///
    /// Outstanding [`Client`] handles stay valid as objects but their
    /// subsequent [`Client::call`]s return `Err`; calls racing the
    /// shutdown either complete normally or fail cleanly — they never
    /// hang. Panics if a worker or the maintenance thread panicked.
    pub fn shutdown(mut self) -> (RunMetrics, Database) {
        let (metrics, shards) = self.teardown().expect("LiveRuntime::shutdown called twice");
        (metrics, Database::from_shards(shards))
    }

    /// Shared teardown for [`LiveRuntime::shutdown`] and `Drop`. `None` if
    /// the runtime was already torn down. A panicked worker or maintenance
    /// thread re-raises here — unless this teardown itself runs during an
    /// unwind (`Drop` while panicking), where a second panic would abort
    /// the process and mask the original error.
    fn teardown(&mut self) -> Option<(RunMetrics, Vec<Shard>)> {
        let running = self.running.take()?;
        // Snapshotter first: a fence racing shutdown would wait on worker
        // completions that will never come.
        if let Some((stop, handle)) = running.snapshotter {
            // ordering: Relaxed — the unpark and join below synchronize
            // the thread's exit; the flag only requests it.
            stop.store(1, Ordering::Relaxed);
            handle.thread().unpark();
            let _ = handle.join();
        }
        // Workers next: each finishes its current run (and resolves any
        // open speculation window) before observing the sentinel, so
        // in-flight transactions complete and their feedback records get
        // a chance to precede the Stop below. Calls still buffered in a
        // lane when its worker exits fail cleanly (see [`fail_lanes`]).
        for gate in &self.shared.workers {
            gate.send_ctrl(CtrlMsg::Shutdown);
        }
        let mut thread_panic: Option<Box<dyn std::any::Any + Send>> = None;
        let mut shards: Vec<Shard> = Vec::with_capacity(running.workers.len());
        for h in running.workers {
            match h.join() {
                Ok(shard) => shards.push(shard),
                Err(p) => thread_panic = Some(p),
            }
        }
        // Flusher after the workers: their shutdown-path group closes are
        // already queued ahead of the Stop, so every held ack drains and
        // flushes before the join; the final flush_all makes any buffered
        // shutdown stragglers durable too.
        if let Some(h) = running.flusher {
            if let Some(d) = &self.shared.durable {
                let _ = d.flusher.send(FlushJob::Stop);
            }
            match h.join() {
                Ok(()) => {}
                Err(p) => thread_panic = Some(p),
            }
            if let Some(d) = &self.shared.durable {
                d.logs.flush_all();
            }
        }
        // Pin the measurement window at drain completion: every accepted
        // transaction has finished once the workers join. Charging the
        // maintenance join below (which can lag far behind on a deep
        // feedback backlog) to `window_us` would deflate `throughput_tps`
        // for work that finished long before.
        let window_us = self.shared.started.elapsed().as_secs_f64() * 1e6;
        let maint_report = running.maintenance.and_then(|h| {
            // The explicit Stop ends the maintenance thread even while
            // Client handles (each holding the channel open through
            // `Shared`) are still alive somewhere in the application. A
            // failed send means the thread is already gone; join tells.
            if let Some(tx) = &self.shared.fb_tx {
                let _ = tx.send(FeedbackMsg::Stop);
            }
            match h.join() {
                Ok(report) => Some(report),
                Err(p) => {
                    thread_panic = Some(p);
                    None
                }
            }
        });
        if let Some(p) = thread_panic {
            // Re-raise a worker/maintainer panic — but never on top of an
            // unwind already in progress (that would abort).
            if !std::thread::panicking() {
                std::panic::resume_unwind(p);
            }
        }
        let mut metrics =
            self.shared.metrics.lock().unwrap_or_else(PoisonError::into_inner).clone();
        if let Some(report) = maint_report {
            metrics.absorb_maintenance(&report);
        }
        metrics.window_us = window_us;
        let (ft, fc) = self.shared.seq.counters();
        metrics.flushes_total = ft;
        metrics.flushes_coalesced = fc;
        absorb_durability(&mut metrics, self.shared.durable.as_ref());
        Some((metrics, shards))
    }
}

/// Folds the durability subsystem's counters into a metrics snapshot.
fn absorb_durability<S>(m: &mut RunMetrics, durable: Option<&Durable<S>>) {
    let Some(d) = durable else { return };
    let (records, bytes) = d.logs.counters();
    m.log_records = records;
    m.log_bytes_written = bytes;
    // ordering: Relaxed — metrics-only counter.
    m.snapshots_taken = d.snapshots_taken.load(Ordering::Relaxed);
    m.recovery_ms = d.recovery_ms;
}

impl<A: LiveAdvisor + 'static> Drop for LiveRuntime<A> {
    /// Best-effort teardown for runtimes dropped without
    /// [`LiveRuntime::shutdown`]: stops and joins every owned thread
    /// (worker panics propagate), discarding metrics and database.
    fn drop(&mut self) {
        let _ = self.teardown();
    }
}

/// Runs the live runtime as a closed-loop benchmark: starts a
/// [`LiveRuntime`], spawns `clients_per_partition × num_partitions`
/// closed-loop client threads, drives every generator stream dry
/// (`requests_per_client` each), then shuts down and returns the final
/// metrics plus the reassembled database. A thin wrapper over the handle
/// API, preserved for the exact sim↔live agreement tests and the closed-
/// loop experiments.
///
/// `make_gen` builds the independent request generator for one client
/// stream (see `workloads::Bench::client_generator`). To keep using the
/// advisor (or share it across runs), pass an `Arc<A>` — the blanket
/// `LiveAdvisor for Arc<A>` impl delegates.
///
/// Errors only on an unrecoverable abort (mirroring
/// [`crate::Simulation::run`]); the database is consumed either way since
/// partially-failed clusters are not reassembled.
pub fn run_live<A: LiveAdvisor + 'static>(
    db: Database,
    registry: ProcedureRegistry,
    advisor: A,
    make_gen: &(dyn Fn(u64) -> Box<dyn RequestGenerator + Send> + Sync),
    cfg: &LiveConfig,
) -> Result<(RunMetrics, Database)> {
    let clients = u64::from(db.num_partitions() * cfg.clients_per_partition);
    let requests = cfg.requests_per_client;
    let runtime = LiveRuntime::start(db, registry, advisor, cfg.clone());
    let mut failure: Option<Error> = None;
    let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                // Minted in order on this thread, so ids equal 0..clients
                // deterministically (they seed the per-client RNG streams).
                let mut client = runtime.client();
                s.spawn(move || -> Result<()> {
                    let mut gen = make_gen(c);
                    for _ in 0..requests {
                        let (proc, args) = gen.next_request(client.id());
                        client.call(proc, args)?;
                    }
                    Ok(())
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(Ok(())) => {}
                Ok(Err(e)) => failure = Some(e),
                // Deferred: the runtime must shut down its workers first,
                // or unwinding here would leak parked threads.
                Err(p) => panic = Some(p),
            }
        }
    });
    let (metrics, db) = runtime.shutdown();
    if let Some(p) = panic {
        std::panic::resume_unwind(p);
    }
    match failure {
        None => Ok((metrics, db)),
        Some(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::{AssumeDistributed, AssumeSinglePartition};
    use crate::procedure::testing::{kv_database, kv_registry};

    /// Generator issuing MultiGet over ids that map to `spread` partitions
    /// (the live twin of the simulator's test generator).
    struct KvGen {
        spread: u32,
        parts: u32,
        client: u64,
        counter: u64,
    }

    impl RequestGenerator for KvGen {
        fn next_request(&mut self, _client: u64) -> (ProcId, Vec<Value>) {
            self.counter += 1;
            let start = (self.client * 13 + self.counter * 7) % u64::from(self.parts);
            let ids: Vec<Value> = (0..self.spread)
                .map(|k| Value::Int(((start + u64::from(k)) % u64::from(self.parts)) as i64))
                .collect();
            (0, vec![Value::Array(ids)])
        }
    }

    fn live_run<A: LiveAdvisor + 'static>(
        advisor: A,
        spread: u32,
        parts: u32,
        cfg: &LiveConfig,
    ) -> (RunMetrics, Database) {
        let db = kv_database(parts, 8);
        let reg = kv_registry();
        run_live(
            db,
            reg,
            advisor,
            &move |client| {
                Box::new(KvGen { spread, parts, client, counter: 0 })
                    as Box<dyn RequestGenerator + Send>
            },
            cfg,
        )
        .expect("no halts")
    }

    fn sum_vals(db: &Database, parts: u32) -> i64 {
        (0..parts)
            .map(|p| db.table(p, 0).iter().map(|(_, row)| row[2].expect_int()).sum::<i64>())
            .sum()
    }

    #[test]
    fn lock_all_commits_everything_without_restarts() {
        let cfg = LiveConfig { requests_per_client: 40, ..Default::default() };
        let advisor = AssumeDistributed::new();
        let (m, db) = live_run(advisor, 2, 4, &cfg);
        let total = u64::from(cfg.clients_per_partition) * 4 * cfg.requests_per_client;
        assert_eq!(m.committed + m.user_aborts, total);
        assert_eq!(m.restarts, 0);
        assert_eq!(m.user_aborts, 0, "all ids exist");
        assert_eq!(m.distributed, total, "lock-all is always distributed");
        // Every committed MultiGet bumps each of its 2 ids exactly once.
        assert_eq!(sum_vals(&db, 4), m.committed as i64 * 2);
        assert_eq!(db.total_rows(0), 32, "no rows created or lost");
    }

    #[test]
    fn assume_single_partition_restarts_and_stays_consistent() {
        let cfg = LiveConfig { requests_per_client: 40, ..Default::default() };
        let advisor = AssumeSinglePartition::new();
        let (m, db) = live_run(advisor, 2, 4, &cfg);
        let total = u64::from(cfg.clients_per_partition) * 4 * cfg.requests_per_client;
        assert_eq!(m.committed + m.user_aborts, total);
        assert!(m.restarts > 0, "spread-2 work must trigger mispredicts");
        assert_eq!(sum_vals(&db, 4), m.committed as i64 * 2);
    }

    #[test]
    fn single_partition_fast_path_has_no_lock_contention() {
        // spread 1 + redirect-on-miss: after the first mispredict the plan
        // is exact, so most work runs on the lock-free fast path.
        let cfg = LiveConfig { requests_per_client: 50, ..Default::default() };
        let advisor = AssumeSinglePartition::new();
        let (m, db) = live_run(advisor, 1, 4, &cfg);
        assert!(m.single_partition > 0);
        assert_eq!(sum_vals(&db, 4), m.committed as i64);
    }

    #[test]
    fn latency_histogram_is_populated() {
        let cfg = LiveConfig { requests_per_client: 20, ..Default::default() };
        let advisor = AssumeDistributed::new();
        let (m, _) = live_run(advisor, 1, 2, &cfg);
        assert_eq!(m.latency.count(), m.committed);
        assert!(m.mean_latency_ms().is_some());
        assert!(m.latency.p50_ms().unwrap() <= m.latency.p99_ms().unwrap());
        assert!(m.throughput_tps() > 0.0);
    }

    /// Sorted `(key, row)` snapshot of one table slice, for byte-identical
    /// state comparisons across a speculation window.
    fn table_snapshot(shard: &Shard, table: usize) -> Vec<(Vec<Value>, Row)> {
        let mut rows: Vec<(Vec<Value>, Row)> =
            shard.table(table).iter().map(|(k, r)| (k.clone(), r.clone())).collect();
        rows.sort();
        rows
    }

    /// Hand-drives the worker protocol through one speculation window:
    /// reserve → fragment → early prepare → speculative single → 2PC
    /// outcome. Deterministic: the worker drains ctrl then sweeps lanes
    /// each round; with `expect_deferred` the deferral assertion doubles
    /// as the processed-before-outcome sync (non-conflicting replies
    /// instead arrive before the outcome is even sent). Channels and the
    /// lane producer live inside the scope so a failed assertion
    /// disconnects the worker rather than deadlocking the join.
    /// Returns (reply, post snapshot, pre snapshot).
    #[allow(clippy::type_complexity)]
    fn drive_speculation(
        commit: bool,
        spec_args: Vec<Value>,
        expect_deferred: bool,
    ) -> (SingleReply<()>, Vec<(Vec<Value>, Row)>, Vec<(Vec<Value>, Row)>) {
        let db = kv_database(2, 8);
        let reg = kv_registry();
        let catalog = reg.catalog();
        let (ctrl_tx, ctrl_rx) = channel::<CtrlMsg<()>>();
        // A single-gate Shared: the test drives worker 0's control channel
        // and one hand-made SPSC lane directly; the lock manager and
        // feedback plumbing stay unused.
        let env = Shared {
            catalog,
            registry: reg,
            advisor: AssumeSinglePartition::new(),
            cfg: LiveConfig::default(),
            num_partitions: 2,
            commit_flush: Duration::ZERO,
            msg_delay: Duration::ZERO,
            workers: vec![WorkerGate { ctrl: ctrl_tx, bell: Doorbell::new() }],
            locks: LockManager::new(2),
            seq: FlushSequencer::new(),
            metrics: Mutex::new(RunMetrics::default()),
            fb_tx: None,
            next_client: AtomicU64::new(0),
            started: Instant::now(),
            durable: None,
        };
        let mut shards = db.into_shards();
        shards.truncate(1); // partition 0's worker only
        let shard = shards.pop().unwrap();
        let before = table_snapshot(&shard, 0);
        let (shard, reply) = std::thread::scope(|s| {
            let env = &env;
            let h = s.spawn(move || worker_loop::<AssumeSinglePartition>(shard, &ctrl_rx, env, 0));
            // Reserve partition 0 for a "distributed" transaction and run
            // one write fragment there: bump id 0 by 10.
            let (ftx, frx) = channel();
            let (rtx, rrx) = channel();
            assert!(
                env.workers[0].send_ctrl(CtrlMsg::Reserve(Reserve { frags: frx, results: rtx }))
            );
            ftx.send(FragCmd::Exec {
                proc: 0,
                query: 1,
                params: vec![Value::Int(0), Value::Int(10)],
            })
            .unwrap();
            assert!(matches!(rrx.recv().unwrap(), FragReply::Rows(r) if r.len() == 1));
            // Early prepare: unacknowledged; the worker is parked on the
            // reservation channel, so the window opens before it observes
            // any lane or ctrl message sent afterwards.
            ftx.send(FragCmd::Prepare { speculate: true }).unwrap();
            // A single-partition transaction arrives mid-window on a fresh
            // lane. Its plan asks for OP3 (disable_undo) — speculation must
            // override it.
            let (mut ltx, lrx) = ring::spsc::<SingleMsg<()>>(LANE_CAPACITY);
            assert!(env.workers[0].send_ctrl(CtrlMsg::Lane(lrx)));
            let slot = Arc::new(ReplySlot::new());
            let plan = TxnPlan {
                base_partition: 0,
                lock_set: PartitionSet::single(0),
                disable_undo: true,
                early_prepare: false,
                estimate_cost_us: 0.0,
            };
            assert!(ltx
                .push(SingleMsg {
                    req: Request { proc: 0, args: spec_args, origin_node: 0 },
                    plan,
                    session: (),
                    reply: Arc::clone(&slot),
                    enqueued: Instant::now(),
                })
                .is_ok());
            env.workers[0].bell.ring();
            // Outcome delivery: commits take the ctrl route the coordinator
            // uses; aborts take the reservation-channel route so the
            // disconnect watchdog's legacy arm stays covered.
            let send_outcome = || {
                if commit {
                    assert!(env.workers[0].send_ctrl(CtrlMsg::SpecFinish { commit }));
                } else {
                    ftx.send(FragCmd::VoteFinish { commit }).unwrap();
                }
            };
            let reply = if expect_deferred {
                // The acknowledgement must wait for the outcome.
                assert!(
                    slot.take_within(Duration::from_millis(200)).is_none(),
                    "conflicting speculative ack leaked before the 2PC outcome"
                );
                send_outcome();
                assert!(matches!(rrx.recv().unwrap(), FragReply::Finished));
                slot.take_within(Duration::from_secs(30)).expect("deferred ack")
            } else {
                // Non-conflicting: acknowledged before any outcome exists.
                let reply = slot.take_within(Duration::from_secs(30)).expect("immediate ack");
                send_outcome();
                assert!(matches!(rrx.recv().unwrap(), FragReply::Finished));
                reply
            };
            assert!(env.workers[0].send_ctrl(CtrlMsg::Shutdown));
            (h.join().unwrap(), reply)
        });
        (reply, table_snapshot(&shard, 0), before)
    }

    #[test]
    fn speculative_commit_defers_ack_and_keeps_undo_despite_op3() {
        // MultiGet over id 0 (lives at partition 0 of 2): writes a table
        // the fragment wrote, so it executes speculatively inside the
        // window, commits, and its ack is deferred.
        let (reply, after, before) =
            drive_speculation(true, vec![Value::Array(vec![Value::Int(0)])], true);
        match reply {
            SingleReply::Done { committed, speculative, undo_disabled_ever, .. } => {
                assert!(committed);
                assert!(speculative, "executed inside the window");
                assert!(!undo_disabled_ever, "OP3 must be ignored while speculating (§4.3)");
            }
            _ => panic!("expected a deferred Done"),
        }
        assert_ne!(after, before, "fragment + speculative bump are final");
        // id 0: +10 from the fragment, +1 from the speculative MultiGet.
        let id0 = after.iter().find(|(k, _)| k[0] == Value::Int(0)).unwrap();
        assert_eq!(id0.1[2], Value::Int(11));
    }

    #[test]
    fn coordinator_abort_cascades_and_restores_shard_state() {
        let (reply, after, before) =
            drive_speculation(false, vec![Value::Array(vec![Value::Int(0)])], true);
        assert!(
            matches!(reply, SingleReply::Cascaded { .. }),
            "cascaded speculative txn must be told to retry"
        );
        assert_eq!(after, before, "cascading rollback must restore the shard byte-for-byte");
    }

    #[test]
    fn non_conflicting_mispredict_acks_before_the_outcome() {
        // id 1 lives at partition 1: the speculative plan (lock partition 0
        // only) mispredicts before touching storage — nothing contingent
        // was read, so the reply is delivered without waiting for 2PC.
        let (reply, after, before) =
            drive_speculation(true, vec![Value::Array(vec![Value::Int(1)])], false);
        match reply {
            SingleReply::Mispredict { observed, .. } => {
                assert_eq!(observed, PartitionSet::single(1));
            }
            _ => panic!("expected an immediate Mispredict"),
        }
        // Only the committed fragment's bump remains.
        let id0 = after.iter().find(|(k, _)| k[0] == Value::Int(0)).unwrap();
        assert_eq!(id0.1[2], Value::Int(10));
        assert_eq!(after.len(), before.len());
    }

    #[test]
    fn non_conflicting_commit_acks_before_the_outcome() {
        // A MultiGet over no ids reads and writes nothing: a degenerate
        // read-only transaction, acknowledged mid-window (paper §2 OP4's
        // non-conflicting case), surviving even an eventual cascade.
        let (reply, after, before) = drive_speculation(false, vec![Value::Array(vec![])], false);
        match reply {
            SingleReply::Done { committed, speculative, .. } => {
                assert!(committed);
                assert!(speculative);
            }
            _ => panic!("expected an immediate Done"),
        }
        assert_eq!(after, before, "abort outcome cascades only the fragment");
    }

    #[test]
    fn lock_guard_release_early_frees_the_slot() {
        let mgr = LockManager::new(2);
        let mut guard = mgr.guard(PartitionSet::from_iter([0u32, 1]));
        guard.release_early(0);
        // Partition 0 is grantable again while 1 stays held.
        std::thread::scope(|s| {
            let h = s.spawn(|| {
                mgr.acquire(PartitionSet::single(0));
                mgr.release(PartitionSet::single(0));
            });
            h.join().expect("early-released slot must be grantable");
        });
        let held = guard.set;
        assert_eq!(held, PartitionSet::single(1));
    }

    #[test]
    fn commit_flush_serializes_partitions_not_the_cluster() {
        // With a real flush delay, doubling the workers roughly doubles
        // throughput for single-partition work even on one core — the
        // flushes overlap. Keep the margin loose: CI machines are noisy.
        let mk = |parts: u32| {
            let cfg = LiveConfig {
                requests_per_client: 60,
                commit_flush_us: 200,
                clients_per_partition: 2,
                ..Default::default()
            };
            let advisor = AssumeDistributed::new();
            let (m, _) = live_run(advisor, 1, parts, &cfg);
            m.throughput_tps()
        };
        // Lock-all cannot overlap flushes (every commit holds all
        // partitions), so this measures the serialized baseline...
        let serialized = mk(2);
        // ...while the single-partition fast path overlaps them.
        let cfg = LiveConfig {
            requests_per_client: 60,
            commit_flush_us: 200,
            clients_per_partition: 2,
            ..Default::default()
        };
        let advisor = AssumeSinglePartition::new();
        let (m, _) = live_run(advisor, 1, 2, &cfg);
        assert!(
            m.throughput_tps() > serialized,
            "fast path {} <= lock-all {}",
            m.throughput_tps(),
            serialized
        );
    }

    /// Runs one worker over the same six-message sequence — three bump
    /// singles, a reservation whose fragment reads the bumped row, then two
    /// more singles — and returns (reply shapes in send order, the row
    /// value the fragment observed, final table snapshot). With `batched`
    /// the lane, its three singles, and the reservation (with its whole
    /// fragment script) are buffered before the worker thread starts, so
    /// the sequence is served out of backlog drains: one group flush and
    /// group ack ahead of the reservation. Without it each call waits for
    /// its reply before the next is sent — the one-message-at-a-time
    /// schedule batching must be indistinguishable from.
    #[allow(clippy::type_complexity)]
    fn drive_batched_drain(batched: bool) -> (Vec<(bool, bool)>, i64, Vec<(Vec<Value>, Row)>) {
        let reg = kv_registry();
        let catalog = reg.catalog();
        let (ctrl_tx, ctrl_rx) = channel::<CtrlMsg<()>>();
        let env = Shared {
            catalog,
            registry: reg,
            advisor: AssumeSinglePartition::new(),
            cfg: LiveConfig::default(),
            num_partitions: 1,
            commit_flush: Duration::from_micros(100),
            msg_delay: Duration::ZERO,
            workers: vec![WorkerGate { ctrl: ctrl_tx, bell: Doorbell::new() }],
            locks: LockManager::new(1),
            seq: FlushSequencer::new(),
            metrics: Mutex::new(RunMetrics::default()),
            fb_tx: None,
            next_client: AtomicU64::new(0),
            started: Instant::now(),
            durable: None,
        };
        let mut shards = kv_database(1, 8).into_shards();
        let shard = shards.pop().unwrap();
        let single_plan = TxnPlan {
            base_partition: 0,
            lock_set: PartitionSet::single(0),
            disable_undo: false,
            early_prepare: false,
            estimate_cost_us: 0.0,
        };
        let mk_single = |reply: &Arc<SingleSlot<()>>| SingleMsg {
            req: Request { proc: 0, args: vec![Value::Array(vec![Value::Int(0)])], origin_node: 0 },
            plan: single_plan,
            session: (),
            reply: Arc::clone(reply),
            enqueued: Instant::now(),
        };
        let mut observed = 0i64;
        let mut replies = Vec::new();
        let shard = std::thread::scope(|s| {
            let env = &env;
            let (mut ltx, lrx) = ring::spsc::<SingleMsg<()>>(LANE_CAPACITY);
            let (ftx, frx) = channel();
            let (rtx, rrx) = channel();
            let exec = FragCmd::Exec { proc: 0, query: 0, params: vec![Value::Int(0)] };
            let done_shape = |reply| match reply {
                SingleReply::Done { committed, speculative, .. } => (committed, speculative),
                _ => panic!("expected Done"),
            };
            let take = |slot: &Arc<SingleSlot<()>>| {
                done_shape(slot.take_within(Duration::from_secs(30)).expect("single ack"))
            };
            if batched {
                // Everything below is buffered before the worker starts:
                // its first ctrl drain registers the lane and parks the
                // reservation, and the lane sweep picks the three singles
                // up as one group — executed, flushed, and acknowledged
                // ahead of the reservation.
                assert!(env.workers[0].send_ctrl(CtrlMsg::Lane(lrx)));
                let mut slots = Vec::new();
                for _ in 0..3 {
                    let slot = Arc::new(ReplySlot::new());
                    assert!(ltx.push(mk_single(&slot)).is_ok());
                    slots.push(slot);
                }
                assert!(env.workers[0]
                    .send_ctrl(CtrlMsg::Reserve(Reserve { frags: frx, results: rtx })));
                ftx.send(exec).unwrap();
                ftx.send(FragCmd::VoteFinish { commit: true }).unwrap();
                let h =
                    s.spawn(move || worker_loop::<AssumeSinglePartition>(shard, &ctrl_rx, env, 0));
                match rrx.recv().unwrap() {
                    FragReply::Rows(rows) => observed = rows[0][2].expect_int(),
                    _ => panic!("expected rows"),
                }
                assert!(matches!(rrx.recv().unwrap(), FragReply::Finished));
                for slot in &slots {
                    replies.push(take(slot));
                }
                // The trailing pair goes out only once the reservation has
                // resolved: under lane dispatch an earlier push could race
                // into the first group, which the old global FIFO forbade.
                for _ in 0..2 {
                    let slot = Arc::new(ReplySlot::new());
                    assert!(ltx.push(mk_single(&slot)).is_ok());
                    env.workers[0].bell.ring();
                    replies.push(take(&slot));
                }
                assert!(env.workers[0].send_ctrl(CtrlMsg::Shutdown));
                h.join().unwrap()
            } else {
                let h =
                    s.spawn(move || worker_loop::<AssumeSinglePartition>(shard, &ctrl_rx, env, 0));
                assert!(env.workers[0].send_ctrl(CtrlMsg::Lane(lrx)));
                let mut serve_single = || {
                    let slot = Arc::new(ReplySlot::new());
                    assert!(ltx.push(mk_single(&slot)).is_ok());
                    env.workers[0].bell.ring();
                    take(&slot)
                };
                for _ in 0..3 {
                    replies.push(serve_single());
                }
                assert!(env.workers[0]
                    .send_ctrl(CtrlMsg::Reserve(Reserve { frags: frx, results: rtx })));
                ftx.send(exec).unwrap();
                match rrx.recv().unwrap() {
                    FragReply::Rows(rows) => observed = rows[0][2].expect_int(),
                    _ => panic!("expected rows"),
                }
                ftx.send(FragCmd::VoteFinish { commit: true }).unwrap();
                assert!(matches!(rrx.recv().unwrap(), FragReply::Finished));
                for _ in 0..2 {
                    replies.push(serve_single());
                }
                assert!(env.workers[0].send_ctrl(CtrlMsg::Shutdown));
                h.join().unwrap()
            }
        });
        (replies, observed, table_snapshot(&shard, 0))
    }

    #[test]
    fn batched_drain_matches_one_at_a_time() {
        let (batched, b_obs, b_state) = drive_batched_drain(true);
        let (serial, s_obs, s_state) = drive_batched_drain(false);
        assert_eq!(batched, serial, "per-client replies must match in order and content");
        // The reservation closed the group: all three prior bumps were
        // committed, flushed, and acknowledged before the fragment ran.
        assert_eq!(b_obs, 3, "reservation must observe every earlier queued commit");
        assert_eq!(s_obs, 3);
        assert_eq!(b_state, s_state, "final shard state must be byte-identical");
        let id0 = b_state.iter().find(|(k, _)| k[0] == Value::Int(0)).unwrap();
        assert_eq!(id0.1[2], Value::Int(5), "all five bumps are durable");
    }

    /// Runs one worker over the same four-query fragment script — bump id
    /// 0 by 7, read it back, bump a missing id (zero rows), read id 3 —
    /// then commits via `VoteFinish`. With `batched` the script ships as
    /// one [`FragCmd::ExecBatch`] on a registered fragment lane (the
    /// production protocol); without it each query goes out as a legacy
    /// [`FragCmd::Exec`] over a per-transaction [`Reserve`] pair. Returns
    /// (per-query result rows in script order, final table snapshot) —
    /// batching must be indistinguishable from the one-command-at-a-time
    /// schedule.
    #[allow(clippy::type_complexity)]
    fn drive_fragment_script(batched: bool) -> (Vec<Vec<Row>>, Vec<(Vec<Value>, Row)>) {
        let reg = kv_registry();
        let catalog = reg.catalog();
        let (ctrl_tx, ctrl_rx) = channel::<CtrlMsg<()>>();
        let env = Shared {
            catalog,
            registry: reg,
            advisor: AssumeSinglePartition::new(),
            cfg: LiveConfig::default(),
            num_partitions: 1,
            commit_flush: Duration::ZERO,
            msg_delay: Duration::ZERO,
            workers: vec![WorkerGate { ctrl: ctrl_tx, bell: Doorbell::new() }],
            locks: LockManager::new(1),
            seq: FlushSequencer::new(),
            metrics: Mutex::new(RunMetrics::default()),
            fb_tx: None,
            next_client: AtomicU64::new(0),
            started: Instant::now(),
            durable: None,
        };
        let mut shards = kv_database(1, 8).into_shards();
        let shard = shards.pop().unwrap();
        let script: Vec<(QueryId, Vec<Value>)> = vec![
            (1, vec![Value::Int(0), Value::Int(7)]),
            (0, vec![Value::Int(0)]),
            (1, vec![Value::Int(99), Value::Int(1)]),
            (0, vec![Value::Int(3)]),
        ];
        let mut rows_out: Vec<Vec<Row>> = Vec::new();
        let shard = std::thread::scope(|s| {
            let env = &env;
            let h = s.spawn(move || worker_loop::<AssumeSinglePartition>(shard, &ctrl_rx, env, 0));
            if batched {
                let (mut ftx, frx) = ring::spsc::<FragCmd>(LANE_CAPACITY);
                let slot = Arc::new(ReplySlot::<FragReply>::new());
                assert!(env.workers[0].send_ctrl(CtrlMsg::FragLane(FragConn {
                    frags: frx,
                    replies: Arc::clone(&slot),
                })));
                assert!(ftx.push(FragCmd::ExecBatch { proc: 0, queries: script }).is_ok());
                env.workers[0].bell.ring();
                match slot.take_within(Duration::from_secs(30)).expect("batch reply") {
                    FragReply::Batch(items) => {
                        for item in items {
                            match item {
                                BatchItem::Rows(rows) => rows_out.push(rows),
                                BatchItem::Constraint(msg) => panic!("constraint: {msg}"),
                            }
                        }
                    }
                    _ => panic!("expected a Batch reply"),
                }
                assert!(ftx.push(FragCmd::VoteFinish { commit: true }).is_ok());
                env.workers[0].bell.ring();
                assert!(matches!(
                    slot.take_within(Duration::from_secs(30)).expect("finish ack"),
                    FragReply::Finished
                ));
            } else {
                let (ftx, frx) = channel();
                let (rtx, rrx) = channel();
                assert!(env.workers[0]
                    .send_ctrl(CtrlMsg::Reserve(Reserve { frags: frx, results: rtx })));
                for (query, params) in script {
                    ftx.send(FragCmd::Exec { proc: 0, query, params }).unwrap();
                    match rrx.recv().unwrap() {
                        FragReply::Rows(rows) => rows_out.push(rows),
                        _ => panic!("expected rows"),
                    }
                }
                ftx.send(FragCmd::VoteFinish { commit: true }).unwrap();
                assert!(matches!(rrx.recv().unwrap(), FragReply::Finished));
            }
            assert!(env.workers[0].send_ctrl(CtrlMsg::Shutdown));
            h.join().unwrap()
        });
        (rows_out, table_snapshot(&shard, 0))
    }

    #[test]
    fn fragment_batching_matches_per_query_commands() {
        let (batch_rows, batch_state) = drive_fragment_script(true);
        let (serial_rows, serial_state) = drive_fragment_script(false);
        assert_eq!(batch_rows, serial_rows, "per-query results must match in order and content");
        assert_eq!(batch_state, serial_state, "final shard state must be byte-identical");
        // Shape sanity: the bump returned the updated row, the read saw
        // it, the missing id affected nothing, the last read hit id 3.
        assert_eq!(batch_rows.len(), 4);
        assert_eq!(batch_rows[0][0][2], Value::Int(7));
        assert_eq!(batch_rows[1][0][2], Value::Int(7));
        assert!(batch_rows[2].is_empty(), "missing id must affect zero rows");
        assert_eq!(batch_rows[3][0][0], Value::Int(3));
        let id0 = batch_state.iter().find(|(k, _)| k[0] == Value::Int(0)).unwrap();
        assert_eq!(id0.1[2], Value::Int(7), "committed bump is durable");
    }

    #[test]
    fn disjoint_lock_sets_do_not_serialize() {
        let mgr = LockManager::new(4);
        mgr.acquire(PartitionSet::from_iter([0u32, 1]));
        // A disjoint set is grantable while {0,1} is held — the sharded
        // manager must not serialize them on one mutex.
        std::thread::scope(|s| {
            s.spawn(|| {
                mgr.acquire(PartitionSet::from_iter([2u32, 3]));
                mgr.release(PartitionSet::from_iter([2u32, 3]));
            })
            .join()
            .expect("disjoint shards must not serialize");
        });
        // An overlapping set still excludes until the holder releases.
        let (tx, rx) = channel();
        std::thread::scope(|s| {
            let mgr = &mgr;
            s.spawn(move || {
                mgr.acquire(PartitionSet::from_iter([1u32, 2]));
                tx.send(()).unwrap();
                mgr.release(PartitionSet::from_iter([1u32, 2]));
            });
            assert!(
                rx.recv_timeout(Duration::from_millis(100)).is_err(),
                "overlapping set acquired while partition 1 was held"
            );
            mgr.release(PartitionSet::from_iter([0u32, 1]));
            rx.recv_timeout(Duration::from_secs(30)).expect("blocked acquirer must wake");
        });
    }

    /// Plans `{0, 1}` for every request regardless of its true target, so
    /// work on partition 2 mispredicts on every attempt until the forced
    /// lock-all fallback.
    struct WrongLockSet;

    impl LiveAdvisor for WrongLockSet {
        type Session = ();

        fn name(&self) -> &str {
            "wrong-lock-set"
        }

        fn plan_live(&self, _req: &Request, _ctx: &PlanContext<'_>) -> (TxnPlan, ()) {
            (
                TxnPlan {
                    base_partition: 0,
                    lock_set: PartitionSet::from_iter([0u32, 1]),
                    disable_undo: false,
                    early_prepare: false,
                    estimate_cost_us: 0.0,
                },
                (),
            )
        }

        fn replan_live(
            &self,
            req: &Request,
            _observed: PartitionSet,
            _attempt: u32,
            ctx: &PlanContext<'_>,
        ) -> (TxnPlan, ()) {
            self.plan_live(req, ctx)
        }
    }

    #[test]
    fn lock_hold_recorded_on_mispredict_and_commit_releases() {
        // MultiGet over id 2 (partition 2 of 4) under a {0,1} plan: three
        // mispredicted attempts (max_restarts = 2) each release two held
        // partitions without reaching a commit, then the lock-all fallback
        // commits holding four. Before the fix only the commit path
        // recorded, so exactly the contended attempts went missing.
        let rt = LiveRuntime::start(
            kv_database(4, 8),
            kv_registry(),
            WrongLockSet,
            LiveConfig::default(),
        );
        let mut client = rt.client();
        let outcome = client.call(0, vec![Value::Array(vec![Value::Int(2)])]).unwrap();
        assert!(matches!(outcome, TxnOutcome::Committed));
        let (m, _) = rt.shutdown();
        assert_eq!(m.restarts, 3);
        assert_eq!(
            m.lock_hold.count(),
            3 * 2 + 4,
            "every release path must record one sample per held partition"
        );
    }

    /// Single-partition advisor whose maintainer sleeps per record,
    /// building a feedback backlog that drains long after the workers
    /// finish.
    struct SlowMaintained;

    impl LiveAdvisor for SlowMaintained {
        type Session = ();

        fn name(&self) -> &str {
            "slow-maintained"
        }

        fn plan_live(&self, _req: &Request, ctx: &PlanContext<'_>) -> (TxnPlan, ()) {
            (TxnPlan::single(ctx.random_local_partition), ())
        }

        fn replan_live(
            &self,
            _req: &Request,
            _observed: PartitionSet,
            _attempt: u32,
            ctx: &PlanContext<'_>,
        ) -> (TxnPlan, ()) {
            (TxnPlan::lock_all(ctx.random_local_partition, ctx.num_partitions), ())
        }

        fn on_end_live(&self, _session: (), _outcome: TxnOutcome) -> Option<TxnFeedback> {
            Some(TxnFeedback {
                proc: 0,
                model: 0,
                epoch: 0,
                path: Vec::new(),
                terminal: Some(true),
                deviated: false,
                predicted: PartitionSet::single(0),
            })
        }

        fn maintainer(&self) -> Option<Box<dyn LiveMaintainer + '_>> {
            Some(Box::new(SleepyMaintainer { seen: 0 }))
        }
    }

    struct SleepyMaintainer {
        seen: u64,
    }

    impl LiveMaintainer for SleepyMaintainer {
        fn absorb(&mut self, _fb: TxnFeedback) {
            self.seen += 1;
            std::thread::sleep(Duration::from_millis(2));
        }

        fn report(&self) -> MaintenanceReport {
            MaintenanceReport { feedback_records: self.seen, ..Default::default() }
        }
    }

    #[test]
    fn window_pins_at_drain_completion_not_maintenance_join() {
        let rt = LiveRuntime::start(
            kv_database(1, 8),
            kv_registry(),
            SlowMaintained,
            LiveConfig::default(),
        );
        let mut client = rt.client();
        for _ in 0..100 {
            client.call(0, vec![Value::Array(vec![Value::Int(0)])]).unwrap();
        }
        let mid = rt.metrics();
        let t_shutdown = Instant::now();
        let (fin, _) = rt.shutdown();
        let shutdown_ms = t_shutdown.elapsed().as_secs_f64() * 1e3;
        assert_eq!(fin.feedback_records + fin.feedback_dropped, 100);
        assert!(
            shutdown_ms >= 50.0,
            "expected a maintenance backlog to drain; took {shutdown_ms:.1} ms"
        );
        // The final window must exclude the maintenance drain: it may
        // exceed the mid-run snapshot only by the (fast) worker join.
        assert!(
            fin.window_us <= mid.window_us + 50_000.0,
            "teardown leaked into the window: final {} µs vs mid {} µs",
            fin.window_us,
            mid.window_us
        );
        // Closed-loop throughput stays consistent across the snapshots
        // (same committed count, near-identical window).
        assert!(
            fin.throughput_tps() >= mid.throughput_tps() * 0.5,
            "final tps {:.0} collapsed vs mid-run tps {:.0}",
            fin.throughput_tps(),
            mid.throughput_tps()
        );
    }

    /// Advisor that offers a maintainer to the start-time probe, then
    /// withdraws it when the maintenance thread asks again — the contract
    /// violation the maintenance loop must survive (regression: this used
    /// to panic the maintenance thread, turning shutdown into a join on a
    /// panicked thread).
    struct WithdrawnMaintainer {
        probed: std::sync::atomic::AtomicBool,
    }

    impl LiveAdvisor for WithdrawnMaintainer {
        type Session = ();

        fn name(&self) -> &str {
            "withdrawn-maintainer"
        }

        fn plan_live(&self, _req: &Request, ctx: &PlanContext<'_>) -> (TxnPlan, ()) {
            (TxnPlan::single(ctx.random_local_partition), ())
        }

        fn replan_live(
            &self,
            _req: &Request,
            _observed: PartitionSet,
            _attempt: u32,
            ctx: &PlanContext<'_>,
        ) -> (TxnPlan, ()) {
            (TxnPlan::lock_all(ctx.random_local_partition, ctx.num_partitions), ())
        }

        fn on_end_live(&self, _session: (), _outcome: TxnOutcome) -> Option<TxnFeedback> {
            Some(TxnFeedback {
                proc: 0,
                model: 0,
                epoch: 0,
                path: Vec::new(),
                terminal: Some(true),
                deviated: false,
                predicted: PartitionSet::single(0),
            })
        }

        fn maintainer(&self) -> Option<Box<dyn LiveMaintainer + '_>> {
            if self.probed.swap(true, std::sync::atomic::Ordering::SeqCst) {
                None
            } else {
                Some(Box::new(SleepyMaintainer { seen: 0 }))
            }
        }
    }

    #[test]
    fn maintenance_survives_withdrawn_maintainer() {
        let rt = LiveRuntime::start(
            kv_database(1, 8),
            kv_registry(),
            WithdrawnMaintainer { probed: std::sync::atomic::AtomicBool::new(false) },
            LiveConfig::default(),
        );
        let mut client = rt.client();
        for _ in 0..50 {
            client.call(0, vec![Value::Array(vec![Value::Int(0)])]).unwrap();
        }
        // Shutdown must join a *live* maintenance thread (it drained the
        // feedback instead of panicking) and fold in an all-zero report.
        let (fin, _) = rt.shutdown();
        assert_eq!(fin.committed, 50);
        assert_eq!(fin.feedback_records, 0, "no maintainer, so no absorbed records");
        assert_eq!(fin.model_swaps, 0);
    }

    #[test]
    fn live_profile_attributes_every_resolved_call() {
        let cfg = LiveConfig { requests_per_client: 40, ..Default::default() };
        let (m, _) = live_run(AssumeSinglePartition::new(), 2, 4, &cfg);
        let total = m.committed + m.user_aborts;
        assert_eq!(m.profile.total_txns(), total, "one profile record per resolved call");
        assert!(m.profile.grand_total_us() > 0.0);
        assert!(m.profile.overall_share(Bucket::Execution) > 0.0);
        assert_eq!(m.profile.overall_share(Bucket::Planning), 0.0, "live runtime never plans");
        assert!(
            m.profile.overall_share(Bucket::Coordination) > 0.0,
            "spread-2 work must coordinate"
        );
        let sum: f64 = Bucket::ALL.iter().map(|&b| m.profile.overall_share(b)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    /// Fresh (deleted) per-test durability directory under the system
    /// temp dir.
    fn durability_dir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("engine-dur-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    /// Sorted `(key, row)` contents of table 0 on every partition — the
    /// byte-identical-state comparator for recovery tests.
    fn sorted_tables(db: &Database, parts: u32) -> Vec<Vec<(Vec<Value>, Row)>> {
        (0..parts)
            .map(|p| {
                let mut rows: Vec<(Vec<Value>, Row)> =
                    db.table(p, 0).iter().map(|(k, r)| (k.clone(), r.clone())).collect();
                rows.sort();
                rows
            })
            .collect()
    }

    #[test]
    fn durable_log_replay_reproduces_fast_path_state() {
        let dir = durability_dir("fast");
        let cfg = LiveConfig {
            requests_per_client: 30,
            durability: Some(DurabilityConfig::new(&dir)),
            ..Default::default()
        };
        let (m, db) = live_run(AssumeSinglePartition::new(), 1, 4, &cfg);
        assert!(m.log_records > 0, "committed writers must be command-logged");
        assert!(m.log_bytes_written > 0);
        assert_eq!(m.snapshots_taken, 0);
        // Replay the log against a pristine database: every committed
        // writer re-executes, reproducing the exact table contents.
        let (rt, report) = LiveRuntime::recover(
            kv_database(4, 8),
            kv_registry(),
            AssumeSinglePartition::new(),
            cfg,
        );
        let (m2, db2) = rt.shutdown();
        assert_eq!(report.replayed, m.committed);
        assert_eq!(report.skipped, 0, "clean shutdown leaves no undecided work");
        assert_eq!(report.snapshot_gen, None);
        assert!(m2.recovery_ms > 0.0, "recovery time must be reported");
        assert_eq!(sorted_tables(&db, 4), sorted_tables(&db2, 4));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn strict_read_fence_serves_reads_and_replays_identically() {
        let dir = durability_dir("fence");
        let cfg = LiveConfig {
            durability: Some(DurabilityConfig::new(&dir).read_fence()),
            ..Default::default()
        };
        let rt = LiveRuntime::start(
            kv_database(2, 8),
            kv_registry(),
            AssumeSinglePartition::new(),
            cfg.clone(),
        );
        let mut client = rt.client();
        let (mut committed, mut aborted) = (0u64, 0u64);
        for i in 0..60i64 {
            // Alternate a committing write with a read-shaped call: a
            // missing id aborts before writing anything, so its reply
            // takes the read path — and under the strict fence must wait
            // out the covering flush whenever the preceding write's group
            // is still in the flusher's hands.
            let id = if i % 2 == 0 { i % 16 } else { 1_000 };
            match client.call(0, vec![Value::Array(vec![Value::Int(id)])]).unwrap() {
                TxnOutcome::Committed => committed += 1,
                TxnOutcome::UserAborted => aborted += 1,
                other => panic!("client calls resolve: {other:?}"),
            }
        }
        drop(client);
        let (m, db) = rt.shutdown();
        assert_eq!((committed, aborted), (30, 30));
        assert_eq!((m.committed, m.user_aborts), (30, 30));
        assert_eq!(m.log_records, 30, "only committed writers are logged");
        let (rt2, report) = LiveRuntime::recover(
            kv_database(2, 8),
            kv_registry(),
            AssumeSinglePartition::new(),
            cfg,
        );
        let (_, db2) = rt2.shutdown();
        assert_eq!(report.replayed, 30);
        assert_eq!(sorted_tables(&db, 2), sorted_tables(&db2, 2));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn durable_log_replay_reproduces_distributed_state() {
        let dir = durability_dir("dist");
        let cfg = LiveConfig {
            requests_per_client: 30,
            durability: Some(DurabilityConfig::new(&dir)),
            ..Default::default()
        };
        let (m, db) = live_run(AssumeDistributed::new(), 2, 4, &cfg);
        assert!(m.distributed > 0, "lock-all traffic is distributed");
        let (rt, report) =
            LiveRuntime::recover(kv_database(4, 8), kv_registry(), AssumeDistributed::new(), cfg);
        let (_, db2) = rt.shutdown();
        assert_eq!(report.replayed, m.committed, "each 2PC commit replays exactly once");
        assert_eq!(report.skipped, 0);
        assert_eq!(sorted_tables(&db, 4), sorted_tables(&db2, 4));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_bounds_replay_and_recovery_matches() {
        let dir = durability_dir("snap");
        let cfg =
            LiveConfig { durability: Some(DurabilityConfig::new(&dir)), ..Default::default() };
        let rt = LiveRuntime::start(
            kv_database(4, 8),
            kv_registry(),
            AssumeSinglePartition::new(),
            cfg.clone(),
        );
        let mut client = rt.client();
        for i in 0..50i64 {
            client.call(0, vec![Value::Array(vec![Value::Int(i % 32)])]).unwrap();
        }
        let gen = rt.snapshot_now().expect("snapshot under live traffic pauses");
        for i in 0..40i64 {
            client.call(0, vec![Value::Array(vec![Value::Int((i * 3) % 32)])]).unwrap();
        }
        drop(client);
        let (m, db) = rt.shutdown();
        assert_eq!(m.committed, 90);
        assert_eq!(m.snapshots_taken, 1);
        let (rt2, report) = LiveRuntime::recover(
            kv_database(4, 8),
            kv_registry(),
            AssumeSinglePartition::new(),
            cfg,
        );
        let (_, db2) = rt2.shutdown();
        assert_eq!(report.snapshot_gen, Some(gen));
        assert_eq!(report.replayed, 40, "only post-snapshot commits replay");
        assert_eq!(sorted_tables(&db, 4), sorted_tables(&db2, 4));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn background_snapshotter_publishes_generations() {
        let dir = durability_dir("bg-snap");
        let cfg = LiveConfig {
            durability: Some(DurabilityConfig::new(&dir).snapshot_every(Duration::from_millis(25))),
            ..Default::default()
        };
        let rt =
            LiveRuntime::start(kv_database(2, 8), kv_registry(), AssumeSinglePartition::new(), cfg);
        let mut client = rt.client();
        let t0 = Instant::now();
        let mut calls = 0u64;
        while t0.elapsed() < Duration::from_millis(120) {
            client.call(0, vec![Value::Array(vec![Value::Int((calls % 16) as i64)])]).unwrap();
            calls += 1;
        }
        drop(client);
        let (m, _) = rt.shutdown();
        assert_eq!(m.committed, calls);
        assert!(m.snapshots_taken >= 1, "25 ms cadence over 120 ms must snapshot");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
