//! The live multi-threaded partition runtime.
//!
//! Where [`crate::Simulation`] charges a cost model for time, this module
//! runs the paper's architecture (§2, Fig. 1) for real: one OS worker
//! thread per partition with *exclusive ownership* of that partition's
//! [`storage::Shard`], a channel-based dispatcher, and closed-loop client
//! threads that route every request through a shared, trained, read-only
//! [`LiveAdvisor`].
//!
//! ## Thread and ownership model
//!
//! * **Workers** (one per partition) own their shard outright — no locks
//!   guard row access, ever. A worker drains a queue of messages: whole
//!   single-partition transactions (the lock-free fast path) and
//!   reservations from distributed transactions.
//! * **Clients** (closed-loop, like the paper's §6.4 load generators) plan
//!   each request via the shared advisor, then either hand the whole
//!   transaction to its base partition's worker, or — for a multi-partition
//!   lock set — become the transaction's *coordinator*: they acquire the
//!   cluster lock atomically, reserve every participating worker, drive the
//!   control code themselves, and ship per-partition query fragments over
//!   per-transaction channels (the blocking base-partition coordination
//!   path).
//! * **The lock manager** grants a distributed transaction its entire lock
//!   set atomically (all-or-nothing under one mutex) with FIFO fairness
//!   among conflicting waiters. Because no transaction ever holds one
//!   partition while waiting for another, and a reservation only ever waits
//!   behind finite single-partition work or reservations of already-granted
//!   (and therefore progressing) transactions, the runtime is deadlock-free
//!   by construction.
//!
//! Mispredicts are handled exactly like [`crate::Simulation`]: a query
//! batch that targets a partition outside the lock set rolls the
//! transaction back, the advisor replans (`attempt` counting up), and after
//! `max_restarts` the transaction falls back to a lock-all plan that cannot
//! mispredict. What the live runtime does *not* yet do is speculative
//! execution / early release (OP4) — a released partition would need
//! distributed undo coordination that is simulated-only today.

use crate::advisor::{LiveAdvisor, PlanContext, Request, TxnOutcome, TxnPlan};
use crate::catalog::Catalog;
use crate::exec::{execute_fragment, ExecutedQuery};
use crate::metrics::RunMetrics;
use crate::procedure::{ProcedureRegistry, Step};
use crate::sim::RequestGenerator;
use common::{
    derive_seed, seeded_rng, Error, FxHashMap, PartitionId, PartitionSet, ProcId, QueryId,
    Result, Value,
};
use rand::Rng;
use std::collections::VecDeque;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};
use storage::{Database, Row, Shard, UndoLog};

/// Live-runtime parameters.
#[derive(Debug, Clone)]
pub struct LiveConfig {
    /// Closed-loop client threads per partition (the paper uses 4).
    pub clients_per_partition: u32,
    /// Requests each client issues before its stream runs dry.
    pub requests_per_client: u64,
    /// Mispredict restarts before falling back to lock-all.
    pub max_restarts: u32,
    /// Seed for the clients' random-partition draws.
    pub seed: u64,
    /// Synchronous commit-log flush time per partition (µs of real sleep at
    /// commit, 0 = off). Models the durable group-commit H-Store overlaps;
    /// it also makes worker-count scaling observable on machines with fewer
    /// cores than partitions, because flushes on different partitions
    /// overlap in wall-clock time while CPU work cannot.
    pub commit_flush_us: u64,
}

impl Default for LiveConfig {
    fn default() -> Self {
        LiveConfig {
            clients_per_partition: 4,
            requests_per_client: 500,
            max_restarts: 2,
            seed: 7,
            commit_flush_us: 0,
        }
    }
}

/// Grants distributed transactions their whole lock set atomically.
///
/// A waiter is granted only when (a) every partition it wants is free and
/// (b) no *earlier* still-waiting transaction wants any of those partitions
/// — FIFO among conflicting waiters, bypass for disjoint ones. Single-
/// partition transactions never touch this structure: their ordering is the
/// owning worker's queue itself.
struct LockManager {
    state: Mutex<LockState>,
    cv: Condvar,
}

struct LockState {
    busy: u64,
    waiters: VecDeque<(u64, u64)>, // (seq, mask)
    next_seq: u64,
}

impl LockManager {
    fn new() -> Self {
        LockManager {
            state: Mutex::new(LockState { busy: 0, waiters: VecDeque::new(), next_seq: 0 }),
            cv: Condvar::new(),
        }
    }

    fn acquire(&self, set: PartitionSet) {
        let mask = set.0;
        let mut st = self.state.lock().expect("lock manager poisoned");
        let seq = st.next_seq;
        st.next_seq += 1;
        st.waiters.push_back((seq, mask));
        loop {
            let mut earlier_wanted = 0u64;
            let mut grantable = false;
            for &(s, m) in &st.waiters {
                if s == seq {
                    grantable = st.busy & mask == 0 && earlier_wanted & mask == 0;
                    break;
                }
                earlier_wanted |= m;
            }
            if grantable {
                st.busy |= mask;
                st.waiters.retain(|&(s, _)| s != seq);
                return;
            }
            st = self.cv.wait(st).expect("lock manager poisoned");
        }
    }

    fn release(&self, set: PartitionSet) {
        let mut st = self.state.lock().expect("lock manager poisoned");
        st.busy &= !set.0;
        drop(st);
        self.cv.notify_all();
    }

    /// Acquires `set` and returns a guard that releases it on drop — so a
    /// coordinator that unwinds mid-transaction cannot strand its lock set
    /// and wedge every later conflicting transaction.
    fn guard(&self, set: PartitionSet) -> LockGuard<'_> {
        self.acquire(set);
        LockGuard { mgr: self, set }
    }
}

struct LockGuard<'a> {
    mgr: &'a LockManager,
    set: PartitionSet,
}

impl Drop for LockGuard<'_> {
    fn drop(&mut self) {
        self.mgr.release(self.set);
    }
}

/// A fragment command sent to a reserved worker.
enum FragCmd {
    /// Execute this partition's slice of one query invocation.
    Exec { proc: ProcId, query: QueryId, params: Vec<Value> },
    /// Two-phase-commit outcome: commit (clear undo, flush) or abort (roll
    /// back this partition's fragment effects).
    Finish { commit: bool },
}

/// A reserved worker's answer to a fragment command.
enum FragReply {
    Rows(Vec<Row>),
    Constraint(String),
    Finished,
    Fatal(Error),
}

/// Reservation of one worker by a distributed transaction's coordinator.
struct Reserve {
    frags: Receiver<FragCmd>,
    results: Sender<FragReply>,
}

/// How a single-partition fast-path transaction ended at its worker.
enum SingleReply<S> {
    Done {
        committed: bool,
        session: S,
        accessed: PartitionSet,
        access_counts: FxHashMap<PartitionId, u32>,
        undo_disabled_ever: bool,
    },
    Mispredict {
        observed: PartitionSet,
        session: S,
    },
    Fatal(Error),
}

enum WorkerMsg<S> {
    Single {
        req: Request,
        plan: TxnPlan,
        session: S,
        reply: Sender<SingleReply<S>>,
    },
    Reserve(Reserve),
    Shutdown,
}

struct WorkerEnv<'a, A: LiveAdvisor> {
    registry: &'a ProcedureRegistry,
    catalog: &'a Catalog,
    advisor: &'a A,
    num_partitions: u32,
    commit_flush: Duration,
}

fn flush(d: Duration) {
    if !d.is_zero() {
        std::thread::sleep(d);
    }
}

/// One partition's server loop: drain messages until shutdown, then hand
/// the shard back.
fn worker_loop<A: LiveAdvisor>(
    mut shard: Shard,
    rx: &Receiver<WorkerMsg<A::Session>>,
    env: &WorkerEnv<'_, A>,
) -> Shard {
    while let Ok(msg) = rx.recv() {
        match msg {
            WorkerMsg::Single { req, plan, session, reply } => {
                let outcome = run_single(&mut shard, env, &req, &plan, session);
                let _ = reply.send(outcome);
            }
            WorkerMsg::Reserve(r) => serve_reservation(&mut shard, env, &r),
            WorkerMsg::Shutdown => break,
        }
    }
    shard
}

/// Executes one whole single-partition transaction on the owning worker —
/// the lock-free fast path. Mirrors `Simulation::try_execute` minus timing,
/// speculation, and remote work.
fn run_single<A: LiveAdvisor>(
    shard: &mut Shard,
    env: &WorkerEnv<'_, A>,
    req: &Request,
    plan: &TxnPlan,
    mut session: A::Session,
) -> SingleReply<A::Session> {
    let me = shard.partition();
    debug_assert_eq!(plan.lock_set, PartitionSet::single(me), "fast path misrouted");
    let lock_set = plan.lock_set;
    let mut inst = env.registry.get(req.proc).instantiate(&req.args);
    let mut undo = if plan.disable_undo { UndoLog::disabled() } else { UndoLog::new() };
    let mut undo_disabled_ever = plan.disable_undo;
    let mut results: Option<Vec<Vec<Row>>> = None;
    let mut accessed = PartitionSet::EMPTY;
    let mut access_counts: FxHashMap<PartitionId, u32> = FxHashMap::default();
    let mut pending_abort: Option<String> = None;
    loop {
        let step = match pending_abort.take() {
            Some(msg) => Step::Abort(msg),
            None => inst.next(results.as_deref()),
        };
        match step {
            Step::Queries(batch) => {
                // Validate targets before touching storage, exactly like the
                // simulator: the transaction learns the partitions of the
                // queries up to and including the first offending one.
                let mut seen = PartitionSet::EMPTY;
                let mut violation = false;
                for inv in &batch {
                    let def = env.catalog.proc(req.proc).query(inv.query);
                    let targets = def.estimate_partitions_n(env.num_partitions, &inv.params);
                    seen = seen.union(targets);
                    if !targets.is_subset(lock_set) {
                        violation = true;
                        break;
                    }
                }
                if violation {
                    if !undo.can_rollback() {
                        return SingleReply::Fatal(Error::UnrecoverableAbort {
                            txn: u64::from(req.proc) + 1000,
                        });
                    }
                    if let Err(e) = shard.rollback(&mut undo) {
                        return SingleReply::Fatal(e);
                    }
                    return SingleReply::Mispredict {
                        observed: accessed.union(seen),
                        session,
                    };
                }
                let mut batch_results = Vec::with_capacity(batch.len());
                for inv in batch {
                    let def = env.catalog.proc(req.proc).query(inv.query);
                    let is_write = def.is_write();
                    let rows = match execute_fragment(shard, def, &inv.params, &mut undo) {
                        Ok(rows) => rows,
                        Err(Error::Constraint(msg)) => {
                            pending_abort = Some(msg);
                            break;
                        }
                        Err(e) => return SingleReply::Fatal(e),
                    };
                    accessed.insert(me);
                    *access_counts.entry(me).or_insert(0) += 1;
                    let upd = env.advisor.on_query_live(
                        &mut session,
                        &ExecutedQuery {
                            query: inv.query,
                            params: inv.params,
                            partitions: PartitionSet::single(me),
                            is_write,
                        },
                    );
                    if upd.disable_undo && undo.is_enabled() {
                        undo.disable();
                        undo_disabled_ever = true;
                    }
                    batch_results.push(rows);
                }
                results = Some(batch_results);
            }
            Step::Commit => {
                undo.clear();
                flush(env.commit_flush);
                return SingleReply::Done {
                    committed: true,
                    session,
                    accessed,
                    access_counts,
                    undo_disabled_ever,
                };
            }
            Step::Abort(_) => {
                if !undo.can_rollback() {
                    return SingleReply::Fatal(Error::UnrecoverableAbort {
                        txn: u64::from(req.proc),
                    });
                }
                if let Err(e) = shard.rollback(&mut undo) {
                    return SingleReply::Fatal(e);
                }
                return SingleReply::Done {
                    committed: false,
                    session,
                    accessed,
                    access_counts,
                    undo_disabled_ever,
                };
            }
        }
    }
}

/// Parks the worker for one distributed transaction: execute its fragments
/// against the owned shard until the coordinator sends the 2PC outcome.
fn serve_reservation<A: LiveAdvisor>(shard: &mut Shard, env: &WorkerEnv<'_, A>, r: &Reserve) {
    let mut undo = UndoLog::new();
    loop {
        match r.frags.recv() {
            Ok(FragCmd::Exec { proc, query, params }) => {
                let def = env.catalog.proc(proc).query(query);
                let reply = match execute_fragment(shard, def, &params, &mut undo) {
                    Ok(rows) => FragReply::Rows(rows),
                    Err(Error::Constraint(msg)) => FragReply::Constraint(msg),
                    Err(e) => FragReply::Fatal(e),
                };
                if r.results.send(reply).is_err() {
                    // Coordinator vanished: restore the shard and move on.
                    let _ = shard.rollback(&mut undo);
                    return;
                }
            }
            Ok(FragCmd::Finish { commit }) => {
                let reply = if commit {
                    undo.clear();
                    flush(env.commit_flush);
                    FragReply::Finished
                } else {
                    match shard.rollback(&mut undo) {
                        Ok(()) => FragReply::Finished,
                        Err(e) => FragReply::Fatal(e),
                    }
                };
                let _ = r.results.send(reply);
                return;
            }
            Err(_) => {
                let _ = shard.rollback(&mut undo);
                return;
            }
        }
    }
}

/// How one execution attempt ended, from the client's point of view.
enum Attempt<S> {
    Done {
        committed: bool,
        accessed: PartitionSet,
        access_counts: FxHashMap<PartitionId, u32>,
        undo_disabled_ever: bool,
        session: S,
    },
    Mispredict {
        observed: PartitionSet,
        session: S,
    },
    Fatal(Error),
}

/// Coordinates one distributed transaction from the client thread: atomic
/// lock acquisition, worker reservation, fragment shipping, 2PC outcome.
#[allow(clippy::too_many_lines)]
fn run_distributed<A: LiveAdvisor>(
    env: &WorkerEnv<'_, A>,
    workers: &[Sender<WorkerMsg<A::Session>>],
    locks: &LockManager,
    req: &Request,
    plan: &TxnPlan,
    mut session: A::Session,
) -> Attempt<A::Session> {
    let lock_set = plan.lock_set;
    // Held for the whole coordination; the drop guard also releases on an
    // unwind, so a panicking coordinator cannot wedge later transactions.
    // Declared before the fragment channels so an unwind closes those first
    // (parked workers roll back their fragments) and releases locks last.
    let _locks_held = locks.guard(lock_set);
    // Reserve every participant (including the base partition — the control
    // code runs here on the coordinator, so the base is a fragment executor
    // like the others).
    let n = env.num_partitions as usize;
    let mut frag_tx: Vec<Option<Sender<FragCmd>>> = (0..n).map(|_| None).collect();
    let mut res_rx: Vec<Option<Receiver<FragReply>>> = (0..n).map(|_| None).collect();
    for p in lock_set.iter() {
        let (ftx, frx) = channel();
        let (rtx, rrx) = channel();
        frag_tx[p as usize] = Some(ftx);
        res_rx[p as usize] = Some(rrx);
        if workers[p as usize]
            .send(WorkerMsg::Reserve(Reserve { frags: frx, results: rtx }))
            .is_err()
        {
            return Attempt::Fatal(Error::Other(format!("worker {p} is gone")));
        }
    }
    // Sends the 2PC outcome everywhere and waits for every ack; every call
    // site returns immediately afterwards, so the lock guard releases only
    // after all fragment effects are durable (commit) or undone (abort).
    let finish_all = |frag_tx: &[Option<Sender<FragCmd>>],
                      res_rx: &[Option<Receiver<FragReply>>],
                      commit: bool|
     -> Result<()> {
        let mut failure = None;
        for p in lock_set.iter() {
            let _ = frag_tx[p as usize]
                .as_ref()
                .expect("reserved")
                .send(FragCmd::Finish { commit });
        }
        for p in lock_set.iter() {
            match res_rx[p as usize].as_ref().expect("reserved").recv() {
                Ok(FragReply::Finished) => {}
                Ok(FragReply::Fatal(e)) => failure = Some(e),
                Ok(_) => failure = Some(Error::Other("fragment protocol violation".into())),
                Err(_) => failure = Some(Error::Other(format!("worker {p} hung up"))),
            }
        }
        match failure {
            None => Ok(()),
            Some(e) => Err(e),
        }
    };

    let mut inst = env.registry.get(req.proc).instantiate(&req.args);
    let mut results: Option<Vec<Vec<Row>>> = None;
    let mut accessed = PartitionSet::EMPTY;
    let mut access_counts: FxHashMap<PartitionId, u32> = FxHashMap::default();
    let mut pending_abort: Option<String> = None;
    loop {
        let step = match pending_abort.take() {
            Some(msg) => Step::Abort(msg),
            None => inst.next(results.as_deref()),
        };
        match step {
            Step::Queries(batch) => {
                let mut seen = PartitionSet::EMPTY;
                let mut violation = false;
                for inv in &batch {
                    let def = env.catalog.proc(req.proc).query(inv.query);
                    let targets = def.estimate_partitions_n(env.num_partitions, &inv.params);
                    seen = seen.union(targets);
                    if !targets.is_subset(lock_set) {
                        violation = true;
                        break;
                    }
                }
                if violation {
                    return match finish_all(&frag_tx, &res_rx, false) {
                        Ok(()) => Attempt::Mispredict {
                            observed: accessed.union(seen),
                            session,
                        },
                        Err(e) => Attempt::Fatal(e),
                    };
                }
                let mut batch_results = Vec::with_capacity(batch.len());
                for inv in batch {
                    let def = env.catalog.proc(req.proc).query(inv.query);
                    let is_write = def.is_write();
                    let targets = def.estimate_partitions_n(env.num_partitions, &inv.params);
                    // Ship this query's fragment to every target partition,
                    // then merge replies in ascending partition order —
                    // identical row order to the single-threaded executor.
                    for p in targets.iter() {
                        let _ = frag_tx[p as usize].as_ref().expect("locked").send(
                            FragCmd::Exec {
                                proc: req.proc,
                                query: inv.query,
                                params: inv.params.clone(),
                            },
                        );
                    }
                    let mut rows = Vec::new();
                    let mut constraint: Option<String> = None;
                    let mut fatal: Option<Error> = None;
                    for p in targets.iter() {
                        match res_rx[p as usize].as_ref().expect("locked").recv() {
                            Ok(FragReply::Rows(mut r)) => rows.append(&mut r),
                            Ok(FragReply::Constraint(msg)) => constraint = Some(msg),
                            Ok(FragReply::Fatal(e)) => fatal = Some(e),
                            Ok(FragReply::Finished) => {
                                fatal = Some(Error::Other("fragment protocol violation".into()));
                            }
                            Err(_) => fatal = Some(Error::Other(format!("worker {p} hung up"))),
                        }
                    }
                    if let Some(e) = fatal {
                        let _ = finish_all(&frag_tx, &res_rx, false);
                        return Attempt::Fatal(e);
                    }
                    accessed = accessed.union(targets);
                    for p in targets.iter() {
                        *access_counts.entry(p).or_insert(0) += 1;
                    }
                    if let Some(msg) = constraint {
                        pending_abort = Some(msg);
                        break;
                    }
                    // Runtime updates: OP3/OP4 decisions are ignored on the
                    // distributed path (undo stays on, no early release),
                    // but the advisor still observes the path.
                    let _ = env.advisor.on_query_live(
                        &mut session,
                        &ExecutedQuery {
                            query: inv.query,
                            params: inv.params,
                            partitions: targets,
                            is_write,
                        },
                    );
                    batch_results.push(rows);
                }
                results = Some(batch_results);
            }
            Step::Commit => {
                return match finish_all(&frag_tx, &res_rx, true) {
                    Ok(()) => Attempt::Done {
                        committed: true,
                        accessed,
                        access_counts,
                        undo_disabled_ever: false,
                        session,
                    },
                    Err(e) => Attempt::Fatal(e),
                };
            }
            Step::Abort(_) => {
                return match finish_all(&frag_tx, &res_rx, false) {
                    Ok(()) => Attempt::Done {
                        committed: false,
                        accessed,
                        access_counts,
                        undo_disabled_ever: false,
                        session,
                    },
                    Err(e) => Attempt::Fatal(e),
                };
            }
        }
    }
}

/// One closed-loop client: issue requests, route them through the advisor,
/// dispatch, restart on mispredicts. Returns this client's metrics partial.
#[allow(clippy::too_many_arguments)]
fn client_loop<A: LiveAdvisor>(
    env: &WorkerEnv<'_, A>,
    workers: &[Sender<WorkerMsg<A::Session>>],
    locks: &LockManager,
    gen: &mut (dyn RequestGenerator + Send),
    client: u64,
    cfg: &LiveConfig,
) -> Result<RunMetrics> {
    let mut rng = seeded_rng(derive_seed(cfg.seed, 0xC11E47 ^ client));
    let mut metrics = RunMetrics::default();
    let (reply_tx, reply_rx) = channel::<SingleReply<A::Session>>();
    for _ in 0..cfg.requests_per_client {
        let (proc, args) = gen.next_request(client);
        let req = Request { proc, args, origin_node: 0 };
        let ctx = PlanContext {
            catalog: env.catalog,
            num_partitions: env.num_partitions,
            random_local_partition: rng.gen_range(0..env.num_partitions),
        };
        let t0 = Instant::now();
        let (mut plan, mut session) = env.advisor.plan_live(&req, &ctx);
        let mut attempt = 0u32;
        loop {
            plan.lock_set.insert(plan.base_partition);
            let outcome = if plan.lock_set.is_single() {
                let base = plan.base_partition as usize;
                if workers[base]
                    .send(WorkerMsg::Single {
                        req: req.clone(),
                        plan: plan.clone(),
                        session,
                        reply: reply_tx.clone(),
                    })
                    .is_err()
                {
                    return Err(Error::Other(format!("worker {base} is gone")));
                }
                match reply_rx.recv() {
                    Ok(SingleReply::Done {
                        committed,
                        session,
                        accessed,
                        access_counts,
                        undo_disabled_ever,
                    }) => Attempt::Done {
                        committed,
                        accessed,
                        access_counts,
                        undo_disabled_ever,
                        session,
                    },
                    Ok(SingleReply::Mispredict { observed, session }) => {
                        Attempt::Mispredict { observed, session }
                    }
                    Ok(SingleReply::Fatal(e)) => Attempt::Fatal(e),
                    Err(_) => Attempt::Fatal(Error::Other(format!("worker {base} hung up"))),
                }
            } else {
                run_distributed(env, workers, locks, &req, &plan, session)
            };
            match outcome {
                Attempt::Done {
                    committed,
                    accessed,
                    access_counts,
                    undo_disabled_ever,
                    session: s,
                } => {
                    env.advisor.on_end_live(
                        s,
                        if committed { TxnOutcome::Committed } else { TxnOutcome::UserAborted },
                    );
                    if committed {
                        metrics.committed += 1;
                        *metrics.committed_by_proc.entry(proc).or_insert(0) += 1;
                        let us = t0.elapsed().as_secs_f64() * 1e6;
                        metrics.record_latency(proc, us);
                        if plan.lock_set.is_single() {
                            metrics.single_partition += 1;
                        } else {
                            metrics.distributed += 1;
                        }
                        if undo_disabled_ever {
                            metrics.no_undo += 1;
                        }
                        metrics.tally_ops(
                            proc,
                            plan.base_partition,
                            plan.lock_set,
                            accessed,
                            &access_counts,
                            env.num_partitions,
                            undo_disabled_ever,
                            false,
                            false,
                        );
                    } else {
                        metrics.user_aborts += 1;
                    }
                    break;
                }
                Attempt::Mispredict { observed, session: s } => {
                    attempt += 1;
                    metrics.restarts += 1;
                    if attempt > cfg.max_restarts {
                        // Forced fallback, advisor not consulted — exactly
                        // like the simulator past `max_restarts`. The old
                        // session rides along untouched.
                        plan = TxnPlan::lock_all(
                            observed.first().unwrap_or(plan.base_partition),
                            env.num_partitions,
                        );
                        session = s;
                    } else {
                        drop(s); // superseded by the replan's fresh session
                        let (p, ns) = env.advisor.replan_live(&req, observed, attempt, &ctx);
                        plan = p;
                        session = ns;
                    }
                }
                Attempt::Fatal(e) => return Err(e),
            }
        }
    }
    Ok(metrics)
}

/// Runs the live runtime to completion: spawns one worker per shard and
/// `clients_per_partition × num_partitions` closed-loop clients, drives
/// every client stream dry, then shuts the workers down and reassembles the
/// database.
///
/// `make_gen` builds the independent request generator for one client
/// stream (see `workloads::Bench::client_generator`).
///
/// Errors only on an unrecoverable abort (mirroring
/// [`crate::Simulation::run`]); the database is consumed either way since
/// partially-failed clusters are not reassembled.
pub fn run_live<A: LiveAdvisor>(
    db: Database,
    registry: &ProcedureRegistry,
    advisor: &A,
    make_gen: &(dyn Fn(u64) -> Box<dyn RequestGenerator + Send> + Sync),
    cfg: &LiveConfig,
) -> Result<(RunMetrics, Database)> {
    let num_partitions = db.num_partitions();
    let catalog = registry.catalog();
    let env = WorkerEnv {
        registry,
        catalog: &catalog,
        advisor,
        num_partitions,
        commit_flush: Duration::from_micros(cfg.commit_flush_us),
    };
    let locks = LockManager::new();
    let shards = db.into_shards();
    let clients = u64::from(num_partitions * cfg.clients_per_partition);

    let mut worker_tx: Vec<Sender<WorkerMsg<A::Session>>> = Vec::new();
    let mut worker_rx: Vec<Receiver<WorkerMsg<A::Session>>> = Vec::new();
    for _ in 0..num_partitions {
        let (tx, rx) = channel();
        worker_tx.push(tx);
        worker_rx.push(rx);
    }

    let started = Instant::now();
    let (metrics, shards) = std::thread::scope(|s| {
        let mut worker_handles = Vec::new();
        for shard in shards {
            let rx = worker_rx.remove(0);
            let env = &env;
            worker_handles.push(s.spawn(move || worker_loop::<A>(shard, &rx, env)));
        }
        let mut client_handles = Vec::new();
        for c in 0..clients {
            let env = &env;
            let worker_tx = &worker_tx;
            let locks = &locks;
            client_handles.push(s.spawn(move || {
                let mut gen = make_gen(c);
                client_loop::<A>(env, worker_tx, locks, gen.as_mut(), c, cfg)
            }));
        }
        // Collect client outcomes WITHOUT panicking yet: the workers must
        // receive their Shutdown messages first, or a panicking client
        // (generator bug, poisoned lock) would leave them parked in recv()
        // and hang the scope join forever.
        let client_results: Vec<std::thread::Result<Result<RunMetrics>>> =
            client_handles.into_iter().map(std::thread::ScopedJoinHandle::join).collect();
        for tx in &worker_tx {
            let _ = tx.send(WorkerMsg::Shutdown);
        }
        let shards: Vec<Shard> = worker_handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect();
        let mut merged: Result<RunMetrics> = Ok(RunMetrics::default());
        for r in client_results {
            match r {
                Ok(Ok(part)) => {
                    if let Ok(m) = merged.as_mut() {
                        m.absorb(&part);
                    }
                }
                Ok(Err(e)) => merged = Err(e),
                // Workers are already down; now it is safe to propagate.
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
        (merged, shards)
    });
    let mut metrics = metrics?;
    metrics.window_us = started.elapsed().as_secs_f64() * 1e6;
    Ok((metrics, Database::from_shards(shards)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::{AssumeDistributed, AssumeSinglePartition};
    use crate::procedure::testing::{kv_database, kv_registry};

    /// Generator issuing MultiGet over ids that map to `spread` partitions
    /// (the live twin of the simulator's test generator).
    struct KvGen {
        spread: u32,
        parts: u32,
        client: u64,
        counter: u64,
    }

    impl RequestGenerator for KvGen {
        fn next_request(&mut self, _client: u64) -> (ProcId, Vec<Value>) {
            self.counter += 1;
            let start = (self.client * 13 + self.counter * 7) % u64::from(self.parts);
            let ids: Vec<Value> = (0..self.spread)
                .map(|k| Value::Int(((start + u64::from(k)) % u64::from(self.parts)) as i64))
                .collect();
            (0, vec![Value::Array(ids)])
        }
    }

    fn live_run<A: LiveAdvisor>(
        advisor: &A,
        spread: u32,
        parts: u32,
        cfg: &LiveConfig,
    ) -> (RunMetrics, Database) {
        let db = kv_database(parts, 8);
        let reg = kv_registry();
        run_live(
            db,
            &reg,
            advisor,
            &move |client| {
                Box::new(KvGen { spread, parts, client, counter: 0 })
                    as Box<dyn RequestGenerator + Send>
            },
            cfg,
        )
        .expect("no halts")
    }

    fn sum_vals(db: &Database, parts: u32) -> i64 {
        (0..parts)
            .map(|p| {
                db.table(p, 0)
                    .iter()
                    .map(|(_, row)| row[2].expect_int())
                    .sum::<i64>()
            })
            .sum()
    }

    #[test]
    fn lock_all_commits_everything_without_restarts() {
        let cfg = LiveConfig { requests_per_client: 40, ..Default::default() };
        let advisor = AssumeDistributed::new();
        let (m, db) = live_run(&advisor, 2, 4, &cfg);
        let total = u64::from(cfg.clients_per_partition) * 4 * cfg.requests_per_client;
        assert_eq!(m.committed + m.user_aborts, total);
        assert_eq!(m.restarts, 0);
        assert_eq!(m.user_aborts, 0, "all ids exist");
        assert_eq!(m.distributed, total, "lock-all is always distributed");
        // Every committed MultiGet bumps each of its 2 ids exactly once.
        assert_eq!(sum_vals(&db, 4), m.committed as i64 * 2);
        assert_eq!(db.total_rows(0), 32, "no rows created or lost");
    }

    #[test]
    fn assume_single_partition_restarts_and_stays_consistent() {
        let cfg = LiveConfig { requests_per_client: 40, ..Default::default() };
        let advisor = AssumeSinglePartition::new();
        let (m, db) = live_run(&advisor, 2, 4, &cfg);
        let total = u64::from(cfg.clients_per_partition) * 4 * cfg.requests_per_client;
        assert_eq!(m.committed + m.user_aborts, total);
        assert!(m.restarts > 0, "spread-2 work must trigger mispredicts");
        assert_eq!(sum_vals(&db, 4), m.committed as i64 * 2);
    }

    #[test]
    fn single_partition_fast_path_has_no_lock_contention() {
        // spread 1 + redirect-on-miss: after the first mispredict the plan
        // is exact, so most work runs on the lock-free fast path.
        let cfg = LiveConfig { requests_per_client: 50, ..Default::default() };
        let advisor = AssumeSinglePartition::new();
        let (m, db) = live_run(&advisor, 1, 4, &cfg);
        assert!(m.single_partition > 0);
        assert_eq!(sum_vals(&db, 4), m.committed as i64);
    }

    #[test]
    fn latency_histogram_is_populated() {
        let cfg = LiveConfig { requests_per_client: 20, ..Default::default() };
        let advisor = AssumeDistributed::new();
        let (m, _) = live_run(&advisor, 1, 2, &cfg);
        assert_eq!(m.latency.count(), m.committed);
        assert!(m.mean_latency_ms().is_some());
        assert!(m.latency.p50_ms().unwrap() <= m.latency.p99_ms().unwrap());
        assert!(m.throughput_tps() > 0.0);
    }

    #[test]
    fn commit_flush_serializes_partitions_not_the_cluster() {
        // With a real flush delay, doubling the workers roughly doubles
        // throughput for single-partition work even on one core — the
        // flushes overlap. Keep the margin loose: CI machines are noisy.
        let mk = |parts: u32| {
            let cfg = LiveConfig {
                requests_per_client: 60,
                commit_flush_us: 200,
                clients_per_partition: 2,
                ..Default::default()
            };
            let advisor = AssumeDistributed::new();
            let (m, _) = live_run(&advisor, 1, parts, &cfg);
            m.throughput_tps()
        };
        // Lock-all cannot overlap flushes (every commit holds all
        // partitions), so this measures the serialized baseline...
        let serialized = mk(2);
        // ...while the single-partition fast path overlaps them.
        let cfg = LiveConfig {
            requests_per_client: 60,
            commit_flush_us: 200,
            clients_per_partition: 2,
            ..Default::default()
        };
        let advisor = AssumeSinglePartition::new();
        let (m, _) = live_run(&advisor, 1, 2, &cfg);
        assert!(
            m.throughput_tps() > serialized,
            "fast path {} <= lock-all {}",
            m.throughput_tps(),
            serialized
        );
    }
}
