//! The paper's baseline execution strategies (§2.1, §6.4).
//!
//! * [`AssumeDistributed`] — every request locks all partitions (Fig. 3
//!   strategy 1).
//! * [`AssumeSinglePartition`] — every request runs as a single-partition
//!   transaction at a random partition on its arrival node, with DB2-style
//!   redirects/restarts when it deviates (Fig. 3 strategy 2, Fig. 12's
//!   "Assume Single-Partition").
//! * [`Oracle`] — the client tells the DBMS exactly which partitions each
//!   request needs and whether it aborts (Fig. 3's "Proper Selection", the
//!   best case). It dry-runs the procedure against the live database, which
//!   in the deterministic simulator yields ground truth.

use crate::advisor::{LiveAdvisor, PlanContext, PlanEnv, Request, TxnAdvisor, TxnPlan, Updates};
use crate::exec::{run_offline, ExecutedQuery};
use common::{FxHashMap, PartitionId, PartitionSet};

/// Locks every partition for every transaction.
#[derive(Debug, Default)]
pub struct AssumeDistributed;

impl AssumeDistributed {
    /// New instance.
    pub fn new() -> Self {
        AssumeDistributed
    }
}

impl TxnAdvisor for AssumeDistributed {
    fn name(&self) -> &str {
        "assume-distributed"
    }

    fn plan(&mut self, _req: &Request, env: &mut PlanEnv<'_>) -> TxnPlan {
        TxnPlan::lock_all(env.random_local_partition, env.num_partitions)
    }

    fn replan(
        &mut self,
        _req: &Request,
        _observed: PartitionSet,
        _attempt: u32,
        env: &mut PlanEnv<'_>,
    ) -> TxnPlan {
        TxnPlan::lock_all(env.random_local_partition, env.num_partitions)
    }
}

impl LiveAdvisor for AssumeDistributed {
    type Session = ();

    fn name(&self) -> &str {
        "assume-distributed"
    }

    fn plan_live(&self, _req: &Request, ctx: &PlanContext<'_>) -> (TxnPlan, ()) {
        (TxnPlan::lock_all(ctx.random_local_partition, ctx.num_partitions), ())
    }

    fn replan_live(
        &self,
        _req: &Request,
        _observed: PartitionSet,
        _attempt: u32,
        ctx: &PlanContext<'_>,
    ) -> (TxnPlan, ()) {
        (TxnPlan::lock_all(ctx.random_local_partition, ctx.num_partitions), ())
    }
}

/// Runs everything single-partition at a random local partition and reacts
/// to deviations with DB2-style redirects: a transaction that touches one
/// other partition is restarted there; one that touches several is restarted
/// as a distributed transaction locking the partitions it tried to access
/// (escalating to lock-all if it deviates again).
#[derive(Debug, Default)]
pub struct AssumeSinglePartition;

impl AssumeSinglePartition {
    /// New instance.
    pub fn new() -> Self {
        AssumeSinglePartition
    }
}

/// The DB2-style escalation policy (§2.1) shared by the simulated-time and
/// live assume-single-partition advisors: a transaction that touched one
/// other partition is redirected there; one that touched several is
/// restarted locking the partitions it tried to access, escalating to
/// lock-all after repeated violations.
fn asp_escalation(
    observed: PartitionSet,
    attempt: u32,
    random_local_partition: PartitionId,
    num_partitions: u32,
) -> TxnPlan {
    if attempt == 1 && observed.is_single() {
        // Wrong node only: redirect there, stay single-partition.
        TxnPlan::single(observed.first().unwrap())
    } else if attempt <= 3 && !observed.is_empty() {
        // Distributed: lock the partitions it tried to access so far;
        // each further violation re-learns and retries.
        TxnPlan {
            base_partition: observed.first().unwrap(),
            lock_set: observed,
            disable_undo: false,
            early_prepare: false,
            estimate_cost_us: 0.0,
        }
    } else {
        TxnPlan::lock_all(observed.first().unwrap_or(random_local_partition), num_partitions)
    }
}

impl TxnAdvisor for AssumeSinglePartition {
    fn name(&self) -> &str {
        "assume-single-partition"
    }

    fn plan(&mut self, _req: &Request, env: &mut PlanEnv<'_>) -> TxnPlan {
        TxnPlan::single(env.random_local_partition)
    }

    fn replan(
        &mut self,
        _req: &Request,
        observed: PartitionSet,
        attempt: u32,
        env: &mut PlanEnv<'_>,
    ) -> TxnPlan {
        asp_escalation(observed, attempt, env.random_local_partition, env.num_partitions)
    }
}

impl LiveAdvisor for AssumeSinglePartition {
    type Session = ();

    fn name(&self) -> &str {
        "assume-single-partition"
    }

    fn plan_live(&self, _req: &Request, ctx: &PlanContext<'_>) -> (TxnPlan, ()) {
        (TxnPlan::single(ctx.random_local_partition), ())
    }

    fn replan_live(
        &self,
        _req: &Request,
        observed: PartitionSet,
        attempt: u32,
        ctx: &PlanContext<'_>,
    ) -> (TxnPlan, ()) {
        (asp_escalation(observed, attempt, ctx.random_local_partition, ctx.num_partitions), ())
    }
}

/// Perfect information: dry-runs the procedure to learn the exact partitions
/// it touches, whether it aborts, and when it is finished with each
/// partition. Zero estimation cost is charged, making this the upper bound
/// the paper's Fig. 3 calls "Proper Selection".
#[derive(Debug, Default)]
pub struct Oracle {
    /// Per-query remaining-access plan for the in-flight transaction: entry
    /// `i` is the set of partitions never accessed strictly after query `i`.
    finish_plan: Vec<PartitionSet>,
    cursor: usize,
    base: PartitionId,
    enable_early_prepare: bool,
}

impl Oracle {
    /// New instance.
    pub fn new() -> Self {
        Oracle { enable_early_prepare: true, ..Default::default() }
    }

    /// Disables OP4 finish predictions (for ablations).
    pub fn without_early_prepare() -> Self {
        Oracle { enable_early_prepare: false, ..Default::default() }
    }
}

impl TxnAdvisor for Oracle {
    fn name(&self) -> &str {
        "oracle"
    }

    fn plan(&mut self, req: &Request, env: &mut PlanEnv<'_>) -> TxnPlan {
        let outcome = run_offline(env.db, env.registry, env.catalog, req.proc, &req.args, false)
            .expect("oracle dry-run");
        // Count accesses per partition to pick the best base (OP1).
        let mut counts: FxHashMap<PartitionId, u32> = FxHashMap::default();
        let mut per_query: Vec<PartitionSet> = Vec::with_capacity(outcome.record.queries.len());
        for q in &outcome.record.queries {
            let def = env.catalog.proc(req.proc).query(q.query);
            let parts = def.estimate_partitions(env.db, &q.params);
            for p in parts.iter() {
                *counts.entry(p).or_insert(0) += 1;
            }
            per_query.push(parts);
        }
        let base = counts
            .iter()
            .max_by_key(|(p, c)| (**c, u32::MAX - **p)) // deterministic tiebreak: lowest id
            .map(|(p, _)| *p)
            .unwrap_or(env.random_local_partition);
        // finish_plan[i]: partitions whose last access is query i.
        let mut later = PartitionSet::EMPTY;
        let mut finish = vec![PartitionSet::EMPTY; per_query.len()];
        for i in (0..per_query.len()).rev() {
            finish[i] = per_query[i].difference(later);
            later = later.union(per_query[i]);
        }
        self.finish_plan = finish;
        self.cursor = 0;
        self.base = base;
        let single = outcome.touched.is_single();
        TxnPlan {
            base_partition: base,
            lock_set: if outcome.touched.is_empty() {
                PartitionSet::single(base)
            } else {
                outcome.touched
            },
            // OP3: safe only for committing single-partition transactions.
            disable_undo: outcome.committed && single,
            early_prepare: self.enable_early_prepare,
            estimate_cost_us: 0.0,
        }
    }

    fn on_query(&mut self, _q: &ExecutedQuery) -> Updates {
        let mut upd = Updates::default();
        if self.enable_early_prepare {
            if let Some(&fin) = self.finish_plan.get(self.cursor) {
                let mut fin = fin;
                fin.remove(self.base);
                upd.finished = fin;
            }
        }
        self.cursor += 1;
        upd
    }

    fn replan(
        &mut self,
        req: &Request,
        _observed: PartitionSet,
        _attempt: u32,
        env: &mut PlanEnv<'_>,
    ) -> TxnPlan {
        // The oracle only mispredicts if the database changed between the
        // dry-run and execution, which the sequential simulator precludes;
        // re-plan from scratch regardless.
        self.plan(req, env)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::procedure::testing::{kv_database, kv_registry};
    use common::Value;

    fn env_fixture(parts: u32) -> (storage::Database, crate::ProcedureRegistry, crate::Catalog) {
        let db = kv_database(parts, 4);
        let reg = kv_registry();
        let cat = reg.catalog();
        (db, reg, cat)
    }

    #[test]
    fn oracle_plans_exact_lock_set() {
        let (mut db, reg, cat) = env_fixture(4);
        let mut env = PlanEnv {
            db: &mut db,
            registry: &reg,
            catalog: &cat,
            num_partitions: 4,
            random_local_partition: 0,
        };
        let req = Request {
            proc: 0,
            args: vec![Value::Array(vec![Value::Int(1), Value::Int(2)])],
            origin_node: 0,
        };
        let mut oracle = Oracle::new();
        let plan = oracle.plan(&req, &mut env);
        assert_eq!(plan.lock_set, PartitionSet::from_iter([1u32, 2]));
        assert!(!plan.disable_undo, "multi-partition keeps undo");
        assert!(plan.lock_set.contains(plan.base_partition));
    }

    #[test]
    fn oracle_disables_undo_for_single_partition() {
        let (mut db, reg, cat) = env_fixture(4);
        let mut env = PlanEnv {
            db: &mut db,
            registry: &reg,
            catalog: &cat,
            num_partitions: 4,
            random_local_partition: 0,
        };
        let req = Request {
            proc: 0,
            args: vec![Value::Array(vec![Value::Int(1), Value::Int(5)])], // both -> partition 1
            origin_node: 0,
        };
        let plan = Oracle::new().plan(&req, &mut env);
        assert!(plan.lock_set.is_single());
        assert!(plan.disable_undo);
    }

    #[test]
    fn oracle_keeps_undo_for_aborting_txn() {
        let (mut db, reg, cat) = env_fixture(4);
        let mut env = PlanEnv {
            db: &mut db,
            registry: &reg,
            catalog: &cat,
            num_partitions: 4,
            random_local_partition: 0,
        };
        // id 9999 missing -> control code aborts.
        let req =
            Request { proc: 0, args: vec![Value::Array(vec![Value::Int(9999)])], origin_node: 0 };
        let plan = Oracle::new().plan(&req, &mut env);
        assert!(!plan.disable_undo);
    }

    #[test]
    fn oracle_finish_plan_marks_last_access() {
        let (mut db, reg, cat) = env_fixture(4);
        let mut env = PlanEnv {
            db: &mut db,
            registry: &reg,
            catalog: &cat,
            num_partitions: 4,
            random_local_partition: 0,
        };
        // ids 1,2: queries are Get(1),Get(2),Bump(1),Bump(2); partition 1's
        // last access is query 2, partition 2's is query 3.
        let req = Request {
            proc: 0,
            args: vec![Value::Array(vec![Value::Int(1), Value::Int(2)])],
            origin_node: 0,
        };
        let mut oracle = Oracle::new();
        oracle.plan(&req, &mut env);
        assert_eq!(oracle.finish_plan.len(), 4);
        assert!(oracle.finish_plan[0].is_empty());
        assert!(oracle.finish_plan[1].is_empty());
        let union = oracle.finish_plan[2].union(oracle.finish_plan[3]);
        assert_eq!(union, PartitionSet::from_iter([1u32, 2]));
    }

    #[test]
    fn assume_sp_redirects_then_escalates() {
        let (mut db, reg, cat) = env_fixture(4);
        let mut env = PlanEnv {
            db: &mut db,
            registry: &reg,
            catalog: &cat,
            num_partitions: 4,
            random_local_partition: 3,
        };
        let req = Request { proc: 0, args: vec![], origin_node: 0 };
        let mut a = AssumeSinglePartition::new();
        let p0 = a.plan(&req, &mut env);
        assert_eq!(p0.base_partition, 3);
        assert!(p0.lock_set.is_single());
        // Single wrong partition -> redirect.
        let p1 = a.replan(&req, PartitionSet::single(1), 1, &mut env);
        assert_eq!(p1.base_partition, 1);
        assert!(p1.lock_set.is_single());
        // Multiple -> lock observed.
        let p2 = a.replan(&req, PartitionSet::from_iter([1u32, 2]), 1, &mut env);
        assert_eq!(p2.lock_set.len(), 2);
        // Further deviations keep re-learning the observed set...
        let p3 = a.replan(&req, PartitionSet::from_iter([1u32, 2, 3]), 2, &mut env);
        assert_eq!(p3.lock_set.len(), 3);
        // ...until the escalation cap forces lock-all.
        let p4 = a.replan(&req, PartitionSet::from_iter([1u32, 2, 3]), 4, &mut env);
        assert_eq!(p4.lock_set.len(), 4);
    }

    #[test]
    fn assume_distributed_locks_all() {
        let (mut db, reg, cat) = env_fixture(8);
        let mut env = PlanEnv {
            db: &mut db,
            registry: &reg,
            catalog: &cat,
            num_partitions: 8,
            random_local_partition: 2,
        };
        let req = Request { proc: 0, args: vec![], origin_node: 0 };
        let plan = AssumeDistributed::new().plan(&req, &mut env);
        assert_eq!(plan.lock_set.len(), 8);
        assert_eq!(plan.base_partition, 2);
    }
}
