//! The timed cluster simulation.
//!
//! Closed-loop clients (the paper uses 4 per partition, §6.4) issue stored
//! procedure requests against a cluster of `num_partitions` partitions,
//! `partitions_per_node` per node. Transactions execute for real against
//! [`storage::Database`]; the simulator tracks *when* each partition is busy
//! and charges [`crate::CostModel`] microseconds for CPU and messages.
//!
//! Concurrency model: each partition is a single-threaded server. A
//! transaction waits until every partition in its lock set is available,
//! occupies them while it runs, and releases them at commit — except
//! partitions the advisor declared *finished* (OP4), which are released
//! early and opened for speculative execution until the distributed
//! transaction's two-phase commit completes.

use crate::advisor::{PlanEnv, Request, TxnAdvisor, TxnOutcome, TxnPlan};
use crate::catalog::Catalog;
use crate::cost::CostModel;
use crate::exec::{execute_query, ExecutedQuery};
use crate::metrics::RunMetrics;
use crate::procedure::{ProcedureRegistry, Step};
use crate::profiler::{Bucket, Profiler};
use common::{
    derive_seed, seeded_rng, Error, FxHashMap, PartitionId, PartitionSet, ProcId, Result, Value,
};
use rand::Rng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use storage::{Database, Row, UndoLog};

/// Supplies the next request for a given client stream. Implemented by the
/// benchmark workload generators.
pub trait RequestGenerator {
    /// The next (procedure, args) pair for client `client`.
    fn next_request(&mut self, client: u64) -> (ProcId, Vec<Value>);
}

impl<G: RequestGenerator + ?Sized> RequestGenerator for Box<G> {
    fn next_request(&mut self, client: u64) -> (ProcId, Vec<Value>) {
        self.as_mut().next_request(client)
    }
}

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Number of partitions in the cluster (≤ 64).
    pub num_partitions: u32,
    /// Partitions hosted per node (the paper uses 2).
    pub partitions_per_node: u32,
    /// Closed-loop clients per partition (the paper uses 4).
    pub clients_per_partition: u32,
    /// Simulated warm-up before measurement starts (µs).
    pub warmup_us: f64,
    /// Measurement window length (µs).
    pub measure_us: f64,
    /// RNG seed (origin-node draws, random-partition policies).
    pub seed: u64,
    /// Mispredict restarts before falling back to lock-all.
    pub max_restarts: u32,
    /// When set, each closed-loop client issues at most this many requests
    /// and then stops. Used to compare a `Simulation` against the live
    /// runtime on an identical request population (set `measure_us` large
    /// enough to cover the whole run).
    pub max_requests_per_client: Option<u64>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            num_partitions: 4,
            partitions_per_node: 2,
            clients_per_partition: 4,
            warmup_us: 100_000.0,
            measure_us: 1_000_000.0,
            seed: 7,
            max_restarts: 2,
            max_requests_per_client: None,
        }
    }
}

impl SimConfig {
    /// Number of nodes.
    pub fn num_nodes(&self) -> u32 {
        self.num_partitions.div_ceil(self.partitions_per_node)
    }

    /// Node hosting partition `p`.
    pub fn node_of(&self, p: PartitionId) -> u32 {
        p / self.partitions_per_node
    }
}

/// Bit for `table` in a 64-bit speculative-conflict mask.
///
/// Catalogs may define more than 64 tables; every id past the top bit shares
/// bit 63, which only makes OP4 conflict detection conservative (a
/// speculative transaction may defer its acknowledgement unnecessarily) —
/// never a shift overflow (debug panic / silent wrap in release, which
/// corrupted the mask for `table % 64` collisions).
pub(crate) fn table_bit(table: usize) -> u64 {
    let bit = table.min(u64::BITS as usize - 1);
    debug_assert!(bit < u64::BITS as usize);
    1u64 << bit
}

/// Speculation window on a partition: open between an early release and the
/// releasing transaction's commit point.
#[derive(Debug, Clone, Copy)]
struct SpecWindow {
    /// When the releasing distributed transaction commits.
    until: f64,
    /// Bitmask of table ids the distributed transaction wrote *at this
    /// partition*; speculative transactions touching these tables defer
    /// their commit acknowledgement (paper §2 OP4).
    written_tables: u64,
}

/// Outcome of one execution attempt.
enum Attempt {
    Done(TxnSummary),
    /// The transaction touched (or was about to touch) a partition outside
    /// its lock set, or re-touched an early-released partition.
    Mispredict {
        observed: PartitionSet,
        t_fail: f64,
    },
}

/// Everything the simulator needs to know about a finished transaction.
struct TxnSummary {
    committed: bool,
    client_done: f64,
    accessed: PartitionSet,
    access_counts: FxHashMap<PartitionId, u32>,
    speculative: bool,
    undo_disabled_ever: bool,
    early_released: bool,
    distributed: bool,
}

/// The simulation driver. Borrows the database, advisor, and generator; owns
/// clocks, metrics, and the profiler.
pub struct Simulation<'a> {
    db: &'a mut Database,
    registry: &'a ProcedureRegistry,
    catalog: Catalog,
    advisor: &'a mut dyn TxnAdvisor,
    gen: &'a mut dyn RequestGenerator,
    costs: CostModel,
    cfg: SimConfig,
    avail: Vec<f64>,
    spec: Vec<Option<SpecWindow>>,
    profiler: Profiler,
    metrics: RunMetrics,
}

/// Heap key: earliest event first. Times are finite by construction.
#[derive(PartialEq, PartialOrd)]
struct Tf(f64);
impl Eq for Tf {}
#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for Tf {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("finite times")
    }
}

impl<'a> Simulation<'a> {
    /// Builds a simulation over `db` using `advisor` and `gen`.
    pub fn new(
        db: &'a mut Database,
        registry: &'a ProcedureRegistry,
        advisor: &'a mut dyn TxnAdvisor,
        gen: &'a mut dyn RequestGenerator,
        costs: CostModel,
        cfg: SimConfig,
    ) -> Self {
        assert_eq!(db.num_partitions(), cfg.num_partitions, "db/config mismatch");
        let n = cfg.num_partitions as usize;
        let catalog = registry.catalog();
        Simulation {
            db,
            registry,
            catalog,
            advisor,
            gen,
            costs,
            cfg,
            avail: vec![0.0; n],
            spec: vec![None; n],
            profiler: Profiler::new(),
            metrics: RunMetrics::default(),
        }
    }

    /// Runs the closed loop to completion and returns the metrics.
    /// Errors only on an unrecoverable abort (a transaction aborted after
    /// its advisor disabled undo logging — "the node must halt", §2 OP3).
    pub fn run(mut self) -> Result<(RunMetrics, Profiler)> {
        let end = self.cfg.warmup_us + self.cfg.measure_us;
        let clients = u64::from(self.cfg.num_partitions * self.cfg.clients_per_partition);
        let mut heap: BinaryHeap<Reverse<(Tf, u64)>> = BinaryHeap::new();
        let mut rng = seeded_rng(derive_seed(self.cfg.seed, 0xC11E47));
        for c in 0..clients {
            // Slight arrival jitter so clients do not lockstep at t=0.
            heap.push(Reverse((Tf(c as f64 * 0.1), c)));
        }
        let mut issued: Vec<u64> = vec![0; clients as usize];
        while let Some(Reverse((Tf(t), client))) = heap.pop() {
            if t >= end {
                break;
            }
            if let Some(cap) = self.cfg.max_requests_per_client {
                if issued[client as usize] >= cap {
                    continue; // this client's stream has run dry
                }
            }
            issued[client as usize] += 1;
            let (proc, args) = self.gen.next_request(client);
            let origin_node = rng.gen_range(0..self.cfg.num_nodes());
            let local_part = origin_node * self.cfg.partitions_per_node
                + rng.gen_range(0..self.cfg.partitions_per_node);
            let local_part = local_part.min(self.cfg.num_partitions - 1);
            let req = Request { proc, args, origin_node };
            let summary = self.process_txn(&req, t, local_part)?;
            heap.push(Reverse((Tf(summary.client_done + self.costs.client_think_us), client)));
        }
        self.metrics.window_us = self.cfg.measure_us;
        Ok((self.metrics, self.profiler))
    }

    fn process_txn(
        &mut self,
        req: &Request,
        t_arrive: f64,
        random_local_partition: PartitionId,
    ) -> Result<TxnSummary> {
        let mut plan = {
            let mut env = PlanEnv {
                db: self.db,
                registry: self.registry,
                catalog: &self.catalog,
                num_partitions: self.cfg.num_partitions,
                random_local_partition,
            };
            self.advisor.plan(req, &mut env)
        };
        let mut t = t_arrive;
        let mut attempt = 0u32;
        loop {
            plan.lock_set.insert(plan.base_partition);
            match self.try_execute(req, &plan, t, attempt)? {
                Attempt::Done(summary) => {
                    self.finish_txn(req, &plan, &summary, t_arrive);
                    self.advisor.on_end(if summary.committed {
                        TxnOutcome::Committed
                    } else {
                        TxnOutcome::UserAborted
                    });
                    return Ok(summary);
                }
                Attempt::Mispredict { observed, t_fail } => {
                    attempt += 1;
                    self.metrics.restarts += 1;
                    t = t_fail + self.costs.restart_penalty_us;
                    plan = if attempt > self.cfg.max_restarts {
                        TxnPlan::lock_all(
                            observed.first().unwrap_or(plan.base_partition),
                            self.cfg.num_partitions,
                        )
                    } else {
                        let mut env = PlanEnv {
                            db: self.db,
                            registry: self.registry,
                            catalog: &self.catalog,
                            num_partitions: self.cfg.num_partitions,
                            random_local_partition,
                        };
                        self.advisor.replan(req, observed, attempt, &mut env)
                    };
                }
            }
        }
    }

    /// Updates run metrics and Table 4 counters for a finished transaction.
    fn finish_txn(&mut self, req: &Request, plan: &TxnPlan, s: &TxnSummary, t_arrive: f64) {
        let in_window = s.client_done >= self.cfg.warmup_us
            && s.client_done < self.cfg.warmup_us + self.cfg.measure_us;
        self.profiler.finish_txn(req.proc);
        if !s.committed {
            self.metrics.user_aborts += 1;
            return;
        }
        if in_window {
            self.metrics.committed += 1;
            *self.metrics.committed_by_proc.entry(req.proc).or_insert(0) += 1;
            self.metrics.record_latency(req.proc, s.client_done - t_arrive);
        }
        if s.distributed {
            self.metrics.distributed += 1;
        } else {
            self.metrics.single_partition += 1;
        }
        if s.speculative {
            self.metrics.speculative += 1;
        }
        if s.undo_disabled_ever {
            self.metrics.no_undo += 1;
        }
        self.metrics.tally_ops(
            req.proc,
            plan.base_partition,
            plan.lock_set,
            s.accessed,
            &s.access_counts,
            self.cfg.num_partitions,
            s.undo_disabled_ever,
            s.speculative,
            s.early_released,
        );
    }

    #[allow(clippy::too_many_lines)]
    fn try_execute(
        &mut self,
        req: &Request,
        plan: &TxnPlan,
        t0: f64,
        _attempt: u32,
    ) -> Result<Attempt> {
        let proc = req.proc;
        let base = plan.base_partition;
        let base_node = self.cfg.node_of(base);
        let lock_set = plan.lock_set;
        let distributed = !lock_set.is_single();

        // Arrival-node work: estimation, planning, setup.
        let mut t = t0;
        self.profiler.add(proc, Bucket::Estimation, plan.estimate_cost_us);
        self.profiler.add(proc, Bucket::Planning, self.costs.planning_us);
        self.profiler.add(proc, Bucket::Other, self.costs.setup_us);
        t += plan.estimate_cost_us + self.costs.planning_us + self.costs.setup_us;
        if base_node != req.origin_node {
            let hop = self.costs.msg_us(req.origin_node, base_node);
            self.profiler.add(proc, Bucket::Coordination, hop);
            t += hop;
        }

        // Lazy lock acquisition (H-Store fragment queues): the control code
        // starts when the base partition frees; remote partitions are
        // occupied only when their first fragment arrives, and partitions
        // that are locked but never used are reserved retroactively until
        // commit. `held` tracks each used partition's latest fragment
        // completion.
        t = t.max(self.avail[base as usize]);
        let mut held: FxHashMap<PartitionId, f64> = FxHashMap::default();
        held.insert(base, t);

        // Are we starting inside someone's speculation window?
        let mut speculative = false;
        let mut spec_wait_until = 0.0f64;
        let mut spec_conflict_tables = 0u64;
        let note_spec = |spec: &[Option<SpecWindow>],
                         p: PartitionId,
                         at: f64,
                         speculative: &mut bool,
                         wait: &mut f64,
                         tables: &mut u64| {
            if let Some(w) = spec[p as usize] {
                if at < w.until {
                    *speculative = true;
                    *wait = wait.max(w.until);
                    *tables |= w.written_tables;
                }
            }
        };
        note_spec(
            &self.spec,
            base,
            t,
            &mut speculative,
            &mut spec_wait_until,
            &mut spec_conflict_tables,
        );

        // Undo decision: speculative transactions always keep undo logging
        // (paper §4.3 OP3).
        let start_without_undo = plan.disable_undo && !speculative;
        let mut undo = if start_without_undo { UndoLog::disabled() } else { UndoLog::new() };
        let mut undo_disabled_ever = start_without_undo;

        let mut inst = self.registry.get(proc).instantiate(&req.args);
        let mut results: Option<Vec<Vec<Row>>> = None;
        let mut accessed = PartitionSet::EMPTY;
        let mut access_counts: FxHashMap<PartitionId, u32> = FxHashMap::default();
        let mut touched_tables = 0u64;
        let mut wrote_by_partition: FxHashMap<PartitionId, u64> = FxHashMap::default();
        let mut released: FxHashMap<PartitionId, f64> = FxHashMap::default();
        let mut pending_abort: Option<String> = None;

        loop {
            let step = match pending_abort.take() {
                Some(msg) => Step::Abort(msg),
                None => inst.next(results.as_deref()),
            };
            match step {
                Step::Queries(batch) => {
                    self.profiler.add(proc, Bucket::Execution, self.costs.control_code_us);
                    t += self.costs.control_code_us;

                    // Validate targets before touching storage so a
                    // mispredicted batch can abort cleanly. The transaction
                    // only learns the partitions of the queries up to and
                    // including the first offending one — it aborts there,
                    // like a real engine that discovers the violation when
                    // the query is dispatched.
                    let mut seen_targets = PartitionSet::EMPTY;
                    let mut violation = false;
                    for inv in &batch {
                        let def = self.catalog.proc(proc).query(inv.query);
                        let targets = def.estimate_partitions(self.db, &inv.params);
                        seen_targets = seen_targets.union(targets);
                        if !targets.is_subset(lock_set)
                            || targets.iter().any(|p| released.contains_key(&p))
                        {
                            violation = true;
                            break;
                        }
                    }
                    if violation {
                        return self.mispredict_abort(
                            proc,
                            t,
                            &mut undo,
                            lock_set,
                            accessed.union(seen_targets),
                            &released,
                        );
                    }

                    // Execute: local queries run at the base engine; remote
                    // queries are shipped once per partition per batch.
                    let t_batch_start = t;
                    let mut batch_results = Vec::with_capacity(batch.len());
                    let mut remote_work: FxHashMap<PartitionId, f64> = FxHashMap::default();
                    let mut pending_release = PartitionSet::EMPTY;
                    for inv in batch {
                        let def = self.catalog.proc(proc).query(inv.query);
                        let is_write = def.is_write();
                        // A constraint violation (duplicate key, bad arity)
                        // aborts the transaction like any SQL error.
                        let (rows, parts) =
                            match execute_query(self.db, def, &inv.params, &mut undo) {
                                Ok(v) => v,
                                Err(Error::Constraint(msg)) => {
                                    pending_abort = Some(msg);
                                    break;
                                }
                                Err(e) => return Err(e),
                            };
                        accessed = accessed.union(parts);
                        touched_tables |= table_bit(def.table);
                        if is_write {
                            for p in parts.iter() {
                                *wrote_by_partition.entry(p).or_insert(0) |= table_bit(def.table);
                            }
                        }
                        let qcost = self.costs.query_cost_us(is_write, undo.is_enabled());
                        for p in parts.iter() {
                            *access_counts.entry(p).or_insert(0) += 1;
                            if p == base {
                                self.profiler.add(proc, Bucket::Execution, qcost);
                                t += qcost;
                            } else {
                                *remote_work.entry(p).or_insert(0.0) += qcost;
                            }
                        }
                        let upd = self.advisor.on_query(&ExecutedQuery {
                            query: inv.query,
                            params: inv.params,
                            partitions: parts,
                            is_write,
                        });
                        if upd.cost_us > 0.0 {
                            self.profiler.add(proc, Bucket::Estimation, upd.cost_us);
                            t += upd.cost_us;
                        }
                        if upd.disable_undo && !speculative && undo.is_enabled() {
                            undo.disable();
                            undo_disabled_ever = true;
                        }
                        if plan.early_prepare {
                            pending_release = pending_release.union(upd.finished);
                        }
                        batch_results.push(rows);
                    }

                    // Remote fragments overlap: each partition starts its
                    // fragment when it is free (its queue reaches us) and
                    // the batch completes when the slowest response returns.
                    if !remote_work.is_empty() {
                        let mut batch_done = t;
                        let mut net_total = 0.0f64;
                        for (&p, &work) in &remote_work {
                            let oneway = self.costs.msg_us(base_node, self.cfg.node_of(p));
                            let arrive = t_batch_start + oneway;
                            let start = match held.get(&p) {
                                Some(&last) => last.max(arrive),
                                None => arrive.max(self.avail[p as usize]),
                            };
                            note_spec(
                                &self.spec,
                                p,
                                start,
                                &mut speculative,
                                &mut spec_wait_until,
                                &mut spec_conflict_tables,
                            );
                            let done = start + work;
                            held.insert(p, done);
                            batch_done = batch_done.max(done + oneway);
                            net_total += 2.0 * oneway;
                            self.profiler.add(proc, Bucket::Execution, work);
                        }
                        self.profiler.add(proc, Bucket::Coordination, net_total);
                        t = batch_done;
                    }

                    // Early release (OP4): the early-prepare piggybacks on
                    // this batch's dispatch ("the query and the prepare
                    // message can be combined", §2 OP4), so a released
                    // partition becomes available as soon as its own last
                    // fragment completes — not when the whole batch returns
                    // to the base partition.
                    for p in pending_release.iter() {
                        if p != base && lock_set.contains(p) && !released.contains_key(&p) {
                            let oneway = self.costs.msg_us(base_node, self.cfg.node_of(p));
                            let done_at = match held.get(&p) {
                                Some(&last) => last,
                                None => t_batch_start + oneway,
                            };
                            released.insert(p, done_at);
                            self.avail[p as usize] = self.avail[p as usize].max(done_at);
                        }
                    }
                    results = Some(batch_results);
                }
                Step::Commit => {
                    undo.clear();
                    let t_commit;
                    if !distributed {
                        t += self.costs.twopc_cpu_us; // commit bookkeeping
                        self.profiler.add(proc, Bucket::Coordination, self.costs.twopc_cpu_us);
                        self.avail[base as usize] = self.avail[base as usize].max(t);
                        t_commit = t;
                    } else {
                        // Two-phase commit over partitions not already
                        // early-prepared (early prepare piggybacks the vote
                        // on the last query — "unsolicited vote", §2 OP4).
                        // Locked-but-unused partitions still vote: wasted
                        // locks cost real time (§2 OP2).
                        let mut prepare_rtt = 0.0f64;
                        let mut msgs = 0.0f64;
                        for p in lock_set.iter() {
                            if p != base && !released.contains_key(&p) {
                                let oneway = self.costs.msg_us(base_node, self.cfg.node_of(p));
                                prepare_rtt = prepare_rtt.max(2.0 * oneway);
                                msgs += 2.0 * oneway;
                            }
                        }
                        t += prepare_rtt + self.costs.twopc_cpu_us;
                        t_commit = t;
                        // Commit round: one-way notifications release the
                        // remaining partitions — including ones the
                        // transaction locked but never touched, which were
                        // reserved for its whole lifetime.
                        for p in lock_set.iter() {
                            if p == base {
                                self.avail[p as usize] = self.avail[p as usize].max(t_commit);
                            } else if !released.contains_key(&p) {
                                let oneway = self.costs.msg_us(base_node, self.cfg.node_of(p));
                                msgs += oneway;
                                let release = t_commit + oneway;
                                let idle_from = held.get(&p).copied().unwrap_or(t0).min(release);
                                self.metrics.reserved_idle_us += release - idle_from;
                                self.avail[p as usize] = self.avail[p as usize].max(release);
                            }
                        }
                        self.profiler.add(
                            proc,
                            Bucket::Coordination,
                            msgs + self.costs.twopc_cpu_us,
                        );
                        #[cfg(feature = "sim-debug")]
                        {
                            let unreleased = lock_set.len() as usize - 1 - released.len();
                            if unreleased > 8 {
                                eprintln!(
                                    "SIMDBG proc={proc} lock={} released={} held={} t0={t0:.0} t_commit={t_commit:.0}",
                                    lock_set.len(),
                                    released.len(),
                                    held.len()
                                );
                            }
                        }
                        // Close speculation windows on early-released
                        // partitions: speculative work there becomes final
                        // once we commit.
                        for &p in released.keys() {
                            self.spec[p as usize] = Some(SpecWindow {
                                until: t_commit,
                                written_tables: wrote_by_partition.get(&p).copied().unwrap_or(0),
                            });
                        }
                    }
                    // Client acknowledgement. A speculative transaction that
                    // touched tables the distributed transaction wrote must
                    // wait for it to commit (paper §2 OP4); read-only
                    // non-conflicting speculative transactions ack at once.
                    // The return hop counts towards client latency but not
                    // the profile — profiling stops when the result is sent
                    // (§6.3).
                    let back = self.costs.msg_us(base_node, req.origin_node);
                    let mut ack = t_commit + back;
                    if speculative && touched_tables & spec_conflict_tables != 0 {
                        // We touched tables the distributed transaction
                        // modified at a partition we used: our result is
                        // contingent on its commit (§2 OP4).
                        ack = ack.max(spec_wait_until + back);
                    }
                    return Ok(Attempt::Done(TxnSummary {
                        committed: true,
                        client_done: ack,
                        accessed,
                        access_counts,
                        speculative,
                        undo_disabled_ever,
                        early_released: !released.is_empty(),
                        distributed,
                    }));
                }
                Step::Abort(_) => {
                    // User abort: roll back and release.
                    if !undo.can_rollback() {
                        return Err(Error::UnrecoverableAbort { txn: u64::from(proc) });
                    }
                    let rb = undo.len() as f64 * self.costs.rollback_record_us;
                    self.profiler.add(proc, Bucket::Execution, rb);
                    t += rb;
                    self.db.rollback(&mut undo)?;
                    for p in lock_set.iter() {
                        if let Some(&rt) = released.get(&p) {
                            // Speculative work done after the early release
                            // is wasted and redone (paper §2 OP4).
                            self.avail[p as usize] = t + (t - rt).max(0.0);
                            self.spec[p as usize] = None;
                        } else {
                            let end = held.get(&p).copied().unwrap_or(t).max(t);
                            self.avail[p as usize] = self.avail[p as usize].max(end);
                        }
                    }
                    let back = self.costs.msg_us(base_node, req.origin_node);
                    return Ok(Attempt::Done(TxnSummary {
                        committed: false,
                        client_done: t + back,
                        accessed,
                        access_counts,
                        speculative,
                        undo_disabled_ever,
                        early_released: !released.is_empty(),
                        distributed,
                    }));
                }
            }
        }
    }

    /// Rolls back a mispredicted transaction and frees its locks.
    fn mispredict_abort(
        &mut self,
        proc: ProcId,
        t: f64,
        undo: &mut UndoLog,
        lock_set: PartitionSet,
        observed: PartitionSet,
        released: &FxHashMap<PartitionId, f64>,
    ) -> Result<Attempt> {
        if !undo.can_rollback() {
            eprintln!(
                "DEBUG mispredict-unrecoverable: proc={proc} lock={lock_set} observed={observed} released={released:?}"
            );
            return Err(Error::UnrecoverableAbort { txn: u64::from(proc) + 1000 });
        }
        let rb = undo.len() as f64 * self.costs.rollback_record_us;
        self.profiler.add(proc, Bucket::Execution, rb);
        let t = t + rb;
        self.db.rollback(undo)?;
        for p in lock_set.iter() {
            if let Some(&rt) = released.get(&p) {
                self.avail[p as usize] = t + (t - rt).max(0.0);
                self.spec[p as usize] = None;
            } else {
                self.avail[p as usize] = self.avail[p as usize].max(t);
            }
        }
        Ok(Attempt::Mispredict { observed, t_fail: t })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::{AssumeDistributed, AssumeSinglePartition, Oracle};
    use crate::procedure::testing::{kv_database, kv_registry};
    use common::Value;

    /// Generator issuing MultiGet over ids that map to `spread` partitions.
    struct KvGen {
        spread: u32,
        parts: u32,
        counter: u64,
    }

    impl RequestGenerator for KvGen {
        fn next_request(&mut self, client: u64) -> (ProcId, Vec<Value>) {
            self.counter += 1;
            let start = (client * 13 + self.counter * 7) % u64::from(self.parts);
            let ids: Vec<Value> = (0..self.spread)
                .map(|k| Value::Int(((start + u64::from(k)) % u64::from(self.parts)) as i64))
                .collect();
            (0, vec![Value::Array(ids)])
        }
    }

    fn run_with<A: TxnAdvisor>(mut advisor: A, spread: u32, parts: u32) -> RunMetrics {
        let mut db = kv_database(parts, 8);
        let reg = kv_registry();
        let mut gen = KvGen { spread, parts, counter: 0 };
        let cfg = SimConfig {
            num_partitions: parts,
            warmup_us: 20_000.0,
            measure_us: 300_000.0,
            ..Default::default()
        };
        let sim = Simulation::new(&mut db, &reg, &mut advisor, &mut gen, CostModel::default(), cfg);
        let (metrics, _) = sim.run().expect("no halts");
        metrics
    }

    #[test]
    fn oracle_single_partition_commits() {
        let m = run_with(Oracle::new(), 1, 4);
        assert!(m.committed > 100, "committed = {}", m.committed);
        assert_eq!(m.restarts, 0, "oracle never mispredicts");
        assert!(m.single_partition > 0);
        assert_eq!(m.distributed, 0);
    }

    #[test]
    fn oracle_distributed_commits() {
        let m = run_with(Oracle::new(), 2, 4);
        assert!(m.committed > 50);
        assert_eq!(m.restarts, 0);
        assert!(m.distributed > 0);
    }

    #[test]
    fn assume_single_partition_restarts_on_distributed() {
        let m = run_with(AssumeSinglePartition::new(), 2, 4);
        assert!(m.committed > 0);
        assert!(m.restarts > 0, "distributed work must trigger restarts");
    }

    #[test]
    fn assume_distributed_never_restarts_but_is_slow() {
        let dist = run_with(AssumeDistributed::new(), 1, 8);
        let oracle = run_with(Oracle::new(), 1, 8);
        assert_eq!(dist.restarts, 0);
        assert!(
            oracle.throughput_tps() > 2.0 * dist.throughput_tps(),
            "oracle {} vs lock-all {}",
            oracle.throughput_tps(),
            dist.throughput_tps()
        );
    }

    #[test]
    fn oracle_scales_with_partitions() {
        let small = run_with(Oracle::new(), 1, 4);
        let big = run_with(Oracle::new(), 1, 16);
        assert!(
            big.throughput_tps() > 2.0 * small.throughput_tps(),
            "4p {} vs 16p {}",
            small.throughput_tps(),
            big.throughput_tps()
        );
    }

    #[test]
    fn lock_all_is_flat_across_cluster_sizes() {
        let a = run_with(AssumeDistributed::new(), 1, 4);
        let b = run_with(AssumeDistributed::new(), 1, 16);
        let ratio = b.throughput_tps() / a.throughput_tps();
        assert!(
            ratio < 1.5 && ratio > 0.3,
            "lock-all should not scale: {} vs {}",
            a.throughput_tps(),
            b.throughput_tps()
        );
    }

    #[test]
    fn database_consistent_after_run() {
        // Sum of VAL equals number of successful bumps; invariant: every
        // committed MultiGet bumps each of its ids exactly once, and aborted
        // work is rolled back — so all VALs are non-negative and the DB has
        // the same row count as loaded.
        let mut db = kv_database(4, 8);
        let reg = kv_registry();
        let mut advisor = Oracle::new();
        let mut gen = KvGen { spread: 2, parts: 4, counter: 0 };
        let cfg = SimConfig {
            num_partitions: 4,
            warmup_us: 0.0,
            measure_us: 100_000.0,
            ..Default::default()
        };
        let sim = Simulation::new(&mut db, &reg, &mut advisor, &mut gen, CostModel::default(), cfg);
        sim.run().unwrap();
        assert_eq!(db.total_rows(0), 32);
    }

    #[test]
    fn early_prepare_never_hurts_distributed_work() {
        let with = run_with(Oracle::new(), 3, 8);
        let without = run_with(Oracle::without_early_prepare(), 3, 8);
        assert!(
            with.throughput_tps() >= without.throughput_tps() * 0.95,
            "OP4 {} vs no-OP4 {}",
            with.throughput_tps(),
            without.throughput_tps()
        );
        assert!(with.speculative >= without.speculative);
        assert!(
            with.reserved_idle_us <= without.reserved_idle_us,
            "early prepare reclaims reserved-idle time: {} vs {}",
            with.reserved_idle_us,
            without.reserved_idle_us
        );
    }

    #[test]
    fn single_partition_work_reserves_nothing() {
        let m = run_with(Oracle::new(), 1, 4);
        assert_eq!(m.reserved_idle_us, 0.0);
    }

    #[test]
    fn deterministic_runs() {
        let a = run_with(Oracle::new(), 2, 4);
        let b = run_with(Oracle::new(), 2, 4);
        assert_eq!(a.committed, b.committed);
        assert_eq!(a.restarts, b.restarts);
    }

    #[test]
    fn latency_histogram_tracks_committed_window() {
        let m = run_with(Oracle::new(), 2, 4);
        assert_eq!(m.latency.count(), m.committed);
        let mean = m.mean_latency_ms().expect("commits happened");
        assert!(mean > 0.0);
        assert!(m.latency.p50_ms().unwrap() <= m.latency.p99_ms().unwrap());
    }

    #[test]
    fn request_cap_bounds_each_client_stream() {
        let mut db = kv_database(4, 8);
        let reg = kv_registry();
        let mut advisor = Oracle::new();
        let mut gen = KvGen { spread: 1, parts: 4, counter: 0 };
        let cfg = SimConfig {
            num_partitions: 4,
            warmup_us: 0.0,
            measure_us: 1e12, // effectively unbounded: the cap ends the run
            max_requests_per_client: Some(25),
            ..Default::default()
        };
        let clients = u64::from(cfg.num_partitions * cfg.clients_per_partition);
        let sim = Simulation::new(&mut db, &reg, &mut advisor, &mut gen, CostModel::default(), cfg);
        let (m, _) = sim.run().unwrap();
        assert_eq!(m.committed + m.user_aborts, clients * 25);
    }

    #[test]
    fn table_bit_saturates_instead_of_overflowing() {
        assert_eq!(table_bit(0), 1);
        assert_eq!(table_bit(63), 1u64 << 63);
        // Regression: `1u64 << 70` was a debug panic / release wrap that
        // aliased table 70 onto table 6. Saturation aliases all wide ids
        // onto bit 63 — conservative, never a different low table.
        assert_eq!(table_bit(64), 1u64 << 63);
        assert_eq!(table_bit(1000), 1u64 << 63);
        assert_eq!(table_bit(70) & table_bit(6), 0);
    }

    /// A catalog whose hot table sits past bit 63 of the conflict mask.
    mod wide {
        use super::*;
        use crate::catalog::{ColumnOp, PartitionHint, ProcDef, QueryDef, QueryOp};
        use crate::procedure::{ProcInstance, Procedure, QueryInvocation};
        use storage::Schema;

        pub const WIDE_TABLE: usize = 70;

        pub struct BumpWide {
            def: ProcDef,
        }

        impl BumpWide {
            pub fn new() -> Self {
                BumpWide {
                    def: ProcDef {
                        name: "BumpWide".into(),
                        queries: vec![QueryDef {
                            name: "BumpW".into(),
                            table: WIDE_TABLE,
                            op: QueryOp::UpdateByKey {
                                key_params: vec![0],
                                sets: vec![ColumnOp::Add { column: 1, param: 1 }],
                            },
                            hint: PartitionHint::Param(0),
                        }],
                        read_only: false,
                        can_abort: false,
                    },
                }
            }
        }

        impl Procedure for BumpWide {
            fn def(&self) -> &ProcDef {
                &self.def
            }
            fn instantiate(&self, args: &[Value]) -> Box<dyn ProcInstance> {
                Box::new(Inst { id: args[0].expect_int(), stage: 0 })
            }
        }

        struct Inst {
            id: i64,
            stage: u8,
        }

        impl ProcInstance for Inst {
            fn next(&mut self, _results: Option<&[Vec<storage::Row>]>) -> Step {
                if self.stage == 0 {
                    self.stage = 1;
                    Step::Queries(vec![QueryInvocation::new(
                        0,
                        vec![Value::Int(self.id), Value::Int(1)],
                    )])
                } else {
                    Step::Commit
                }
            }
        }

        pub fn registry_and_db(parts: u32) -> (ProcedureRegistry, Database) {
            let mut schemas: Vec<Schema> = (0..WIDE_TABLE)
                .map(|i| Schema::new(&format!("PAD{i}"), &["ID"], &[0], Some(0)))
                .collect();
            schemas.push(Schema::new("WIDE", &["ID", "V"], &[0], Some(0)));
            let mut db = Database::new(schemas, parts, &[]);
            let mut undo = UndoLog::new();
            for i in 0..i64::from(parts) * 4 {
                let p = db.partition_for_value(&Value::Int(i));
                db.insert(p, WIDE_TABLE, vec![Value::Int(i), Value::Int(0)], &mut undo).unwrap();
            }
            (ProcedureRegistry::new(vec![Box::new(BumpWide::new())]), db)
        }
    }

    /// Generator hitting the wide table with single-partition bumps.
    struct WideGen {
        parts: u32,
        counter: u64,
    }

    impl RequestGenerator for WideGen {
        fn next_request(&mut self, client: u64) -> (ProcId, Vec<Value>) {
            self.counter += 1;
            let id = (client * 3 + self.counter) % u64::from(self.parts * 4);
            (0, vec![Value::Int(id as i64)])
        }
    }

    #[test]
    fn wide_catalog_runs_without_shift_overflow() {
        // Regression: with a table id ≥ 64 the speculative-conflict masks
        // computed `1 << 70` — a shift overflow (debug panic, release
        // wrap). The run must complete and commit writes on table 70.
        let (reg, mut db) = wide::registry_and_db(4);
        let mut advisor = Oracle::new();
        let mut gen = WideGen { parts: 4, counter: 0 };
        let cfg = SimConfig {
            num_partitions: 4,
            warmup_us: 0.0,
            measure_us: 50_000.0,
            ..Default::default()
        };
        let sim = Simulation::new(&mut db, &reg, &mut advisor, &mut gen, CostModel::default(), cfg);
        let (m, _) = sim.run().expect("wide catalog must not halt");
        assert!(m.committed > 0);
    }
}
