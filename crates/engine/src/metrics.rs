//! Run-level metrics: throughput, latency distribution, restarts, and the
//! per-procedure optimization counters behind Table 4. Shared by the
//! deterministic [`crate::Simulation`] (simulated microseconds) and the live
//! runtime (wall-clock microseconds).

use crate::profiler::Profiler;
use common::{FxHashMap, PartitionId, PartitionSet, ProcId};

/// Per-procedure counters of how often each optimization was applied
/// *successfully at run time* (Table 4's semantics, §6.4):
///
/// * **OP1** — the chosen base partition turned out to be (one of) the
///   partition(s) the transaction accessed most.
/// * **OP2** — the predicted lock set matched the accessed partitions
///   exactly: no mispredict restart, no unused locked partition.
/// * **OP3** — the transaction executed some or all of its work without
///   undo logging.
/// * **OP4** — the transaction's early-prepares let other transactions run
///   speculatively, or the transaction itself executed speculatively.
#[derive(Debug, Clone, Copy, Default)]
pub struct OpCounters {
    /// Committed transactions observed.
    pub txns: u64,
    /// OP1 successes.
    pub op1: u64,
    /// Transactions where OP1 was applicable (advisor chose a base).
    pub op1_applicable: u64,
    /// OP2 successes.
    pub op2: u64,
    /// Transactions where OP2 was applicable.
    pub op2_applicable: u64,
    /// OP3 successes (ran at least partly without undo logging).
    pub op3: u64,
    /// OP4 successes (speculative execution happened because of this txn's
    /// early prepare, or this txn ran speculatively).
    pub op4: u64,
}

impl OpCounters {
    fn pct(n: u64, d: u64) -> Option<f64> {
        if d == 0 {
            None
        } else {
            Some(100.0 * n as f64 / d as f64)
        }
    }

    /// OP1 success percentage (None if never applicable — Table 4's "-").
    pub fn op1_pct(&self) -> Option<f64> {
        Self::pct(self.op1, self.op1_applicable)
    }

    /// OP2 success percentage.
    pub fn op2_pct(&self) -> Option<f64> {
        Self::pct(self.op2, self.op2_applicable)
    }

    /// OP3 percentage over committed transactions.
    pub fn op3_pct(&self) -> Option<f64> {
        if self.op3 == 0 {
            None
        } else {
            Self::pct(self.op3, self.txns)
        }
    }

    /// OP4 percentage over committed transactions.
    pub fn op4_pct(&self) -> Option<f64> {
        if self.op4 == 0 {
            None
        } else {
            Self::pct(self.op4, self.txns)
        }
    }
}

/// Fixed-bucket latency histogram over microsecond samples.
///
/// Buckets are geometric: [`LatencyHistogram::BUCKETS_PER_DECADE`] buckets
/// per decade spanning 1 µs to 10^9 µs (~17 min), with one underflow and
/// one overflow bucket. That bounds quantile error at ~12% per sample —
/// plenty for p50/p95/p99 reporting — while keeping the struct a flat,
/// mergeable array (each runtime worker records locally and merges at
/// shutdown). Samples past the ceiling land in the overflow bucket;
/// [`LatencyHistogram::quantile_us`] reports quantiles that fall there as
/// `None` rather than inventing an in-range edge, and
/// [`LatencyHistogram::overflow_count`] exposes how many samples saturated.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    sum_us: f64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram { counts: vec![0; Self::NUM_BUCKETS], total: 0, sum_us: 0.0 }
    }
}

impl LatencyHistogram {
    /// Geometric resolution: buckets per factor-of-ten.
    pub const BUCKETS_PER_DECADE: usize = 20;
    /// Decades covered: 1 µs .. 10^9 µs.
    const DECADES: usize = 9;
    /// Underflow + geometric grid + overflow.
    const NUM_BUCKETS: usize = Self::DECADES * Self::BUCKETS_PER_DECADE + 2;

    fn bucket_of(us: f64) -> usize {
        if us < 1.0 || us.is_nan() {
            // Sub-microsecond, zero, or NaN: underflow bucket.
            return 0;
        }
        let idx = (us.log10() * Self::BUCKETS_PER_DECADE as f64).floor() as usize + 1;
        idx.min(Self::NUM_BUCKETS - 1)
    }

    /// Upper edge (µs) of bucket `idx`, used as the reported quantile value.
    fn bucket_upper_us(idx: usize) -> f64 {
        if idx == 0 {
            return 1.0;
        }
        10f64.powf(idx as f64 / Self::BUCKETS_PER_DECADE as f64)
    }

    /// Records one latency sample in microseconds. A NaN sample lands in
    /// the underflow bucket like any sub-microsecond value and contributes
    /// nothing to the sum, so one bad sample cannot poison `mean_us`.
    pub fn record_us(&mut self, us: f64) {
        self.counts[Self::bucket_of(us)] += 1;
        self.total += 1;
        if !us.is_nan() {
            self.sum_us += us;
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean latency (µs), `None` when no samples were recorded.
    pub fn mean_us(&self) -> Option<f64> {
        if self.total == 0 {
            None
        } else {
            Some(self.sum_us / self.total as f64)
        }
    }

    /// The latency (µs) at quantile `q` in `[0, 1]`, reported as the
    /// containing bucket's upper edge. `None` when empty, and `None` when
    /// the quantile lands in the overflow bucket — the bucket has no real
    /// upper edge, and reporting the histogram's top edge used to silently
    /// cap p99 at the range (exact-edge values masquerading as data).
    pub fn quantile_us(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate().take(Self::NUM_BUCKETS - 1) {
            seen += c;
            if seen >= rank {
                return Some(Self::bucket_upper_us(i));
            }
        }
        None
    }

    /// Samples that saturated past the histogram's range (callers report
    /// these distinctly — a `None` quantile with a non-zero overflow count
    /// means "beyond range", not "no data").
    pub fn overflow_count(&self) -> u64 {
        self.counts[Self::NUM_BUCKETS - 1]
    }

    /// Median latency (ms).
    pub fn p50_ms(&self) -> Option<f64> {
        self.quantile_us(0.50).map(|us| us / 1000.0)
    }

    /// 95th-percentile latency (ms).
    pub fn p95_ms(&self) -> Option<f64> {
        self.quantile_us(0.95).map(|us| us / 1000.0)
    }

    /// 99th-percentile latency (ms).
    pub fn p99_ms(&self) -> Option<f64> {
        self.quantile_us(0.99).map(|us| us / 1000.0)
    }

    /// Folds another histogram into this one (runtime workers merge their
    /// thread-local histograms at shutdown).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum_us += other.sum_us;
    }
}

/// Accuracy of one advisor epoch's predictions, as observed by the
/// maintenance thread: how many live transitions it saw from transactions
/// planned under `epoch`, and how many of those the then-current model
/// *covered* (both states present and the edge carrying trained or
/// folded-in counts — coverage accuracy, not argmax matching; see
/// `markov::ModelMonitor::observe_walk` for why the argmax test would
/// read data-dependent branching as permanent drift). A model swap shows
/// up as a new entry whose accuracy recovers (Fig. 11's §4.5 narrative,
/// measured live).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochAccuracy {
    /// Advisor epoch the transactions planned against.
    pub epoch: u64,
    /// Transitions observed from that epoch's transactions.
    pub observed: u64,
    /// Of those, transitions the model covered with trained counts.
    pub matched: u64,
}

impl EpochAccuracy {
    /// Matched fraction, `None` until something was observed.
    pub fn accuracy(&self) -> Option<f64> {
        if self.observed == 0 {
            None
        } else {
            Some(self.matched as f64 / self.observed as f64)
        }
    }

    /// Folds one `(observed, matched)` sample for `epoch` into an
    /// epoch-sorted accuracy list — the single merge implementation
    /// behind [`RunMetrics`] and [`MaintenanceReport`].
    pub fn merge_into(list: &mut Vec<EpochAccuracy>, epoch: u64, observed: u64, matched: u64) {
        match list.iter_mut().find(|e| e.epoch == epoch) {
            Some(e) => {
                e.observed += observed;
                e.matched += matched;
            }
            None => {
                list.push(EpochAccuracy { epoch, observed, matched });
                list.sort_by_key(|e| e.epoch);
            }
        }
    }
}

/// What one run's maintenance thread did (merged into [`RunMetrics`] at
/// shutdown by [`crate::run_live`]).
#[derive(Debug, Clone, Default)]
pub struct MaintenanceReport {
    /// Model epochs published (each swap rebuilds only the drifted models).
    pub model_swaps: u64,
    /// Feedback records consumed from the channel.
    pub feedback_records: u64,
    /// Per-epoch prediction accuracy.
    pub epoch_accuracy: Vec<EpochAccuracy>,
}

/// Aggregate results of one run (simulated or live).
#[derive(Debug, Clone, Default)]
pub struct RunMetrics {
    /// Committed transactions inside the measurement window.
    pub committed: u64,
    /// Committed transactions per procedure (measurement window).
    pub committed_by_proc: FxHashMap<ProcId, u64>,
    /// User aborts (control-code rollbacks).
    pub user_aborts: u64,
    /// Mispredict restarts (lock-set or base-partition misses).
    pub restarts: u64,
    /// Transactions that executed speculatively.
    pub speculative: u64,
    /// Speculative executions discarded by a cascading rollback after the
    /// early-prepared transaction aborted (live runtime OP4; each cascaded
    /// transaction is transparently re-executed, so it still ends up in
    /// exactly one of `committed`/`user_aborts`).
    pub cascaded_aborts: u64,
    /// Transactions that ran (partly) without undo logging.
    pub no_undo: u64,
    /// Distributed (multi-partition) transactions.
    pub distributed: u64,
    /// Single-partition transactions.
    pub single_partition: u64,
    /// Sum of client-visible latency (µs) over committed txns.
    pub total_latency_us: f64,
    /// Client-visible latency distribution over committed in-window txns.
    pub latency: LatencyHistogram,
    /// Partition-µs spent reserved-but-idle by distributed transactions
    /// (fragment done or never used, waiting for 2PC) — what OP4 recovers.
    pub reserved_idle_us: f64,
    /// Per-partition lock hold times (µs) of distributed transactions in
    /// the live runtime: one sample per (transaction, locked partition),
    /// from atomic lock-set acquisition to that partition's release (early
    /// via OP4, or at 2PC completion). Early prepare shows up here directly
    /// as a lower distribution.
    pub lock_hold: LatencyHistogram,
    /// Per-procedure summed latency (µs) over committed in-window txns.
    pub latency_by_proc: FxHashMap<ProcId, f64>,
    /// Length of the measurement window (µs) — simulated for `Simulation`,
    /// wall-clock for the live runtime.
    pub window_us: f64,
    /// Per-procedure optimization counters.
    pub ops: FxHashMap<ProcId, OpCounters>,
    /// Model epochs the maintenance thread published during the run (§4.5
    /// live; 0 when the advisor has no maintainer or never drifted).
    pub model_swaps: u64,
    /// Feedback records the maintenance thread consumed.
    pub feedback_records: u64,
    /// Feedback records dropped at the bounded channel (clients never
    /// block on maintenance; overload sheds signal, not throughput).
    pub feedback_dropped: u64,
    /// Per-advisor-epoch prediction accuracy (maintenance thread's view).
    pub epoch_accuracy: Vec<EpochAccuracy>,
    /// Fig. 11 per-stage time attribution (estimation / execution /
    /// planning / coordination / queueing / other) per procedure —
    /// simulated µs in the simulator, wall-clock µs in the live runtime.
    pub profile: Profiler,
    /// Commit-flush demands registered with the shared flush sequencer
    /// (worker group closes + coordinator 2PC durability waits); live
    /// runtime only, filled from the sequencer at snapshot/teardown.
    pub flushes_total: u64,
    /// The subset of `flushes_total` satisfied by a device operation some
    /// other worker or coordinator led — cross-thread commit-flush
    /// coalescing at work (0 with `commit_flush_us = 0`).
    pub flushes_coalesced: u64,
    /// Command-log records appended (durable mode only; 0 otherwise).
    pub log_records: u64,
    /// Command-log bytes appended (durable mode only).
    pub log_bytes_written: u64,
    /// Transaction-consistent snapshot generations published this run.
    pub snapshots_taken: u64,
    /// Milliseconds [`crate::runtime::LiveRuntime::recover`] spent before
    /// this run started serving; 0 for a fresh boot.
    pub recovery_ms: f64,
}

/// The headline numbers of one run, extracted by [`RunMetrics::summary`]:
/// what every report ultimately prints — throughput, outcome counts, and
/// the client-visible latency quantiles — in one place instead of each
/// call site recomputing them from the raw counters.
#[derive(Debug, Clone)]
pub struct MetricsSummary {
    /// Committed transactions per (simulated or wall-clock) second.
    pub throughput_tps: f64,
    /// Committed transactions.
    pub committed: u64,
    /// User aborts (control-code rollbacks).
    pub user_aborts: u64,
    /// Mispredict restarts.
    pub restarts: u64,
    /// Median client-visible latency (ms), `None` when nothing committed.
    pub p50_ms: Option<f64>,
    /// 95th-percentile client-visible latency (ms).
    pub p95_ms: Option<f64>,
    /// 99th-percentile client-visible latency (ms).
    pub p99_ms: Option<f64>,
    /// Mean client-visible latency (ms).
    pub mean_latency_ms: Option<f64>,
    /// Commit-flush demands registered with the shared flush sequencer.
    pub flushes_total: u64,
    /// Flush demands satisfied by riding another thread's device
    /// operation (see [`RunMetrics::flushes_coalesced`]).
    pub flushes_coalesced: u64,
    /// Command-log records appended (durable mode only).
    pub log_records: u64,
    /// Command-log bytes appended (durable mode only).
    pub log_bytes_written: u64,
    /// Snapshot generations published during the run.
    pub snapshots_taken: u64,
    /// Recovery time before this run served traffic (ms); 0 fresh boot.
    pub recovery_ms: f64,
}

impl std::fmt::Display for MetricsSummary {
    /// One human-readable line, with `-` for empty-window latencies.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let q = |v: Option<f64>| v.map_or_else(|| "-".into(), |x| format!("{x:.2}"));
        write!(
            f,
            "{:.0} tps, {} committed / {} aborted / {} restarts, \
             p50/p95/p99 {}/{}/{} ms, flushes {} ({} coalesced)",
            self.throughput_tps,
            self.committed,
            self.user_aborts,
            self.restarts,
            q(self.p50_ms),
            q(self.p95_ms),
            q(self.p99_ms),
            self.flushes_total,
            self.flushes_coalesced,
        )?;
        if self.log_records > 0 || self.snapshots_taken > 0 {
            write!(
                f,
                ", wal {} recs / {} B, {} snapshots",
                self.log_records, self.log_bytes_written, self.snapshots_taken
            )?;
        }
        if self.recovery_ms > 0.0 {
            write!(f, ", recovered in {:.1} ms", self.recovery_ms)?;
        }
        Ok(())
    }
}

impl RunMetrics {
    /// Committed transactions per (simulated or wall-clock) second.
    pub fn throughput_tps(&self) -> f64 {
        if self.window_us <= 0.0 {
            return 0.0;
        }
        self.committed as f64 / (self.window_us / 1_000_000.0)
    }

    /// The headline numbers in one ready-to-print bundle (throughput,
    /// outcomes, latency quantiles) — see [`MetricsSummary`].
    pub fn summary(&self) -> MetricsSummary {
        MetricsSummary {
            throughput_tps: self.throughput_tps(),
            committed: self.committed,
            user_aborts: self.user_aborts,
            restarts: self.restarts,
            p50_ms: self.latency.p50_ms(),
            p95_ms: self.latency.p95_ms(),
            p99_ms: self.latency.p99_ms(),
            mean_latency_ms: self.mean_latency_ms(),
            flushes_total: self.flushes_total,
            flushes_coalesced: self.flushes_coalesced,
            log_records: self.log_records,
            log_bytes_written: self.log_bytes_written,
            snapshots_taken: self.snapshots_taken,
            recovery_ms: self.recovery_ms,
        }
    }

    /// Mean client-visible latency in milliseconds. `None` when no
    /// transaction committed in the window — callers must render the empty
    /// window explicitly instead of mistaking it for a 0 ms round trip.
    pub fn mean_latency_ms(&self) -> Option<f64> {
        if self.committed == 0 {
            None
        } else {
            Some(self.total_latency_us / self.committed as f64 / 1000.0)
        }
    }

    /// Counter cell for `proc`, creating it on demand.
    pub fn ops_mut(&mut self, proc: ProcId) -> &mut OpCounters {
        self.ops.entry(proc).or_default()
    }

    /// Records a committed transaction's latency sample (µs) against the
    /// aggregate and per-procedure accumulators.
    pub fn record_latency(&mut self, proc: ProcId, latency_us: f64) {
        self.total_latency_us += latency_us;
        self.latency.record_us(latency_us);
        *self.latency_by_proc.entry(proc).or_insert(0.0) += latency_us;
    }

    /// Merges one per-epoch accuracy sample.
    pub fn record_epoch_accuracy(&mut self, epoch: u64, observed: u64, matched: u64) {
        EpochAccuracy::merge_into(&mut self.epoch_accuracy, epoch, observed, matched);
    }

    /// Folds the maintenance thread's report in at shutdown.
    pub fn absorb_maintenance(&mut self, report: &MaintenanceReport) {
        self.model_swaps += report.model_swaps;
        self.feedback_records += report.feedback_records;
        for e in &report.epoch_accuracy {
            self.record_epoch_accuracy(e.epoch, e.observed, e.matched);
        }
    }

    /// Aggregate OP2 success percentage across every procedure — the
    /// "prediction accuracy" headline of the live-drift experiment.
    pub fn overall_op2_pct(&self) -> Option<f64> {
        let (mut ok, mut applicable) = (0u64, 0u64);
        for ops in self.ops.values() {
            ok += ops.op2;
            applicable += ops.op2_applicable;
        }
        OpCounters::pct(ok, applicable)
    }

    /// Folds another metrics partial into this one (live-runtime clients
    /// each record locally and merge at shutdown). `window_us` is *not*
    /// combined — the caller sets the shared wall-clock window once.
    pub fn absorb(&mut self, other: &RunMetrics) {
        self.committed += other.committed;
        self.user_aborts += other.user_aborts;
        self.restarts += other.restarts;
        self.speculative += other.speculative;
        self.cascaded_aborts += other.cascaded_aborts;
        self.no_undo += other.no_undo;
        self.distributed += other.distributed;
        self.single_partition += other.single_partition;
        self.total_latency_us += other.total_latency_us;
        self.reserved_idle_us += other.reserved_idle_us;
        self.model_swaps += other.model_swaps;
        self.feedback_records += other.feedback_records;
        self.feedback_dropped += other.feedback_dropped;
        self.flushes_total += other.flushes_total;
        self.flushes_coalesced += other.flushes_coalesced;
        self.log_records += other.log_records;
        self.log_bytes_written += other.log_bytes_written;
        self.snapshots_taken += other.snapshots_taken;
        self.recovery_ms = self.recovery_ms.max(other.recovery_ms);
        for e in &other.epoch_accuracy {
            self.record_epoch_accuracy(e.epoch, e.observed, e.matched);
        }
        self.latency.merge(&other.latency);
        self.lock_hold.merge(&other.lock_hold);
        self.profile.merge(&other.profile);
        for (&proc, &n) in &other.committed_by_proc {
            *self.committed_by_proc.entry(proc).or_insert(0) += n;
        }
        for (&proc, &us) in &other.latency_by_proc {
            *self.latency_by_proc.entry(proc).or_insert(0.0) += us;
        }
        for (&proc, ops) in &other.ops {
            let mine = self.ops_mut(proc);
            mine.txns += ops.txns;
            mine.op1 += ops.op1;
            mine.op1_applicable += ops.op1_applicable;
            mine.op2 += ops.op2;
            mine.op2_applicable += ops.op2_applicable;
            mine.op3 += ops.op3;
            mine.op4 += ops.op4;
        }
    }

    /// Updates the Table 4 optimization counters for one committed
    /// transaction — identical semantics in the simulator and the live
    /// runtime (§6.4).
    #[allow(clippy::too_many_arguments)]
    pub fn tally_ops(
        &mut self,
        proc: ProcId,
        base_partition: PartitionId,
        lock_set: PartitionSet,
        accessed: PartitionSet,
        access_counts: &FxHashMap<PartitionId, u32>,
        num_partitions: u32,
        undo_disabled_ever: bool,
        speculative: bool,
        early_released: bool,
    ) {
        let ops = self.ops_mut(proc);
        ops.txns += 1;
        // OP1: base partition is among the most-accessed partitions, and the
        // choice was meaningful (access counts are not uniform over all
        // partitions — e.g. broadcast-only transactions have no "best" base).
        let max_count = access_counts.values().copied().max().unwrap_or(0);
        let min_count = if accessed.len() == num_partitions {
            access_counts.values().copied().min().unwrap_or(0)
        } else {
            0
        };
        if max_count > min_count {
            ops.op1_applicable += 1;
            if access_counts.get(&base_partition).copied().unwrap_or(0) == max_count {
                ops.op1 += 1;
            }
        }
        // OP2: lock set exactly matched what was accessed.
        ops.op2_applicable += 1;
        if lock_set == accessed {
            ops.op2 += 1;
        }
        if undo_disabled_ever {
            ops.op3 += 1;
        }
        if speculative || early_released {
            ops.op4 += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_math() {
        let m = RunMetrics { committed: 5000, window_us: 1_000_000.0, ..Default::default() };
        assert!((m.throughput_tps() - 5000.0).abs() < 1e-9);
    }

    #[test]
    fn empty_window_is_explicitly_empty() {
        let m = RunMetrics::default();
        assert_eq!(m.throughput_tps(), 0.0);
        assert_eq!(m.mean_latency_ms(), None, "no commits -> no mean latency");
        assert_eq!(m.latency.p50_ms(), None);
    }

    #[test]
    fn summary_bundles_headline_numbers() {
        let mut m = RunMetrics {
            committed: 10,
            user_aborts: 2,
            restarts: 3,
            window_us: 2_000_000.0,
            ..Default::default()
        };
        m.record_latency(0, 1000.0);
        m.record_latency(0, 2000.0);
        let s = m.summary();
        assert!((s.throughput_tps - 5.0).abs() < 1e-9);
        assert_eq!((s.committed, s.user_aborts, s.restarts), (10, 2, 3));
        assert!(s.p50_ms.unwrap() <= s.p99_ms.unwrap());
        let line = s.to_string();
        assert!(line.contains("5 tps") && line.contains("10 committed"), "line = {line}");

        let empty = RunMetrics::default().summary();
        assert_eq!(empty.p50_ms, None);
        assert!(empty.to_string().contains("-/-/-"), "empty quantiles render as dashes");
    }

    #[test]
    fn op_percentages() {
        let c = OpCounters {
            txns: 100,
            op1: 95,
            op1_applicable: 100,
            op2: 50,
            op2_applicable: 50,
            op3: 0,
            op4: 10,
        };
        assert_eq!(c.op1_pct(), Some(95.0));
        assert_eq!(c.op2_pct(), Some(100.0));
        assert_eq!(c.op3_pct(), None, "never applied -> dash");
        assert_eq!(c.op4_pct(), Some(10.0));
    }

    #[test]
    fn histogram_quantiles_bracket_samples() {
        let mut h = LatencyHistogram::default();
        for us in 1..=1000u32 {
            h.record_us(f64::from(us));
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.quantile_us(0.5).unwrap();
        let p99 = h.quantile_us(0.99).unwrap();
        // Geometric buckets: the reported edge is within ~12% above truth.
        assert!((450.0..=650.0).contains(&p50), "p50 = {p50}");
        assert!((900.0..=1200.0).contains(&p99), "p99 = {p99}");
        assert!(p50 <= p99);
        let mean = h.mean_us().unwrap();
        assert!((mean - 500.5).abs() < 1e-6, "mean is exact, not bucketed");
    }

    #[test]
    fn histogram_extremes_and_nan_stay_bounded() {
        let mut h = LatencyHistogram::default();
        h.record_us(0.0);
        h.record_us(-3.0);
        h.record_us(f64::NAN);
        h.record_us(1e12); // over the ~17 min ceiling -> overflow bucket
        assert_eq!(h.count(), 4);
        assert!(h.quantile_us(0.0).unwrap() >= 1.0);
        assert_eq!(h.quantile_us(1.0), None, "max sample saturated -> no fake edge");
        assert_eq!(h.overflow_count(), 1);
        assert!(h.mean_us().unwrap().is_finite(), "a NaN sample must not poison the mean");
    }

    #[test]
    fn histogram_overflow_is_reported_not_capped() {
        // Regression: an out-of-range sample used to be reported as the
        // histogram's top edge, silently capping p99 at the range.
        let mut h = LatencyHistogram::default();
        for _ in 0..99 {
            h.record_us(100.0);
        }
        h.record_us(1e15); // way past the ceiling
        assert_eq!(h.overflow_count(), 1);
        // In-range quantiles still report normally...
        let p50 = h.quantile_us(0.50).unwrap();
        assert!((90.0..=130.0).contains(&p50), "p50 = {p50}");
        // ...but a quantile that lands in the overflow bucket refuses to
        // invent a value instead of claiming the top edge.
        assert_eq!(h.quantile_us(1.0), None);
        assert_eq!(h.p99_ms(), Some(h.quantile_us(0.99).unwrap() / 1000.0));
        // A 10-second sample is comfortably in range after widening.
        let mut wide = LatencyHistogram::default();
        wide.record_us(10_000_000.0);
        assert_eq!(wide.overflow_count(), 0);
        let q = wide.quantile_us(1.0).unwrap();
        assert!((9_000_000.0..=13_000_000.0).contains(&q), "q = {q}");
    }

    #[test]
    fn histogram_merge_matches_combined_recording() {
        let mut a = LatencyHistogram::default();
        let mut b = LatencyHistogram::default();
        let mut both = LatencyHistogram::default();
        for us in [3.0, 40.0, 550.0, 7000.0] {
            a.record_us(us);
            both.record_us(us);
        }
        for us in [8.0, 90.0, 1200.0] {
            b.record_us(us);
            both.record_us(us);
        }
        a.merge(&b);
        assert_eq!(a.count(), both.count());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(a.quantile_us(q), both.quantile_us(q), "q = {q}");
        }
    }

    #[test]
    fn tally_ops_matches_table4_semantics() {
        let mut m = RunMetrics::default();
        let mut counts = FxHashMap::default();
        counts.insert(1u32, 3u32);
        counts.insert(2u32, 1u32);
        let accessed = PartitionSet::from_iter([1u32, 2]);
        m.tally_ops(0, 1, accessed, accessed, &counts, 4, true, false, true);
        let ops = &m.ops[&0];
        assert_eq!(ops.txns, 1);
        assert_eq!(ops.op1, 1, "base 1 is most accessed");
        assert_eq!(ops.op2, 1, "lock set exact");
        assert_eq!(ops.op3, 1);
        assert_eq!(ops.op4, 1);

        // A broadcast with uniform counts: OP1 not applicable.
        let mut m2 = RunMetrics::default();
        let mut uni = FxHashMap::default();
        for p in 0..4u32 {
            uni.insert(p, 2u32);
        }
        let all = PartitionSet::all(4);
        m2.tally_ops(0, 0, all, all, &uni, 4, false, false, false);
        assert_eq!(m2.ops[&0].op1_applicable, 0);
    }
}
