//! Run-level metrics: throughput, restarts, and the per-procedure
//! optimization counters behind Table 4.

use common::{FxHashMap, ProcId};

/// Per-procedure counters of how often each optimization was applied
/// *successfully at run time* (Table 4's semantics, §6.4):
///
/// * **OP1** — the chosen base partition turned out to be (one of) the
///   partition(s) the transaction accessed most.
/// * **OP2** — the predicted lock set matched the accessed partitions
///   exactly: no mispredict restart, no unused locked partition.
/// * **OP3** — the transaction executed some or all of its work without
///   undo logging.
/// * **OP4** — the transaction's early-prepares let other transactions run
///   speculatively, or the transaction itself executed speculatively.
#[derive(Debug, Clone, Copy, Default)]
pub struct OpCounters {
    /// Committed transactions observed.
    pub txns: u64,
    /// OP1 successes.
    pub op1: u64,
    /// Transactions where OP1 was applicable (advisor chose a base).
    pub op1_applicable: u64,
    /// OP2 successes.
    pub op2: u64,
    /// Transactions where OP2 was applicable.
    pub op2_applicable: u64,
    /// OP3 successes (ran at least partly without undo logging).
    pub op3: u64,
    /// OP4 successes (speculative execution happened because of this txn's
    /// early prepare, or this txn ran speculatively).
    pub op4: u64,
}

impl OpCounters {
    fn pct(n: u64, d: u64) -> Option<f64> {
        if d == 0 {
            None
        } else {
            Some(100.0 * n as f64 / d as f64)
        }
    }

    /// OP1 success percentage (None if never applicable — Table 4's "-").
    pub fn op1_pct(&self) -> Option<f64> {
        Self::pct(self.op1, self.op1_applicable)
    }

    /// OP2 success percentage.
    pub fn op2_pct(&self) -> Option<f64> {
        Self::pct(self.op2, self.op2_applicable)
    }

    /// OP3 percentage over committed transactions.
    pub fn op3_pct(&self) -> Option<f64> {
        if self.op3 == 0 {
            None
        } else {
            Self::pct(self.op3, self.txns)
        }
    }

    /// OP4 percentage over committed transactions.
    pub fn op4_pct(&self) -> Option<f64> {
        if self.op4 == 0 {
            None
        } else {
            Self::pct(self.op4, self.txns)
        }
    }
}

/// Aggregate results of one simulation run.
#[derive(Debug, Clone, Default)]
pub struct RunMetrics {
    /// Committed transactions inside the measurement window.
    pub committed: u64,
    /// Committed transactions per procedure (measurement window).
    pub committed_by_proc: FxHashMap<ProcId, u64>,
    /// User aborts (control-code rollbacks).
    pub user_aborts: u64,
    /// Mispredict restarts (lock-set or base-partition misses).
    pub restarts: u64,
    /// Transactions that executed speculatively.
    pub speculative: u64,
    /// Transactions that ran (partly) without undo logging.
    pub no_undo: u64,
    /// Distributed (multi-partition) transactions.
    pub distributed: u64,
    /// Single-partition transactions.
    pub single_partition: u64,
    /// Sum of client-visible latency (µs) over committed txns.
    pub total_latency_us: f64,
    /// Partition-µs spent reserved-but-idle by distributed transactions
    /// (fragment done or never used, waiting for 2PC) — what OP4 recovers.
    pub reserved_idle_us: f64,
    /// Per-procedure summed latency (µs) over committed in-window txns.
    pub latency_by_proc: FxHashMap<ProcId, f64>,
    /// Simulated length of the measurement window (µs).
    pub window_us: f64,
    /// Per-procedure optimization counters.
    pub ops: FxHashMap<ProcId, OpCounters>,
}

impl RunMetrics {
    /// Committed transactions per simulated second.
    pub fn throughput_tps(&self) -> f64 {
        if self.window_us <= 0.0 {
            return 0.0;
        }
        self.committed as f64 / (self.window_us / 1_000_000.0)
    }

    /// Mean client-visible latency in milliseconds.
    pub fn mean_latency_ms(&self) -> f64 {
        if self.committed == 0 {
            return 0.0;
        }
        self.total_latency_us / self.committed as f64 / 1000.0
    }

    /// Counter cell for `proc`, creating it on demand.
    pub fn ops_mut(&mut self, proc: ProcId) -> &mut OpCounters {
        self.ops.entry(proc).or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_math() {
        let m = RunMetrics {
            committed: 5000,
            window_us: 1_000_000.0,
            ..Default::default()
        };
        assert!((m.throughput_tps() - 5000.0).abs() < 1e-9);
    }

    #[test]
    fn empty_window_is_zero() {
        let m = RunMetrics::default();
        assert_eq!(m.throughput_tps(), 0.0);
        assert_eq!(m.mean_latency_ms(), 0.0);
    }

    #[test]
    fn op_percentages() {
        let c = OpCounters {
            txns: 100,
            op1: 95,
            op1_applicable: 100,
            op2: 50,
            op2_applicable: 50,
            op3: 0,
            op4: 10,
        };
        assert_eq!(c.op1_pct(), Some(95.0));
        assert_eq!(c.op2_pct(), Some(100.0));
        assert_eq!(c.op3_pct(), None, "never applied -> dash");
        assert_eq!(c.op4_pct(), Some(10.0));
    }
}
