//! The advisor interface: where transaction predictions enter the engine.
//!
//! Before a transaction starts, the engine asks its [`TxnAdvisor`] for a
//! [`TxnPlan`] — the base partition (OP1), the partitions to lock (OP2), and
//! whether to disable undo logging from the start (OP3). While the
//! transaction runs, the engine reports every executed query back through
//! [`TxnAdvisor::on_query`], and the advisor may respond with runtime
//! updates (§4.4): disable undo logging now (OP3) or declare partitions
//! finished so the engine can send early-prepares and begin speculative
//! execution there (OP4).
//!
//! The paper's baselines implement this trait in [`crate::baselines`];
//! Houdini implements it in the `houdini` crate.

use crate::catalog::Catalog;
use crate::exec::ExecutedQuery;
use crate::metrics::MaintenanceReport;
use crate::procedure::ProcedureRegistry;
use common::{NodeId, PartitionId, PartitionSet, ProcId, QueryId, Value};
use storage::Database;

/// A client's transaction request: pre-defined procedure name (by id) plus
/// input parameters, arriving at some node.
#[derive(Debug, Clone)]
pub struct Request {
    /// Stored procedure to invoke.
    pub proc: ProcId,
    /// Procedure input parameters.
    pub args: Vec<Value>,
    /// Node where the request arrived.
    pub origin_node: NodeId,
}

/// The advisor's initial decisions for one transaction.
///
/// `Copy`: every field is a small scalar or bitset, and the live fast path
/// moves a plan into each worker message — keeping it `Copy` pins that at
/// zero allocations.
#[derive(Debug, Clone, Copy)]
pub struct TxnPlan {
    /// Partition whose node runs the control code (OP1).
    pub base_partition: PartitionId,
    /// Partitions to lock before starting (OP2). Must contain
    /// `base_partition`.
    pub lock_set: PartitionSet,
    /// Start with undo logging off (OP3). The engine re-enables it for
    /// speculative transactions, as the paper requires (§4.3 OP3).
    pub disable_undo: bool,
    /// Whether the advisor will emit finished-partition updates (OP4).
    pub early_prepare: bool,
    /// Simulated cost of producing this estimate, charged to the
    /// "estimation" profiler bucket (Fig. 11).
    pub estimate_cost_us: f64,
}

impl TxnPlan {
    /// A conservative plan: lock everything, keep undo, no early prepare.
    pub fn lock_all(base: PartitionId, num_partitions: u32) -> Self {
        TxnPlan {
            base_partition: base,
            lock_set: PartitionSet::all(num_partitions),
            disable_undo: false,
            early_prepare: false,
            estimate_cost_us: 0.0,
        }
    }

    /// A single-partition plan at `base`.
    pub fn single(base: PartitionId) -> Self {
        TxnPlan {
            base_partition: base,
            lock_set: PartitionSet::single(base),
            disable_undo: false,
            early_prepare: false,
            estimate_cost_us: 0.0,
        }
    }
}

/// Runtime updates the advisor hands back after observing a query (§4.4).
#[derive(Debug, Clone, Default)]
pub struct Updates {
    /// Partitions the transaction is now predicted to be finished with; the
    /// engine sends early-prepare there and opens speculation (OP4).
    pub finished: PartitionSet,
    /// Disable undo logging from this point on (OP3).
    pub disable_undo: bool,
    /// Simulated cost of computing these updates (estimation bucket).
    pub cost_us: f64,
}

/// What the advisor can see when planning: the catalog, the registry, the
/// live database (the Oracle dry-runs against it), and the cluster size.
pub struct PlanEnv<'a> {
    /// The live database.
    pub db: &'a mut Database,
    /// Procedure implementations.
    pub registry: &'a ProcedureRegistry,
    /// Procedure/query metadata.
    pub catalog: &'a Catalog,
    /// Number of partitions in the cluster.
    pub num_partitions: u32,
    /// Random value in `[0, num_partitions)` the advisor may use for
    /// random-placement policies; pre-drawn so advisors stay deterministic.
    pub random_local_partition: PartitionId,
}

/// How a transaction finished, reported back to the advisor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnOutcome {
    /// Committed.
    Committed,
    /// Control code aborted (user abort); not restarted.
    UserAborted,
    /// Gave up after exceeding the restart limit (counted as failed).
    Failed,
    /// This *attempt* aborted on a lock-set mispredict and its session is
    /// being torn down before the replan; the executed prefix is still
    /// maintenance signal (§4.5) but no commit/abort was reached.
    Mispredicted,
}

/// Structured per-transaction path feedback handed back from live session
/// teardown ([`LiveAdvisor::on_end_live`]) and shipped over the runtime's
/// bounded feedback channel to the maintenance thread (§4.5).
#[derive(Debug, Clone)]
pub struct TxnFeedback {
    /// Procedure executed.
    pub proc: ProcId,
    /// Model index the advisor selected for this transaction.
    pub model: u32,
    /// Advisor epoch the transaction planned against (see
    /// [`common::EpochCell`]); accuracy is attributed per epoch.
    pub epoch: u64,
    /// The actually-executed path: one `(query, partitions)` entry per
    /// executed query invocation, in order.
    pub path: Vec<(QueryId, PartitionSet)>,
    /// `Some(committed)` when the transaction finished; `None` for a
    /// mispredict-aborted attempt (prefix only, no terminal edge).
    pub terminal: Option<bool>,
    /// The transaction left its initial complete path estimate (§4.4
    /// deviation) — a per-transaction drift signal on top of the per-edge
    /// accuracy the maintenance thread computes from `path`.
    pub deviated: bool,
    /// The lock set the advisor predicted (OP2), for estimate-deviation
    /// accounting against the accessed union of `path`.
    pub predicted: PartitionSet,
}

/// Background on-line model maintenance (§4.5), owned by the live
/// runtime's maintenance thread. [`crate::LiveRuntime`] obtains one from
/// [`LiveAdvisor::maintainer`], feeds it every [`TxnFeedback`] record the
/// clients emit (in channel-arrival order), and collects the final report
/// at shutdown. The maintainer may publish new model epochs at any point;
/// in-flight transactions keep the snapshot they planned with.
pub trait LiveMaintainer: Send {
    /// Consumes one feedback record, possibly recomputing stale models and
    /// publishing a new epoch.
    fn absorb(&mut self, feedback: TxnFeedback);

    /// Counters accumulated so far (queried once, at shutdown).
    fn report(&self) -> MaintenanceReport;
}

/// What a *live* advisor can see when planning. Unlike [`PlanEnv`] there is
/// no database handle: in the live runtime the storage shards are owned by
/// the worker threads, so planning must depend only on immutable, shared
/// state (catalog, trained models) plus the request itself.
#[derive(Debug, Clone, Copy)]
pub struct PlanContext<'a> {
    /// Procedure/query metadata.
    pub catalog: &'a Catalog,
    /// Number of partitions in the cluster.
    pub num_partitions: u32,
    /// Random value in `[0, num_partitions)` the advisor may use for
    /// random-placement policies; pre-drawn per request so advisors stay
    /// deterministic.
    pub random_local_partition: PartitionId,
}

/// The thread-safe prediction interface of the live runtime.
///
/// This is the split plan/feedback form of [`TxnAdvisor`]: the advisor
/// itself is shared immutably across every client and worker thread
/// (`&self`, `Sync`), and all per-transaction scratch state lives in an
/// explicit [`LiveAdvisor::Session`] value that travels with the
/// transaction — to the owning worker for single-partition work, or staying
/// with the coordinator for distributed work. A trained advisor therefore
/// serves the whole cluster concurrently without locks.
///
/// On-line model maintenance (§4.5) runs *beside* traffic rather than
/// inside it: session teardown returns structured [`TxnFeedback`], the
/// runtime ships it over a bounded channel to a background maintenance
/// thread driving the advisor's [`LiveMaintainer`], and the maintainer
/// publishes rebuilt models as new epochs that fresh transactions pick up
/// (epoch-swapped advisor state; see DESIGN.md §5).
pub trait LiveAdvisor: Send + Sync {
    /// Per-transaction scratch state carried between `plan_live`,
    /// `on_query_live`, and `on_end_live`. Sessions travel to worker
    /// threads owned by a [`crate::LiveRuntime`], so they must be
    /// self-contained (`'static`): anything borrowed from the advisor has
    /// to ride in an `Arc` snapshot instead of a reference.
    type Session: Send + 'static;

    /// Advisor name for reports.
    fn name(&self) -> &str;

    /// Produces the initial plan and session for a new request.
    fn plan_live(&self, req: &Request, ctx: &PlanContext<'_>) -> (TxnPlan, Self::Session);

    /// Observes one executed query; returns runtime updates. Default: none.
    fn on_query_live(&self, _session: &mut Self::Session, _q: &ExecutedQuery) -> Updates {
        Updates::default()
    }

    /// Produces a new plan after a mispredict abort (same contract as
    /// [`TxnAdvisor::replan`]).
    fn replan_live(
        &self,
        req: &Request,
        observed: PartitionSet,
        attempt: u32,
        ctx: &PlanContext<'_>,
    ) -> (TxnPlan, Self::Session);

    /// Transaction (or mispredicted attempt) finished; the session is
    /// handed back for disposal and may yield structured path feedback for
    /// the maintenance thread. Default: nothing to learn.
    fn on_end_live(&self, _session: Self::Session, _outcome: TxnOutcome) -> Option<TxnFeedback> {
        None
    }

    /// Like [`LiveAdvisor::plan_live`], but offered a `spare` session
    /// reclaimed by [`LiveAdvisor::end_live_reclaim`] from an earlier
    /// transaction of the *same procedure* on the *same client*. Advisors
    /// with allocation-heavy sessions override this to graft the spare's
    /// already-sized buffers into the fresh session; the default drops the
    /// spare and plans from scratch. Implementations must not let any
    /// stale prediction state survive the graft — only raw capacity
    /// (maps, vectors) may be reused.
    fn plan_live_reusing(
        &self,
        req: &Request,
        ctx: &PlanContext<'_>,
        spare: Option<Self::Session>,
    ) -> (TxnPlan, Self::Session) {
        drop(spare);
        self.plan_live(req, ctx)
    }

    /// Session teardown with scratch reclamation: returns exactly what
    /// [`LiveAdvisor::on_end_live`] would, plus (optionally) the spent
    /// session so the calling client can cache it and hand it back to the
    /// next [`LiveAdvisor::plan_live_reusing`] for the same procedure.
    /// The default preserves the consume-only contract and reclaims
    /// nothing.
    fn end_live_reclaim(
        &self,
        session: Self::Session,
        outcome: TxnOutcome,
    ) -> (Option<TxnFeedback>, Option<Self::Session>) {
        (self.on_end_live(session, outcome), None)
    }

    /// The advisor's background maintenance driver, if it learns from live
    /// feedback. Called once per [`crate::run_live`]; `None` (the default)
    /// disables the feedback channel and maintenance thread entirely.
    fn maintainer(&self) -> Option<Box<dyn LiveMaintainer + '_>> {
        None
    }
}

/// Sharing an advisor between a [`crate::LiveRuntime`] (which takes its
/// advisor by value) and other owners — a second runtime window, accuracy
/// probes, training inspection — works by wrapping it in an [`Arc`](std::sync::Arc): the
/// handle delegates every call to the inner advisor.
impl<A: LiveAdvisor> LiveAdvisor for std::sync::Arc<A> {
    type Session = A::Session;

    fn name(&self) -> &str {
        (**self).name()
    }

    fn plan_live(&self, req: &Request, ctx: &PlanContext<'_>) -> (TxnPlan, Self::Session) {
        (**self).plan_live(req, ctx)
    }

    fn on_query_live(&self, session: &mut Self::Session, q: &ExecutedQuery) -> Updates {
        (**self).on_query_live(session, q)
    }

    fn replan_live(
        &self,
        req: &Request,
        observed: PartitionSet,
        attempt: u32,
        ctx: &PlanContext<'_>,
    ) -> (TxnPlan, Self::Session) {
        (**self).replan_live(req, observed, attempt, ctx)
    }

    fn on_end_live(&self, session: Self::Session, outcome: TxnOutcome) -> Option<TxnFeedback> {
        (**self).on_end_live(session, outcome)
    }

    fn plan_live_reusing(
        &self,
        req: &Request,
        ctx: &PlanContext<'_>,
        spare: Option<Self::Session>,
    ) -> (TxnPlan, Self::Session) {
        (**self).plan_live_reusing(req, ctx, spare)
    }

    fn end_live_reclaim(
        &self,
        session: Self::Session,
        outcome: TxnOutcome,
    ) -> (Option<TxnFeedback>, Option<Self::Session>) {
        (**self).end_live_reclaim(session, outcome)
    }

    fn maintainer(&self) -> Option<Box<dyn LiveMaintainer + '_>> {
        (**self).maintainer()
    }
}

/// The prediction interface. One advisor instance serves a whole simulation;
/// the simulator processes one transaction at a time, so the advisor may
/// keep per-transaction scratch state between `plan` and `on_query` calls.
pub trait TxnAdvisor {
    /// Advisor name for reports.
    fn name(&self) -> &str;

    /// Produces the initial plan for a new request.
    fn plan(&mut self, req: &Request, env: &mut PlanEnv<'_>) -> TxnPlan;

    /// Observes one executed query; returns runtime updates. Default: none.
    fn on_query(&mut self, _q: &ExecutedQuery) -> Updates {
        Updates::default()
    }

    /// Produces a new plan after a mispredict abort. `observed` is the union
    /// of partitions the transaction touched (or tried to touch) before
    /// aborting; `attempt` counts restarts so far (first restart = 1).
    fn replan(
        &mut self,
        req: &Request,
        observed: PartitionSet,
        attempt: u32,
        env: &mut PlanEnv<'_>,
    ) -> TxnPlan;

    /// Transaction finished; advisor may update internal models.
    fn on_end(&mut self, _outcome: TxnOutcome) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_constructors() {
        let p = TxnPlan::lock_all(2, 8);
        assert_eq!(p.lock_set.len(), 8);
        assert!(p.lock_set.contains(p.base_partition));
        let s = TxnPlan::single(3);
        assert!(s.lock_set.is_single());
        assert_eq!(s.base_partition, 3);
    }

    #[test]
    fn updates_default_is_empty() {
        let u = Updates::default();
        assert!(u.finished.is_empty());
        assert!(!u.disable_undo);
        assert_eq!(u.cost_us, 0.0);
    }
}
