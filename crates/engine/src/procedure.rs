//! Batch-structured stored procedures.
//!
//! H-Store control code submits batches of parameterized queries and blocks
//! for their results (paper §2, Fig. 2). We model each procedure as an
//! explicit state machine: [`ProcInstance::next`] receives the previous
//! batch's results and returns either another batch, `Commit`, or `Abort`.
//! This is deterministic, allocation-light, and drives both the timed
//! simulator and the offline trace executor with identical semantics.

use crate::catalog::ProcDef;
use common::{ProcId, QueryId, Value};
use storage::Row;

/// One query invocation inside a batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryInvocation {
    /// Query id within the procedure's catalog entry.
    pub query: QueryId,
    /// Parameter values for this invocation.
    pub params: Vec<Value>,
}

impl QueryInvocation {
    /// Shorthand constructor.
    pub fn new(query: QueryId, params: Vec<Value>) -> Self {
        QueryInvocation { query, params }
    }
}

/// What the control code wants to do next.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Step {
    /// Execute these queries (conceptually in parallel) and hand back the
    /// results.
    Queries(Vec<QueryInvocation>),
    /// Commit the transaction.
    Commit,
    /// Abort the transaction (user/application abort, e.g. TPC-C invalid
    /// item).
    Abort(String),
}

/// A running invocation of a stored procedure: the control code plus its
/// local variables.
pub trait ProcInstance {
    /// Advances the control code. `results` is `None` on the first call;
    /// afterwards it holds one `Vec<Row>` per query of the previous batch,
    /// in batch order.
    fn next(&mut self, results: Option<&[Vec<Row>]>) -> Step;
}

/// A stored procedure: catalog metadata plus a factory for running
/// instances.
pub trait Procedure: Send + Sync {
    /// The procedure's catalog definition (queries, names, flags).
    fn def(&self) -> &ProcDef;
    /// Starts a new invocation with the given input parameters.
    fn instantiate(&self, args: &[Value]) -> Box<dyn ProcInstance>;
}

/// The set of procedures a benchmark registers with the engine. Procedure
/// ids index into this registry and into the matching [`crate::Catalog`].
pub struct ProcedureRegistry {
    procs: Vec<Box<dyn Procedure>>,
}

impl ProcedureRegistry {
    /// Builds a registry from boxed procedures; their order defines ids.
    pub fn new(procs: Vec<Box<dyn Procedure>>) -> Self {
        ProcedureRegistry { procs }
    }

    /// The procedure registered under `id`.
    pub fn get(&self, id: ProcId) -> &dyn Procedure {
        self.procs[id as usize].as_ref()
    }

    /// Number of procedures.
    pub fn len(&self) -> usize {
        self.procs.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.procs.is_empty()
    }

    /// Builds the [`crate::Catalog`] matching this registry.
    pub fn catalog(&self) -> crate::Catalog {
        crate::Catalog { procs: self.procs.iter().map(|p| p.def().clone()).collect() }
    }
}

#[cfg(test)]
pub(crate) mod testing {
    //! A tiny single-table benchmark used by engine unit tests.

    use super::*;
    use crate::catalog::{ColumnOp, PartitionHint, QueryDef, QueryOp};
    use storage::{Database, Schema};

    /// Builds a 1-table database: `KV(ID, GRP, VAL)` partitioned on `ID`,
    /// pre-loaded with `rows_per_partition * parts` rows (ID = 0..n).
    pub fn kv_database(parts: u32, rows_per_partition: u32) -> Database {
        let schemas = vec![Schema::new("KV", &["ID", "GRP", "VAL"], &[0], Some(0))];
        let mut db = Database::new(schemas, parts, &[("KV", 1)]);
        let mut undo = storage::UndoLog::new();
        let n = parts * rows_per_partition;
        for i in 0..n {
            let p = db.partition_for_value(&Value::Int(i as i64));
            db.insert(
                p,
                0,
                vec![Value::Int(i as i64), Value::Int((i % 10) as i64), Value::Int(0)],
                &mut undo,
            )
            .unwrap();
        }
        db
    }

    /// `MultiGet` reads `ids[0..]`, then increments `VAL` on each, then
    /// commits; aborts instead if any id is missing. Query 0 = `GetKV`,
    /// query 1 = `BumpKV`.
    pub struct MultiGetProc {
        def: ProcDef,
    }

    impl MultiGetProc {
        pub fn new() -> Self {
            MultiGetProc {
                def: ProcDef {
                    name: "MultiGet".into(),
                    queries: vec![
                        QueryDef {
                            name: "GetKV".into(),
                            table: 0,
                            op: QueryOp::GetByKey { key_params: vec![0] },
                            hint: PartitionHint::Param(0),
                        },
                        QueryDef {
                            name: "BumpKV".into(),
                            table: 0,
                            op: QueryOp::UpdateByKey {
                                key_params: vec![0],
                                sets: vec![ColumnOp::Add { column: 2, param: 1 }],
                            },
                            hint: PartitionHint::Param(0),
                        },
                    ],
                    read_only: false,
                    can_abort: true,
                },
            }
        }
    }

    impl Procedure for MultiGetProc {
        fn def(&self) -> &ProcDef {
            &self.def
        }

        fn instantiate(&self, args: &[Value]) -> Box<dyn ProcInstance> {
            let ids: Vec<i64> = args[0]
                .as_array()
                .expect("arg 0 is id array")
                .iter()
                .map(|v| v.expect_int())
                .collect();
            Box::new(MultiGetInstance { ids, stage: 0 })
        }
    }

    struct MultiGetInstance {
        ids: Vec<i64>,
        stage: u8,
    }

    impl ProcInstance for MultiGetInstance {
        fn next(&mut self, results: Option<&[Vec<Row>]>) -> Step {
            match self.stage {
                0 => {
                    self.stage = 1;
                    Step::Queries(
                        self.ids
                            .iter()
                            .map(|&id| QueryInvocation::new(0, vec![Value::Int(id)]))
                            .collect(),
                    )
                }
                1 => {
                    let results = results.unwrap();
                    if results.iter().any(|r| r.is_empty()) {
                        return Step::Abort("missing id".into());
                    }
                    self.stage = 2;
                    Step::Queries(
                        self.ids
                            .iter()
                            .map(|&id| QueryInvocation::new(1, vec![Value::Int(id), Value::Int(1)]))
                            .collect(),
                    )
                }
                _ => Step::Commit,
            }
        }
    }

    /// Registry with just `MultiGet`.
    pub fn kv_registry() -> ProcedureRegistry {
        ProcedureRegistry::new(vec![Box::new(MultiGetProc::new())])
    }
}

#[cfg(test)]
mod tests {
    use super::testing::*;
    use super::*;

    #[test]
    fn registry_and_catalog_agree() {
        let reg = kv_registry();
        assert_eq!(reg.len(), 1);
        let cat = reg.catalog();
        assert_eq!(cat.proc(0).name, "MultiGet");
        assert_eq!(cat.proc(0).query_id("BumpKV"), Some(1));
    }

    #[test]
    fn state_machine_walkthrough() {
        let reg = kv_registry();
        let mut inst = reg.get(0).instantiate(&[Value::Array(vec![Value::Int(1), Value::Int(2)])]);
        let s0 = inst.next(None);
        match s0 {
            Step::Queries(qs) => assert_eq!(qs.len(), 2),
            _ => panic!("expected queries"),
        }
        // Fake non-empty results.
        let fake = vec![vec![vec![Value::Int(1)]], vec![vec![Value::Int(2)]]];
        let s1 = inst.next(Some(&fake));
        assert!(matches!(s1, Step::Queries(ref qs) if qs[0].query == 1));
        let s2 = inst.next(Some(&fake));
        assert_eq!(s2, Step::Commit);
    }

    #[test]
    fn abort_on_missing() {
        let reg = kv_registry();
        let mut inst = reg.get(0).instantiate(&[Value::Array(vec![Value::Int(1)])]);
        inst.next(None);
        let empty = vec![vec![]];
        assert!(matches!(inst.next(Some(&empty)), Step::Abort(_)));
    }
}
