//! Model-checked protocols of the live runtime (see DESIGN.md §"Concurrency
//! model & checking").
//!
//! Each protocol here is a *compact reimplementation* of the corresponding
//! `engine::runtime` mechanism over `checkers::sync`, small enough for the
//! checker to exhaust its interleavings at the stated bounds, faithful
//! enough that the line-level logic matches the production code
//! (`LockManager::acquire`/`release`, the `worker_loop` group-commit drain,
//! `Client::call`'s reply-sender handoff). Every model has a seeded-bug
//! twin proving the checker actually catches the failure mode the real
//! code's design prevents.

use checkers::sync::atomic::{AtomicU64, Ordering};
use checkers::sync::mpsc::{channel, Receiver, Sender};
use checkers::sync::{Arc, Condvar, Mutex};
use checkers::{explore, FailureKind, Options, Report};
use std::collections::VecDeque;

fn opts() -> Options {
    Options::default()
}

fn assert_pass(report: &Report, what: &str) {
    assert!(report.passed(), "{what} must verify: {report}");
    eprintln!("[model::{what}] {report}");
}

// ===========================================================================
// 1. Sharded lock manager: ticket FIFO + ascending-partition claim order
//    (mirrors LockManager::acquire/release in engine/src/runtime.rs)
// ===========================================================================

struct ShardQueue {
    busy: bool,
    waiters: VecDeque<u64>,
    /// Model-only audit: tickets in enqueue order. FIFO-fairness means the
    /// grant log below replays this exactly (a ticket can't be overtaken by
    /// one that arrived at the shard after it — note arrival order, not
    /// global ticket order: a multi-partition claim may reach a shard after
    /// a younger ticket that started there).
    arrived: Vec<u64>,
    /// Tickets in grant order.
    granted: Vec<u64>,
}

struct LockModel {
    next_ticket: AtomicU64,
    shards: Vec<(Mutex<ShardQueue>, Condvar)>,
}

impl LockModel {
    fn new(partitions: usize) -> Self {
        LockModel {
            next_ticket: AtomicU64::new(0),
            shards: (0..partitions)
                .map(|_| {
                    (
                        Mutex::new(ShardQueue {
                            busy: false,
                            waiters: VecDeque::new(),
                            arrived: Vec::new(),
                            granted: Vec::new(),
                        }),
                        Condvar::new(),
                    )
                })
                .collect(),
        }
    }

    /// `LockManager::acquire`, line for line: Relaxed global ticket, then
    /// each partition in ascending order; FIFO by ticket under the shard
    /// mutex. `descending` / `skip_fifo` / `notify_one` seed the bugs the
    /// real design excludes.
    fn acquire(&self, set: &[usize], descending: bool, skip_fifo: bool) -> u64 {
        let ticket = self.next_ticket.fetch_add(1, Ordering::Relaxed);
        let order: Vec<usize> =
            if descending { set.iter().rev().copied().collect() } else { set.to_vec() };
        for &p in &order {
            let (m, cv) = &self.shards[p];
            let mut st = m.lock().unwrap();
            st.waiters.push_back(ticket);
            st.arrived.push(ticket);
            if skip_fifo {
                // Seeded bug: wait only for the slot, not for FIFO turn.
                while st.busy {
                    st = cv.wait(st).unwrap();
                }
                let pos = st.waiters.iter().position(|&t| t == ticket).unwrap();
                st.waiters.remove(pos);
            } else {
                while st.busy || st.waiters.front() != Some(&ticket) {
                    st = cv.wait(st).unwrap();
                }
                st.waiters.pop_front();
            }
            st.busy = true;
            st.granted.push(ticket);
        }
        ticket
    }

    /// `LockManager::release`: free each slot, notify_all (or the seeded
    /// notify_one, which can land on a non-front waiter and strand the
    /// front).
    fn release(&self, set: &[usize], notify_one: bool) {
        for &p in set {
            let (m, cv) = &self.shards[p];
            let mut st = m.lock().unwrap();
            assert!(st.busy, "released a partition nobody holds");
            st.busy = false;
            let wake = !st.waiters.is_empty();
            drop(st);
            if wake {
                if notify_one {
                    cv.notify_one();
                } else {
                    cv.notify_all();
                }
            }
        }
    }
}

/// Three transactions over two partitions, lock sets {0,1} / {0} / {1}:
/// deadlock-freedom and per-partition FIFO-by-ticket must hold on every
/// interleaving.
fn lock_manager_scenario(
    sets: &'static [&'static [usize]],
    partitions: usize,
    descending_in_last: bool,
    skip_fifo: bool,
    notify_one: bool,
) -> impl Fn(&mut checkers::Model) {
    move |model| {
        let lm = Arc::new(LockModel::new(partitions));
        for (i, set) in sets.iter().enumerate() {
            let lm = lm.clone();
            let descending = descending_in_last && i == sets.len() - 1;
            model.thread(move || {
                let _ticket = lm.acquire(set, descending, skip_fifo);
                // Hold the set across one schedule point so conflicting
                // claims really overlap, as they do during execution.
                checkers::yield_now();
                lm.release(set, notify_one);
            });
        }
        let lm2 = lm.clone();
        model.after(move || {
            for (p, (m, _)) in lm2.shards.iter().enumerate() {
                let st = m.lock().unwrap();
                assert!(!st.busy, "partition {p} still held at quiescence");
                assert!(st.waiters.is_empty(), "stranded waiters at partition {p}");
                // FIFO-fairness: each partition serves its waiters in the
                // order they joined its queue.
                assert_eq!(st.granted, st.arrived, "partition {p} granted out of arrival order");
            }
        });
    }
}

const SETS_2P: &[&[usize]] = &[&[0, 1], &[0], &[1]];
const SETS_3P: &[&[usize]] = &[&[0, 1], &[1, 2], &[0, 2]];
/// Three transactions fighting over one partition: the only configuration
/// in which two waiters queue *simultaneously*, which is what the FIFO turn
/// check and the `notify_all` wakeup exist for.
const SETS_1P: &[&[usize]] = &[&[0], &[0], &[0]];

#[test]
fn lock_manager_fifo_and_deadlock_free_2p() {
    let r = explore(opts(), lock_manager_scenario(SETS_2P, 2, false, false, false));
    assert_pass(&r, "lock_manager_2p_x3");
}

#[test]
fn lock_manager_fifo_and_deadlock_free_3p_overlapping() {
    let r = explore(opts(), lock_manager_scenario(SETS_3P, 3, false, false, false));
    assert_pass(&r, "lock_manager_3p_x3");
}

#[test]
fn seeded_descending_claim_order_deadlocks() {
    // One transaction claiming {0,2} as 2-then-0 against {0,1} and {1,2}
    // ascending recreates the wait cycle the ascending rule excludes.
    let r = explore(opts(), lock_manager_scenario(SETS_3P, 3, true, false, false));
    let f = r.failure().expect("descending claim order must deadlock");
    assert_eq!(f.kind, FailureKind::Deadlock);
    eprintln!("[model::seeded_descending_deadlock] {r}");
}

#[test]
fn lock_manager_single_partition_contention_is_fifo() {
    let r = explore(opts(), lock_manager_scenario(SETS_1P, 1, false, false, false));
    assert_pass(&r, "lock_manager_1p_x3");
}

#[test]
fn seeded_fifo_skip_breaks_ticket_order() {
    // Waiting only for the slot (not the FIFO turn) lets whichever waiter
    // the wakeup reaches first overtake the queue front.
    let r = explore(opts(), lock_manager_scenario(SETS_1P, 1, false, true, false));
    let f = r.failure().expect("skipping the FIFO turn check must break arrival order");
    assert!(
        f.message.contains("granted out of arrival order") || f.kind == FailureKind::Deadlock,
        "unexpected failure: {} ({:?})",
        f.message,
        f.kind
    );
    eprintln!("[model::seeded_fifo_skip] {r}");
}

#[test]
fn seeded_notify_one_strands_the_front_waiter() {
    // notify_one can wake a non-front waiter, which re-checks its FIFO turn
    // and goes back to sleep with nobody left to wake the front: the exact
    // lost wakeup the notify_all comment in LockManager::release cites.
    let r = explore(opts(), lock_manager_scenario(SETS_1P, 1, false, false, true));
    let f = r.failure().expect("notify_one must strand a waiter");
    assert_eq!(f.kind, FailureKind::Deadlock);
    eprintln!("[model::seeded_notify_one] {r}");
}

// ===========================================================================
// 2. Worker group-commit drain (mirrors worker_loop's backlog drain: reads
//    acked immediately only until the group has drained a write; from then
//    on every ack waits for the group flush)
// ===========================================================================

enum DrainMsg {
    /// A durable write; `seq` is its 1-based position among writes.
    Write {
        seq: u64,
        ack: Sender<Ack>,
    },
    /// A read-only request.
    Read {
        ack: Sender<Ack>,
    },
    Shutdown,
}

struct Ack {
    /// Writes flushed when the ack was sent (read off the shared counter by
    /// the worker itself, under the ack channel's ordering).
    flushed_at_ack: u64,
    /// Writes drained before this request in its own group.
    writes_before: u64,
}

/// The worker side of `worker_loop`'s drain: one blocking recv opens a
/// group, try_recv extends it, the group flushes once at the end.
/// `seeded_no_group_guard` acks *every* read immediately — dropping the
/// `group_wrote` condition the real loop applies.
fn drain_worker(rx: &Receiver<DrainMsg>, flushed: &AtomicU64, seeded_no_group_guard: bool) {
    'outer: loop {
        let Ok(first) = rx.recv() else { break };
        let mut group = vec![first];
        while let Ok(m) = rx.try_recv() {
            group.push(m);
        }
        let mut group_wrote = false;
        let mut deferred: Vec<(u64, Sender<Ack>)> = Vec::new();
        let mut writes_in_group: Vec<u64> = Vec::new();
        let mut shutdown = false;
        for msg in group {
            match msg {
                DrainMsg::Write { seq, ack } => {
                    group_wrote = true;
                    writes_in_group.push(seq);
                    deferred.push((writes_in_group.len() as u64 - 1, ack));
                }
                DrainMsg::Read { ack } => {
                    let writes_before = writes_in_group.len() as u64;
                    if !group_wrote || seeded_no_group_guard {
                        // Read-only prefix (or the seeded bug): ack now,
                        // before any flush of this group.
                        let _ = ack.send(Ack {
                            flushed_at_ack: flushed.load(Ordering::Relaxed),
                            writes_before,
                        });
                    } else {
                        deferred.push((writes_before, ack));
                    }
                }
                DrainMsg::Shutdown => {
                    shutdown = true;
                }
            }
        }
        // Group commit: one flush covers every write drained in this run,
        // then the deferred acks go out.
        if !writes_in_group.is_empty() {
            flushed.fetch_add(writes_in_group.len() as u64, Ordering::Relaxed);
        }
        for (writes_before, ack) in deferred {
            let _ =
                ack.send(Ack { flushed_at_ack: flushed.load(Ordering::Relaxed), writes_before });
        }
        if shutdown {
            break 'outer;
        }
    }
}

fn group_commit_scenario(seeded: bool) -> impl Fn(&mut checkers::Model) {
    move |model| {
        let (tx, rx) = channel::<DrainMsg>();
        let flushed = Arc::new(AtomicU64::new(0));
        let fw = flushed.clone();
        model.thread(move || drain_worker(&rx, &fw, seeded));
        model.thread(move || {
            // One client, W then R then W: depending on how the drain
            // groups them, R is either a read-only prefix of its group
            // (ackable pre-flush) or rides behind W1's flush.
            let (a1, r1) = channel::<Ack>();
            let (a2, r2) = channel::<Ack>();
            let (a3, r3) = channel::<Ack>();
            tx.send(DrainMsg::Write { seq: 1, ack: a1 }).unwrap();
            tx.send(DrainMsg::Read { ack: a2 }).unwrap();
            tx.send(DrainMsg::Write { seq: 2, ack: a3 }).unwrap();
            tx.send(DrainMsg::Shutdown).unwrap();
            // Every write ack must follow its group's flush.
            let w1 = r1.recv().unwrap();
            assert!(w1.flushed_at_ack >= 1, "write 1 acked before its flush");
            // The invariant under test: an ack never precedes a flush the
            // request's position in its group requires. A read drained
            // after a write in the same group must see that write flushed.
            let rd = r2.recv().unwrap();
            assert!(
                rd.flushed_at_ack >= rd.writes_before,
                "read acked with {} writes drained before it in-group but only {} flushed",
                rd.writes_before,
                rd.flushed_at_ack
            );
            let w2 = r3.recv().unwrap();
            assert!(w2.flushed_at_ack >= 2, "write 2 acked before its flush");
        });
    }
}

#[test]
fn group_commit_read_prefix_acks_never_precede_required_flush() {
    let r = explore(opts(), group_commit_scenario(false));
    assert_pass(&r, "group_commit_drain");
}

#[test]
fn seeded_unconditional_read_ack_is_caught() {
    let r = explore(opts(), group_commit_scenario(true));
    let f =
        r.failure().expect("acking reads past a drained write must violate the flush invariant");
    assert_eq!(f.kind, FailureKind::Panic);
    assert!(f.message.contains("read acked with"), "message: {}", f.message);
    eprintln!("[model::seeded_read_ack] {r}");
}

// ===========================================================================
// 3. Shutdown vs. fast-path call race (mirrors Client::call sending its
//    reply Sender inside the worker message, and Shutdown dropping the
//    backlog)
// ===========================================================================

enum CallMsg {
    Call { reply: Sender<u64> },
    Shutdown,
}

/// `worker_loop`'s shutdown contract: on `Shutdown`, stop consuming; the
/// receiver drop clears the backlog, which drops any queued reply senders,
/// which is what disconnects in-flight callers.
fn call_worker(rx: Receiver<CallMsg>) {
    while let Ok(msg) = rx.recv() {
        match msg {
            CallMsg::Call { reply } => {
                let _ = reply.send(7);
            }
            CallMsg::Shutdown => break,
        }
    }
    // rx dropped here: queued Call messages (and their reply senders) die.
}

fn shutdown_race_scenario(seeded_keep_reply_clone: bool) -> impl Fn(&mut checkers::Model) {
    move |model| {
        let (tx, rx) = channel::<CallMsg>();
        let tx_shutdown = tx.clone();
        model.thread(move || call_worker(rx));
        model.thread(move || {
            let (reply_tx, reply_rx) = channel::<u64>();
            // Seeded bug: holding a clone of the reply sender means the
            // reply channel can never disconnect, so a dropped call hangs
            // the client forever instead of erroring.
            let kept = seeded_keep_reply_clone.then(|| reply_tx.clone());
            if tx.send(CallMsg::Call { reply: reply_tx }).is_ok() {
                // No deadlock, no lost reply: either the worker answered,
                // or the shutdown dropped our call and the disconnect wakes
                // us — hanging here is the bug the checker must rule out.
                // Err means the call raced shutdown: a clean disconnect.
                if let Ok(v) = reply_rx.recv() {
                    assert_eq!(v, 7);
                }
            }
            drop(kept);
        });
        model.thread(move || {
            let _ = tx_shutdown.send(CallMsg::Shutdown);
        });
    }
}

#[test]
fn shutdown_race_never_hangs_or_loses_a_reply() {
    let r = explore(opts(), shutdown_race_scenario(false));
    assert_pass(&r, "shutdown_fast_path_race");
}

#[test]
fn seeded_reply_sender_leak_hangs_the_client() {
    let r = explore(opts(), shutdown_race_scenario(true));
    let f = r.failure().expect("a leaked reply sender must hang the client");
    assert_eq!(f.kind, FailureKind::Deadlock);
    eprintln!("[model::seeded_reply_leak] {r}");
}

// ===========================================================================
// Replay: a failing schedule recorded from one seeded model reproduces
// identically when fed back (the engine-side twin of the checker selftest).
// ===========================================================================

#[test]
fn seeded_deadlock_replays_deterministically() {
    let r = explore(opts(), lock_manager_scenario(SETS_3P, 3, true, false, false));
    let f = r.failure().expect("seeded deadlock");
    let replayed = checkers::replay(
        opts(),
        lock_manager_scenario(SETS_3P, 3, true, false, false),
        &f.trace.picks,
    );
    let rf = replayed.failure().expect("replay must reproduce the deadlock");
    assert_eq!(rf.kind, f.kind);
    assert_eq!(rf.message, f.message);
    assert_eq!(rf.trace.steps, f.trace.steps);
}
