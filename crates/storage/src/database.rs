//! The partitioned database: all table slices across all partitions.

use crate::schema::Schema;
use crate::table::{Row, Table};
use crate::undo::{UndoLog, UndoRecord};
use common::{Error, FxHashMap, PartitionId, Result, Value};

/// A shared-nothing, horizontally partitioned in-memory database.
///
/// Layout is `partitions[partition][table]`. Every mutation takes an
/// [`UndoLog`] so the caller (the execution engine) can roll back aborts;
/// loaders pass a throwaway log.
pub struct Database {
    schemas: Vec<Schema>,
    by_name: FxHashMap<String, usize>,
    partitions: Vec<Vec<Table>>,
    num_partitions: u32,
}

impl Database {
    /// Creates an empty database with the given schemas and partition count.
    /// `secondary_indexes` lists `(table_name, column)` pairs to index.
    pub fn new(schemas: Vec<Schema>, num_partitions: u32, secondary_indexes: &[(&str, usize)]) -> Self {
        assert!((1..=common::PartitionSet::MAX_PARTITIONS).contains(&num_partitions));
        let by_name: FxHashMap<String, usize> = schemas
            .iter()
            .enumerate()
            .map(|(i, s)| (s.name.clone(), i))
            .collect();
        assert_eq!(by_name.len(), schemas.len(), "duplicate table names");
        let mut partitions = Vec::with_capacity(num_partitions as usize);
        for _ in 0..num_partitions {
            let mut tables: Vec<Table> = (0..schemas.len()).map(|_| Table::new()).collect();
            for (name, col) in secondary_indexes {
                let id = by_name[*name];
                tables[id].add_secondary_index(*col);
            }
            partitions.push(tables);
        }
        Database { schemas, by_name, partitions, num_partitions }
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> u32 {
        self.num_partitions
    }

    /// Table id for `name`.
    pub fn table_id(&self, name: &str) -> Result<usize> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| Error::NotFound(format!("table {name}")))
    }

    /// Schema of table `id`.
    pub fn schema(&self, id: usize) -> &Schema {
        &self.schemas[id]
    }

    /// All schemas.
    pub fn schemas(&self) -> &[Schema] {
        &self.schemas
    }

    /// Maps a partitioning-column value to its home partition.
    ///
    /// Integers map by modulo so that (as in the paper's TPC-C setup, §2.1)
    /// consecutive warehouse ids spread round-robin over partitions; other
    /// types map by stable hash. This is the deterministic stand-in for
    /// H-Store's hash partitioning.
    pub fn partition_for_value(&self, v: &Value) -> PartitionId {
        match v {
            Value::Int(i) => (i.unsigned_abs() % u64::from(self.num_partitions)) as PartitionId,
            other => (other.stable_hash() % u64::from(self.num_partitions)) as PartitionId,
        }
    }

    /// Raw access to one table slice (loaders, assertions).
    pub fn table(&self, partition: PartitionId, table: usize) -> &Table {
        &self.partitions[partition as usize][table]
    }

    /// Inserts `row` into `table` at `partition`, logging undo.
    pub fn insert(
        &mut self,
        partition: PartitionId,
        table: usize,
        row: Row,
        undo: &mut UndoLog,
    ) -> Result<()> {
        let schema = &self.schemas[table];
        let key = self.partitions[partition as usize][table].insert(schema, row)?;
        undo.record(UndoRecord::Inserted { partition, table, key });
        Ok(())
    }

    /// Point read by primary key.
    pub fn get(&self, partition: PartitionId, table: usize, key: &[Value]) -> Option<&Row> {
        self.partitions[partition as usize][table].get(key)
    }

    /// In-place update by primary key, logging the pre-image.
    pub fn update(
        &mut self,
        partition: PartitionId,
        table: usize,
        key: &[Value],
        f: impl FnOnce(&mut Row),
        undo: &mut UndoLog,
    ) -> Result<()> {
        let before = self.partitions[partition as usize][table].update(key, f)?;
        undo.record(UndoRecord::Updated {
            partition,
            table,
            key: key.to_vec(),
            before,
        });
        Ok(())
    }

    /// Delete by primary key, logging the pre-image.
    pub fn delete(
        &mut self,
        partition: PartitionId,
        table: usize,
        key: &[Value],
        undo: &mut UndoLog,
    ) -> Result<Row> {
        let before = self.partitions[partition as usize][table]
            .delete(key)
            .ok_or_else(|| Error::NotFound(format!("key {key:?}")))?;
        undo.record(UndoRecord::Deleted {
            partition,
            table,
            key: key.to_vec(),
            before: before.clone(),
        });
        Ok(before)
    }

    /// Equality lookup on an arbitrary column within one partition.
    pub fn lookup_by(
        &self,
        partition: PartitionId,
        table: usize,
        column: usize,
        value: &Value,
    ) -> Vec<Row> {
        self.partitions[partition as usize][table]
            .lookup_by(column, value)
            .into_iter()
            .cloned()
            .collect()
    }

    /// Rolls back every change recorded in `undo`, in reverse order.
    pub fn rollback(&mut self, undo: &mut UndoLog) -> Result<()> {
        if !undo.can_rollback() {
            return Err(Error::UnrecoverableAbort { txn: 0 });
        }
        let records: Vec<UndoRecord> = undo.drain_for_rollback().collect();
        for rec in records {
            match rec {
                UndoRecord::Inserted { partition, table, key } => {
                    self.partitions[partition as usize][table].delete(&key);
                }
                UndoRecord::Updated { partition, table, key, before }
                | UndoRecord::Deleted { partition, table, key, before } => {
                    self.partitions[partition as usize][table].put(key, before);
                }
            }
        }
        Ok(())
    }

    /// Total row count of one table across all partitions.
    pub fn total_rows(&self, table: usize) -> usize {
        self.partitions.iter().map(|p| p[table].len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Database {
        let schemas = vec![
            Schema::new("A", &["ID", "V"], &[0], Some(0)),
            Schema::new("B", &["ID", "REF", "V"], &[0], Some(1)),
        ];
        Database::new(schemas, 4, &[("B", 1)])
    }

    #[test]
    fn partition_for_int_is_modulo() {
        let d = db();
        assert_eq!(d.partition_for_value(&Value::Int(0)), 0);
        assert_eq!(d.partition_for_value(&Value::Int(5)), 1);
        assert_eq!(d.partition_for_value(&Value::Int(7)), 3);
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut d = db();
        let mut undo = UndoLog::new();
        let t = d.table_id("A").unwrap();
        d.insert(0, t, vec![Value::Int(1), Value::Int(10)], &mut undo)
            .unwrap();
        assert_eq!(d.get(0, t, &[Value::Int(1)]).unwrap()[1], Value::Int(10));
        assert!(d.get(1, t, &[Value::Int(1)]).is_none(), "other partition empty");
    }

    #[test]
    fn rollback_restores_everything() {
        let mut d = db();
        let t = d.table_id("A").unwrap();
        let mut setup = UndoLog::new();
        d.insert(0, t, vec![Value::Int(1), Value::Int(10)], &mut setup)
            .unwrap();
        d.insert(0, t, vec![Value::Int(2), Value::Int(20)], &mut setup)
            .unwrap();

        let mut undo = UndoLog::new();
        d.insert(0, t, vec![Value::Int(3), Value::Int(30)], &mut undo)
            .unwrap();
        d.update(0, t, &[Value::Int(1)], |r| r[1] = Value::Int(99), &mut undo)
            .unwrap();
        d.delete(0, t, &[Value::Int(2)], &mut undo).unwrap();

        d.rollback(&mut undo).unwrap();
        assert!(d.get(0, t, &[Value::Int(3)]).is_none());
        assert_eq!(d.get(0, t, &[Value::Int(1)]).unwrap()[1], Value::Int(10));
        assert_eq!(d.get(0, t, &[Value::Int(2)]).unwrap()[1], Value::Int(20));
    }

    #[test]
    fn rollback_without_undo_is_fatal() {
        let mut d = db();
        let t = d.table_id("A").unwrap();
        let mut undo = UndoLog::disabled();
        d.insert(0, t, vec![Value::Int(1), Value::Int(10)], &mut undo)
            .unwrap();
        assert!(matches!(
            d.rollback(&mut undo),
            Err(Error::UnrecoverableAbort { .. })
        ));
    }

    #[test]
    fn secondary_lookup() {
        let mut d = db();
        let t = d.table_id("B").unwrap();
        let mut undo = UndoLog::new();
        for i in 0..6i64 {
            d.insert(
                (i % 4) as u32,
                t,
                vec![Value::Int(i), Value::Int(i % 2), Value::Int(i)],
                &mut undo,
            )
            .unwrap();
        }
        // partition 0 holds ids 0 and 4, both with REF = 0.
        let rows = d.lookup_by(0, t, 1, &Value::Int(0));
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn total_rows_sums_partitions() {
        let mut d = db();
        let t = d.table_id("A").unwrap();
        let mut undo = UndoLog::new();
        for i in 0..10i64 {
            let p = d.partition_for_value(&Value::Int(i));
            d.insert(p, t, vec![Value::Int(i), Value::Int(0)], &mut undo)
                .unwrap();
        }
        assert_eq!(d.total_rows(t), 10);
    }
}
