//! The partitioned database: all table slices across all partitions.
//!
//! Physically the database is a set of [`Shard`]s — one per partition, each
//! owning that partition's slice of every table. The [`Database`] facade
//! keeps the whole-cluster API the simulator and loaders use; the live
//! runtime calls [`Database::into_shards`] to hand each worker thread
//! exclusive ownership of its shard (shards are `Send`), and
//! [`Database::from_shards`] to reassemble the cluster afterwards.

use crate::schema::Schema;
use crate::table::{Row, Table};
use crate::undo::{UndoLog, UndoRecord};
use common::{Error, FxHashMap, PartitionId, Result, Value};
use std::sync::Arc;

/// Cluster-wide immutable metadata shared by every shard.
#[derive(Debug)]
pub struct DbMeta {
    schemas: Vec<Schema>,
    by_name: FxHashMap<String, usize>,
    num_partitions: u32,
}

impl DbMeta {
    /// Number of partitions in the cluster.
    pub fn num_partitions(&self) -> u32 {
        self.num_partitions
    }

    /// Table id for `name`.
    pub fn table_id(&self, name: &str) -> Result<usize> {
        self.by_name.get(name).copied().ok_or_else(|| Error::NotFound(format!("table {name}")))
    }

    /// Schema of table `id`.
    pub fn schema(&self, id: usize) -> &Schema {
        &self.schemas[id]
    }

    /// All schemas.
    pub fn schemas(&self) -> &[Schema] {
        &self.schemas
    }

    /// Maps a partitioning-column value to its home partition — the shared
    /// routing rule [`Value::home_partition`], the deterministic stand-in
    /// for H-Store's hash partitioning.
    pub fn partition_for_value(&self, v: &Value) -> PartitionId {
        v.home_partition(self.num_partitions)
    }
}

/// One partition's horizontal slice of every table, owned by exactly one
/// execution engine at a time. `Send` so the live runtime can move each
/// shard onto its worker thread (paper §2, Fig. 1: single-threaded engines
/// with exclusive data access).
#[derive(Debug)]
pub struct Shard {
    partition: PartitionId,
    tables: Vec<Table>,
    meta: Arc<DbMeta>,
}

impl Shard {
    /// The partition this shard stores.
    pub fn partition(&self) -> PartitionId {
        self.partition
    }

    /// Shared cluster metadata (schemas, routing).
    pub fn meta(&self) -> &Arc<DbMeta> {
        &self.meta
    }

    /// Raw access to one table slice.
    pub fn table(&self, table: usize) -> &Table {
        &self.tables[table]
    }

    /// Inserts `row` into `table`, logging undo.
    pub fn insert(&mut self, table: usize, row: Row, undo: &mut UndoLog) -> Result<()> {
        let schema = &self.meta.schemas[table];
        let key = self.tables[table].insert(schema, row)?;
        undo.record(UndoRecord::Inserted { partition: self.partition, table, key });
        Ok(())
    }

    /// Point read by primary key.
    pub fn get(&self, table: usize, key: &[Value]) -> Option<&Row> {
        self.tables[table].get(key)
    }

    /// In-place update by primary key, logging the pre-image.
    pub fn update(
        &mut self,
        table: usize,
        key: &[Value],
        f: impl FnOnce(&mut Row),
        undo: &mut UndoLog,
    ) -> Result<()> {
        let before = self.tables[table].update(key, f)?;
        undo.record(UndoRecord::Updated {
            partition: self.partition,
            table,
            key: key.to_vec(),
            before,
        });
        Ok(())
    }

    /// Delete by primary key, logging the pre-image.
    pub fn delete(&mut self, table: usize, key: &[Value], undo: &mut UndoLog) -> Result<Row> {
        let before = self.tables[table]
            .delete(key)
            .ok_or_else(|| Error::NotFound(format!("key {key:?}")))?;
        undo.record(UndoRecord::Deleted {
            partition: self.partition,
            table,
            key: key.to_vec(),
            before: before.clone(),
        });
        Ok(before)
    }

    /// Equality lookup on an arbitrary column.
    pub fn lookup_by(&self, table: usize, column: usize, value: &Value) -> Vec<Row> {
        self.tables[table].lookup_by(column, value).into_iter().cloned().collect()
    }

    /// Rolls back every change recorded in `undo`, in reverse order. Every
    /// record must belong to this shard's partition — the live runtime keeps
    /// one undo log per participating shard.
    pub fn rollback(&mut self, undo: &mut UndoLog) -> Result<()> {
        if !undo.can_rollback() {
            return Err(Error::UnrecoverableAbort { txn: 0 });
        }
        let records: Vec<UndoRecord> = undo.drain_for_rollback().collect();
        for rec in records {
            apply_undo(&mut self.tables, self.partition, rec);
        }
        Ok(())
    }

    /// Every table's rows, cloned in sorted order: the shard's snapshot
    /// payload, deterministic for a given shard state.
    pub fn snapshot_rows(&self) -> Vec<Vec<Row>> {
        self.tables.iter().map(Table::sorted_rows).collect()
    }

    /// Replaces every table's contents with the given rows, rebuilding
    /// secondary indexes (recovery: load a snapshot image under this
    /// shard's existing catalog).
    pub fn restore_tables(&mut self, tables: Vec<Vec<Row>>) {
        assert_eq!(tables.len(), self.tables.len(), "snapshot table count mismatch");
        for (id, rows) in tables.into_iter().enumerate() {
            self.tables[id].restore(&self.meta.schemas[id], rows);
        }
    }

    /// Cascading rollback of a whole speculation window (live OP4): unwinds
    /// the stack LIFO — every speculatively-committed transaction newest-
    /// first, then the early-prepared transaction's own fragment undo —
    /// restoring the shard byte-for-byte to its state before the distributed
    /// transaction's first fragment ran here. Returns the number of
    /// speculative commits that were cascaded away.
    pub fn rollback_speculation(&mut self, stack: crate::SpeculationStack) -> Result<u64> {
        let (mut base, mut committed) = stack.into_parts();
        let cascaded = committed.len() as u64;
        while let Some(mut undo) = committed.pop() {
            self.rollback(&mut undo)?;
        }
        self.rollback(&mut base)?;
        Ok(cascaded)
    }
}

fn apply_undo(tables: &mut [Table], shard_partition: PartitionId, rec: UndoRecord) {
    match rec {
        UndoRecord::Inserted { partition, table, key } => {
            debug_assert_eq!(partition, shard_partition, "undo record crossed shards");
            tables[table].delete(&key);
        }
        UndoRecord::Updated { partition, table, key, before }
        | UndoRecord::Deleted { partition, table, key, before } => {
            debug_assert_eq!(partition, shard_partition, "undo record crossed shards");
            tables[table].put(key, before);
        }
    }
}

/// A shared-nothing, horizontally partitioned in-memory database.
///
/// Layout is `shards[partition].tables[table]`. Every mutation takes an
/// [`UndoLog`] so the caller (the execution engine) can roll back aborts;
/// loaders pass a throwaway log.
pub struct Database {
    meta: Arc<DbMeta>,
    shards: Vec<Shard>,
}

impl Database {
    /// Creates an empty database with the given schemas and partition count.
    /// `secondary_indexes` lists `(table_name, column)` pairs to index.
    pub fn new(
        schemas: Vec<Schema>,
        num_partitions: u32,
        secondary_indexes: &[(&str, usize)],
    ) -> Self {
        assert!((1..=common::PartitionSet::MAX_PARTITIONS).contains(&num_partitions));
        let by_name: FxHashMap<String, usize> =
            schemas.iter().enumerate().map(|(i, s)| (s.name.clone(), i)).collect();
        assert_eq!(by_name.len(), schemas.len(), "duplicate table names");
        let meta = Arc::new(DbMeta { schemas, by_name, num_partitions });
        let mut shards = Vec::with_capacity(num_partitions as usize);
        for p in 0..num_partitions {
            let mut tables: Vec<Table> = (0..meta.schemas.len()).map(|_| Table::new()).collect();
            for (name, col) in secondary_indexes {
                let id = meta.by_name[*name];
                tables[id].add_secondary_index(*col);
            }
            shards.push(Shard { partition: p, tables, meta: Arc::clone(&meta) });
        }
        Database { meta, shards }
    }

    /// Splits the database into its per-partition shards (live runtime:
    /// one worker thread takes ownership of each).
    pub fn into_shards(self) -> Vec<Shard> {
        self.shards
    }

    /// Reassembles a database from the shards of one cluster. Shards may
    /// arrive in any order; they must form exactly the partitions
    /// `0..num_partitions` of the same database.
    pub fn from_shards(mut shards: Vec<Shard>) -> Self {
        assert!(!shards.is_empty(), "no shards");
        shards.sort_by_key(Shard::partition);
        let meta = Arc::clone(&shards[0].meta);
        assert_eq!(shards.len() as u32, meta.num_partitions, "missing shards");
        for (p, s) in shards.iter().enumerate() {
            assert_eq!(s.partition, p as PartitionId, "duplicate or foreign shard");
            assert!(Arc::ptr_eq(&s.meta, &meta), "shards from different databases");
        }
        Database { meta, shards }
    }

    /// Shared cluster metadata (schemas, partition routing).
    pub fn meta(&self) -> &Arc<DbMeta> {
        &self.meta
    }

    /// Borrow of one shard (assertions, diagnostics).
    pub fn shard(&self, partition: PartitionId) -> &Shard {
        &self.shards[partition as usize]
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> u32 {
        self.meta.num_partitions
    }

    /// Table id for `name`.
    pub fn table_id(&self, name: &str) -> Result<usize> {
        self.meta.table_id(name)
    }

    /// Schema of table `id`.
    pub fn schema(&self, id: usize) -> &Schema {
        self.meta.schema(id)
    }

    /// All schemas.
    pub fn schemas(&self) -> &[Schema] {
        self.meta.schemas()
    }

    /// Maps a partitioning-column value to its home partition (see
    /// [`DbMeta::partition_for_value`]).
    pub fn partition_for_value(&self, v: &Value) -> PartitionId {
        self.meta.partition_for_value(v)
    }

    /// Raw access to one table slice (loaders, assertions).
    pub fn table(&self, partition: PartitionId, table: usize) -> &Table {
        self.shards[partition as usize].table(table)
    }

    /// Inserts `row` into `table` at `partition`, logging undo.
    pub fn insert(
        &mut self,
        partition: PartitionId,
        table: usize,
        row: Row,
        undo: &mut UndoLog,
    ) -> Result<()> {
        self.shards[partition as usize].insert(table, row, undo)
    }

    /// Point read by primary key.
    pub fn get(&self, partition: PartitionId, table: usize, key: &[Value]) -> Option<&Row> {
        self.shards[partition as usize].get(table, key)
    }

    /// In-place update by primary key, logging the pre-image.
    pub fn update(
        &mut self,
        partition: PartitionId,
        table: usize,
        key: &[Value],
        f: impl FnOnce(&mut Row),
        undo: &mut UndoLog,
    ) -> Result<()> {
        self.shards[partition as usize].update(table, key, f, undo)
    }

    /// Delete by primary key, logging the pre-image.
    pub fn delete(
        &mut self,
        partition: PartitionId,
        table: usize,
        key: &[Value],
        undo: &mut UndoLog,
    ) -> Result<Row> {
        self.shards[partition as usize].delete(table, key, undo)
    }

    /// Equality lookup on an arbitrary column within one partition.
    pub fn lookup_by(
        &self,
        partition: PartitionId,
        table: usize,
        column: usize,
        value: &Value,
    ) -> Vec<Row> {
        self.shards[partition as usize].lookup_by(table, column, value)
    }

    /// Rolls back every change recorded in `undo`, in reverse order. Unlike
    /// [`Shard::rollback`] the records may span partitions.
    pub fn rollback(&mut self, undo: &mut UndoLog) -> Result<()> {
        if !undo.can_rollback() {
            return Err(Error::UnrecoverableAbort { txn: 0 });
        }
        let records: Vec<UndoRecord> = undo.drain_for_rollback().collect();
        for rec in records {
            let p = match &rec {
                UndoRecord::Inserted { partition, .. }
                | UndoRecord::Updated { partition, .. }
                | UndoRecord::Deleted { partition, .. } => *partition,
            };
            let shard = &mut self.shards[p as usize];
            apply_undo(&mut shard.tables, p, rec);
        }
        Ok(())
    }

    /// Total row count of one table across all partitions.
    pub fn total_rows(&self, table: usize) -> usize {
        self.shards.iter().map(|s| s.tables[table].len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Database {
        let schemas = vec![
            Schema::new("A", &["ID", "V"], &[0], Some(0)),
            Schema::new("B", &["ID", "REF", "V"], &[0], Some(1)),
        ];
        Database::new(schemas, 4, &[("B", 1)])
    }

    #[test]
    fn partition_for_int_is_modulo() {
        let d = db();
        assert_eq!(d.partition_for_value(&Value::Int(0)), 0);
        assert_eq!(d.partition_for_value(&Value::Int(5)), 1);
        assert_eq!(d.partition_for_value(&Value::Int(7)), 3);
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut d = db();
        let mut undo = UndoLog::new();
        let t = d.table_id("A").unwrap();
        d.insert(0, t, vec![Value::Int(1), Value::Int(10)], &mut undo).unwrap();
        assert_eq!(d.get(0, t, &[Value::Int(1)]).unwrap()[1], Value::Int(10));
        assert!(d.get(1, t, &[Value::Int(1)]).is_none(), "other partition empty");
    }

    #[test]
    fn rollback_restores_everything() {
        let mut d = db();
        let t = d.table_id("A").unwrap();
        let mut setup = UndoLog::new();
        d.insert(0, t, vec![Value::Int(1), Value::Int(10)], &mut setup).unwrap();
        d.insert(0, t, vec![Value::Int(2), Value::Int(20)], &mut setup).unwrap();

        let mut undo = UndoLog::new();
        d.insert(0, t, vec![Value::Int(3), Value::Int(30)], &mut undo).unwrap();
        d.update(0, t, &[Value::Int(1)], |r| r[1] = Value::Int(99), &mut undo).unwrap();
        d.delete(0, t, &[Value::Int(2)], &mut undo).unwrap();

        d.rollback(&mut undo).unwrap();
        assert!(d.get(0, t, &[Value::Int(3)]).is_none());
        assert_eq!(d.get(0, t, &[Value::Int(1)]).unwrap()[1], Value::Int(10));
        assert_eq!(d.get(0, t, &[Value::Int(2)]).unwrap()[1], Value::Int(20));
    }

    #[test]
    fn rollback_without_undo_is_fatal() {
        let mut d = db();
        let t = d.table_id("A").unwrap();
        let mut undo = UndoLog::disabled();
        d.insert(0, t, vec![Value::Int(1), Value::Int(10)], &mut undo).unwrap();
        assert!(matches!(d.rollback(&mut undo), Err(Error::UnrecoverableAbort { .. })));
    }

    #[test]
    fn secondary_lookup() {
        let mut d = db();
        let t = d.table_id("B").unwrap();
        let mut undo = UndoLog::new();
        for i in 0..6i64 {
            d.insert(
                (i % 4) as u32,
                t,
                vec![Value::Int(i), Value::Int(i % 2), Value::Int(i)],
                &mut undo,
            )
            .unwrap();
        }
        // partition 0 holds ids 0 and 4, both with REF = 0.
        let rows = d.lookup_by(0, t, 1, &Value::Int(0));
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn total_rows_sums_partitions() {
        let mut d = db();
        let t = d.table_id("A").unwrap();
        let mut undo = UndoLog::new();
        for i in 0..10i64 {
            let p = d.partition_for_value(&Value::Int(i));
            d.insert(p, t, vec![Value::Int(i), Value::Int(0)], &mut undo).unwrap();
        }
        assert_eq!(d.total_rows(t), 10);
    }

    #[test]
    fn shards_split_and_reassemble() {
        let mut d = db();
        let t = d.table_id("A").unwrap();
        let mut undo = UndoLog::new();
        for i in 0..8i64 {
            let p = d.partition_for_value(&Value::Int(i));
            d.insert(p, t, vec![Value::Int(i), Value::Int(i)], &mut undo).unwrap();
        }
        let mut shards = d.into_shards();
        assert_eq!(shards.len(), 4);
        // Shards are independently ownable: mutate one in isolation.
        let mut frag_undo = UndoLog::new();
        shards[2].update(t, &[Value::Int(2)], |r| r[1] = Value::Int(77), &mut frag_undo).unwrap();
        // Out-of-order reassembly is fine.
        shards.reverse();
        let d = Database::from_shards(shards);
        assert_eq!(d.get(2, t, &[Value::Int(2)]).unwrap()[1], Value::Int(77));
        assert_eq!(d.total_rows(t), 8);
    }

    #[test]
    fn shard_rollback_is_local() {
        let mut d = db();
        let t = d.table_id("A").unwrap();
        let mut undo = UndoLog::new();
        d.insert(1, t, vec![Value::Int(1), Value::Int(10)], &mut undo).unwrap();
        let mut shards = d.into_shards();
        let mut frag = UndoLog::new();
        shards[1].update(t, &[Value::Int(1)], |r| r[1] = Value::Int(0), &mut frag).unwrap();
        shards[1].rollback(&mut frag).unwrap();
        let d = Database::from_shards(shards);
        assert_eq!(d.get(1, t, &[Value::Int(1)]).unwrap()[1], Value::Int(10));
    }

    #[test]
    fn shards_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Shard>();
    }

    #[test]
    fn speculation_cascade_restores_pre_window_state() {
        let mut d = db();
        let t = d.table_id("A").unwrap();
        let mut setup = UndoLog::new();
        for i in 0..4i64 {
            d.insert(0, t, vec![Value::Int(i * 4), Value::Int(i)], &mut setup).unwrap();
        }
        let mut shards = d.into_shards();
        let shard = &mut shards[0];
        let before: Vec<(Vec<Value>, Row)> =
            shard.table(t).iter().map(|(k, r)| (k.clone(), r.clone())).collect();

        // The distributed transaction's fragment: update + insert.
        let mut frag = UndoLog::new();
        shard.update(t, &[Value::Int(0)], |r| r[1] = Value::Int(99), &mut frag).unwrap();
        shard.insert(t, vec![Value::Int(100), Value::Int(7)], &mut frag).unwrap();
        let mut stack = crate::SpeculationStack::new(frag);

        // Two speculative transactions commit on top of it, the second
        // overwriting rows the first (and the base) touched.
        for v in [5i64, 6] {
            let mut undo = UndoLog::new();
            shard.update(t, &[Value::Int(0)], |r| r[1] = Value::Int(v), &mut undo).unwrap();
            shard.update(t, &[Value::Int(100)], |r| r[1] = Value::Int(v), &mut undo).unwrap();
            shard.delete(t, &[Value::Int(4 * v - 12)], &mut undo).ok();
            stack.push_commit(undo);
        }
        assert_eq!(stack.depth(), 2);

        let cascaded = shard.rollback_speculation(stack).unwrap();
        assert_eq!(cascaded, 2);
        let after: Vec<(Vec<Value>, Row)> =
            shard.table(t).iter().map(|(k, r)| (k.clone(), r.clone())).collect();
        let (mut b, mut a) = (before, after);
        b.sort();
        a.sort();
        assert_eq!(a, b, "cascade must restore the shard byte-for-byte");
    }
}
