//! Transient undo logging (paper §2, OP3).
//!
//! Main-memory DBMSs need undo information only to roll back an aborting
//! transaction — not for recovery — so the log lives in memory and is
//! discarded at commit. Maintaining it costs CPU per write; OP3 lets the
//! engine skip it for transactions predicted never to abort, at the price
//! that an unexpected abort becomes unrecoverable.

use crate::table::{Key, Row};
use common::PartitionId;

/// One logical undo action, pushed before the corresponding forward change.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UndoRecord {
    /// A row was inserted; undo removes it.
    Inserted { partition: PartitionId, table: usize, key: Key },
    /// A row was updated; undo restores the pre-image.
    Updated { partition: PartitionId, table: usize, key: Key, before: Row },
    /// A row was deleted; undo re-inserts the pre-image.
    Deleted { partition: PartitionId, table: usize, key: Key, before: Row },
}

/// A per-transaction undo buffer.
///
/// `enabled == false` models OP3: writes are performed without logging and
/// [`UndoLog::record`] becomes a no-op. The engine checks `is_enabled` when a
/// transaction aborts and escalates to a fatal error if work was done without
/// undo information.
#[derive(Debug)]
pub struct UndoLog {
    records: Vec<UndoRecord>,
    enabled: bool,
    /// Count of write operations applied while logging was disabled.
    unlogged_writes: u64,
}

impl Default for UndoLog {
    fn default() -> Self {
        UndoLog::new()
    }
}

impl UndoLog {
    /// A fresh, enabled log.
    pub fn new() -> Self {
        UndoLog { records: Vec::new(), enabled: true, unlogged_writes: 0 }
    }

    /// A log that starts disabled (initial OP3 decision).
    pub fn disabled() -> Self {
        UndoLog { records: Vec::new(), enabled: false, unlogged_writes: 0 }
    }

    /// Disables logging from this point on (runtime OP3 update, §4.4).
    pub fn disable(&mut self) {
        self.enabled = false;
    }

    /// Whether logging is currently enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Number of retained undo records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if no undo records are retained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Write operations performed while logging was off. If this is nonzero
    /// at abort time the transaction is unrecoverable.
    pub fn unlogged_writes(&self) -> u64 {
        self.unlogged_writes
    }

    /// True if an abort right now could be rolled back cleanly.
    pub fn can_rollback(&self) -> bool {
        self.unlogged_writes == 0
    }

    /// Records an undo action (or counts an unlogged write when disabled).
    pub fn record(&mut self, rec: UndoRecord) {
        if self.enabled {
            self.records.push(rec);
        } else {
            self.unlogged_writes += 1;
        }
    }

    /// Drains the records in reverse (apply-order for rollback).
    pub fn drain_for_rollback(&mut self) -> impl Iterator<Item = UndoRecord> + '_ {
        self.records.drain(..).rev()
    }

    /// Discards everything (commit).
    pub fn clear(&mut self) {
        self.records.clear();
        self.unlogged_writes = 0;
    }
}

/// The undo state of one speculation window on a shard (paper §2/§4.3 OP4,
/// live runtime).
///
/// When a distributed transaction early-prepares a partition, its fragment
/// undo log at that shard becomes the stack's *base*; every transaction the
/// shard then executes speculatively pushes its commit-time undo log on top.
/// If the distributed transaction later commits, the whole stack is
/// discarded ([`SpeculationStack::commit`]); if it aborts, the stack unwinds
/// LIFO — each speculative commit is rolled back newest-first, then the
/// base — restoring the shard byte-for-byte to its pre-transaction state
/// (`Shard::rollback_speculation`).
///
/// Invariant: speculative transactions always keep undo logging, whatever
/// OP3 decided for them (§4.3), so every pushed log must be rollback-clean.
/// [`SpeculationStack::push_commit`] asserts this rather than trusting the
/// engine.
#[derive(Debug)]
pub struct SpeculationStack {
    base: UndoLog,
    committed: Vec<UndoLog>,
}

impl SpeculationStack {
    /// Opens a speculation window over the early-prepared transaction's
    /// fragment undo at this shard.
    pub fn new(base: UndoLog) -> Self {
        assert!(base.can_rollback(), "early-prepared fragment must keep undo");
        SpeculationStack { base, committed: Vec::new() }
    }

    /// Pushes the undo log of a speculatively-committed transaction.
    pub fn push_commit(&mut self, undo: UndoLog) {
        assert!(
            undo.can_rollback(),
            "speculative transaction executed writes without undo (OP3 must \
             be ignored while speculating, §4.3)"
        );
        self.committed.push(undo);
    }

    /// Number of speculative commits currently on the stack.
    pub fn depth(&self) -> usize {
        self.committed.len()
    }

    /// The distributed transaction committed: all speculative work becomes
    /// final and every retained undo record is discarded.
    pub fn commit(self) {}

    /// Unwinds into `(base, committed)` for LIFO rollback; used by
    /// `Shard::rollback_speculation`.
    pub(crate) fn into_parts(self) -> (UndoLog, Vec<UndoLog>) {
        (self.base, self.committed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use common::Value;

    fn rec(i: i64) -> UndoRecord {
        UndoRecord::Inserted { partition: 0, table: 0, key: vec![Value::Int(i)] }
    }

    #[test]
    fn records_in_reverse() {
        let mut log = UndoLog::new();
        log.record(rec(1));
        log.record(rec(2));
        let order: Vec<_> = log.drain_for_rollback().collect();
        assert_eq!(order, vec![rec(2), rec(1)]);
        assert!(log.is_empty());
    }

    #[test]
    fn disabled_counts_unlogged() {
        let mut log = UndoLog::disabled();
        assert!(!log.is_enabled());
        log.record(rec(1));
        assert!(log.is_empty());
        assert_eq!(log.unlogged_writes(), 1);
        assert!(!log.can_rollback());
    }

    #[test]
    fn disable_midway() {
        let mut log = UndoLog::new();
        log.record(rec(1));
        log.disable();
        log.record(rec(2));
        assert_eq!(log.len(), 1);
        assert_eq!(log.unlogged_writes(), 1);
    }

    #[test]
    fn clear_resets() {
        let mut log = UndoLog::disabled();
        log.record(rec(1));
        log.clear();
        assert!(log.can_rollback());
    }

    #[test]
    fn speculation_stack_tracks_depth_and_order() {
        let mut base = UndoLog::new();
        base.record(rec(0));
        let mut stack = SpeculationStack::new(base);
        for i in 1..=3 {
            let mut u = UndoLog::new();
            u.record(rec(i));
            stack.push_commit(u);
        }
        assert_eq!(stack.depth(), 3);
        let (base, committed) = stack.into_parts();
        assert_eq!(base.len(), 1);
        assert_eq!(committed.len(), 3);
        assert_eq!(committed[2].len(), 1, "newest last (LIFO pop order)");
    }

    #[test]
    #[should_panic(expected = "OP3 must")]
    fn speculation_stack_rejects_unlogged_commits() {
        let mut stack = SpeculationStack::new(UndoLog::new());
        let mut dirty = UndoLog::disabled();
        dirty.record(rec(1));
        stack.push_commit(dirty);
    }
}
