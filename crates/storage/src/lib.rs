//! Partitioned main-memory row storage.
//!
//! This is the storage substrate of the H-Store-style engine (paper §2,
//! Fig. 1): each partition owns a disjoint horizontal slice of every table,
//! accessed by exactly one execution engine at a time. Durability is out of
//! scope (the paper assumes replication); the only log is the *transient undo
//! log* used to roll back aborted transactions, which optimization OP3
//! disables for transactions that are predicted never to abort.

pub mod database;
pub mod index;
pub mod schema;
pub mod table;
pub mod undo;

pub use database::{Database, DbMeta, Shard};
pub use index::SecondaryIndex;
pub use schema::{Column, Schema};
pub use table::{Key, Row, Table};
pub use undo::{SpeculationStack, UndoLog, UndoRecord};
