//! Secondary (non-unique) hash indexes.

use crate::table::{Key, Row};
use common::{FxHashMap, FxHashSet, Value};

/// A non-unique hash index from one column's value to the set of primary
/// keys holding it. TATP's `SUB_NBR → S_ID` lookup and AuctionMark's
/// seller-items lookup use these; without one, `lookup_by` falls back to a
/// partition-local scan.
#[derive(Debug)]
pub struct SecondaryIndex {
    column: usize,
    map: FxHashMap<Value, FxHashSet<Key>>,
}

impl SecondaryIndex {
    /// New empty index on `column`.
    pub fn new(column: usize) -> Self {
        SecondaryIndex { column, map: FxHashMap::default() }
    }

    /// The indexed column.
    pub fn column(&self) -> usize {
        self.column
    }

    /// Registers `row` (stored under `key`).
    pub fn insert(&mut self, row: &Row, key: &[Value]) {
        self.map.entry(row[self.column].clone()).or_default().insert(key.to_vec());
    }

    /// Unregisters `row`.
    pub fn remove(&mut self, row: &Row, key: &[Value]) {
        if let Some(set) = self.map.get_mut(&row[self.column]) {
            set.remove(key);
            if set.is_empty() {
                self.map.remove(&row[self.column]);
            }
        }
    }

    /// Moves `key` between buckets if the indexed column changed.
    pub fn update(&mut self, before: &Row, after: &Row, key: &[Value]) {
        if before[self.column] != after[self.column] {
            self.remove(before, key);
            self.insert(after, key);
        }
    }

    /// All keys whose indexed column equals `value`.
    pub fn get(&self, value: &Value) -> Option<impl Iterator<Item = &Key>> {
        self.map.get(value).map(|s| s.iter())
    }

    /// Number of distinct indexed values.
    pub fn cardinality(&self) -> usize {
        self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(v: i64) -> Key {
        vec![Value::Int(v)]
    }

    #[test]
    fn insert_get_remove() {
        let mut idx = SecondaryIndex::new(1);
        let r1 = vec![Value::Int(1), Value::from("a")];
        let r2 = vec![Value::Int(2), Value::from("a")];
        idx.insert(&r1, &k(1));
        idx.insert(&r2, &k(2));
        assert_eq!(idx.get(&Value::from("a")).unwrap().count(), 2);
        assert_eq!(idx.cardinality(), 1);
        idx.remove(&r1, &k(1));
        assert_eq!(idx.get(&Value::from("a")).unwrap().count(), 1);
        idx.remove(&r2, &k(2));
        assert!(idx.get(&Value::from("a")).is_none());
        assert_eq!(idx.cardinality(), 0);
    }

    #[test]
    fn update_moves_buckets() {
        let mut idx = SecondaryIndex::new(1);
        let before = vec![Value::Int(1), Value::Int(10)];
        let after = vec![Value::Int(1), Value::Int(20)];
        idx.insert(&before, &k(1));
        idx.update(&before, &after, &k(1));
        assert!(idx.get(&Value::Int(10)).is_none());
        assert_eq!(idx.get(&Value::Int(20)).unwrap().count(), 1);
    }

    #[test]
    fn update_same_value_is_noop() {
        let mut idx = SecondaryIndex::new(0);
        let r = vec![Value::Int(5)];
        idx.insert(&r, &k(5));
        idx.update(&r, &r, &k(5));
        assert_eq!(idx.get(&Value::Int(5)).unwrap().count(), 1);
    }
}
