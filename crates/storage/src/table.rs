//! A single partition's slice of one table.

use crate::index::SecondaryIndex;
use crate::schema::Schema;
use common::{Error, FxHashMap, Result, Value};

/// A primary-key value (one `Value` per key column, in schema key order).
pub type Key = Vec<Value>;
/// A row (one `Value` per column, in schema order).
pub type Row = Vec<Value>;

/// One partition's rows for one table, indexed by primary key, plus any
/// secondary indexes. All access is single-threaded by construction — the
/// engine guarantees a partition is touched by one transaction at a time,
/// which is exactly the H-Store execution model the paper builds on.
#[derive(Debug, Default)]
pub struct Table {
    rows: FxHashMap<Key, Row>,
    secondary: Vec<SecondaryIndex>,
}

impl Table {
    /// Creates an empty table slice.
    pub fn new() -> Self {
        Table::default()
    }

    /// Adds a secondary index on `column`. Must be called before rows are
    /// inserted (catalog setup time).
    pub fn add_secondary_index(&mut self, column: usize) {
        assert!(self.rows.is_empty(), "add indexes before loading");
        self.secondary.push(SecondaryIndex::new(column));
    }

    /// Extracts the primary key of `row` under `schema`.
    pub fn key_of(schema: &Schema, row: &Row) -> Key {
        schema.primary_key.iter().map(|&i| row[i].clone()).collect()
    }

    /// Number of rows stored in this slice.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the slice holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Inserts a row; errors on duplicate primary key.
    pub fn insert(&mut self, schema: &Schema, row: Row) -> Result<Key> {
        if row.len() != schema.arity() {
            return Err(Error::Constraint(format!(
                "row arity {} != schema arity {} for {}",
                row.len(),
                schema.arity(),
                schema.name
            )));
        }
        let key = Self::key_of(schema, &row);
        if self.rows.contains_key(&key) {
            return Err(Error::Constraint(format!(
                "duplicate primary key {key:?} in {}",
                schema.name
            )));
        }
        for idx in &mut self.secondary {
            idx.insert(&row, &key);
        }
        self.rows.insert(key.clone(), row);
        Ok(key)
    }

    /// Point lookup by primary key.
    pub fn get(&self, key: &[Value]) -> Option<&Row> {
        self.rows.get(key)
    }

    /// Updates a row in place via `f`; returns the pre-image for undo, or
    /// `NotFound` if the key does not exist. Secondary indexes are kept
    /// consistent even if `f` modifies indexed columns.
    pub fn update(&mut self, key: &[Value], f: impl FnOnce(&mut Row)) -> Result<Row> {
        let row = self.rows.get_mut(key).ok_or_else(|| Error::NotFound(format!("key {key:?}")))?;
        let before = row.clone();
        f(row);
        let after = row.clone();
        for idx in &mut self.secondary {
            idx.update(&before, &after, key);
        }
        Ok(before)
    }

    /// Overwrites the row stored at `key` (used by undo). Inserts if absent.
    pub fn put(&mut self, key: Key, row: Row) {
        if let Some(old) = self.rows.get(&key) {
            for idx in &mut self.secondary {
                idx.update(old, &row, &key);
            }
        } else {
            for idx in &mut self.secondary {
                idx.insert(&row, &key);
            }
        }
        self.rows.insert(key, row);
    }

    /// Deletes a row; returns the pre-image if present.
    pub fn delete(&mut self, key: &[Value]) -> Option<Row> {
        let row = self.rows.remove(key)?;
        for idx in &mut self.secondary {
            idx.remove(&row, key);
        }
        Some(row)
    }

    /// Looks up rows whose `column` equals `value`, via a secondary index if
    /// one exists, otherwise by a full scan of this slice.
    pub fn lookup_by(&self, column: usize, value: &Value) -> Vec<&Row> {
        if let Some(idx) = self.secondary.iter().find(|i| i.column() == column) {
            idx.get(value)
                .map(|keys| {
                    let mut keys: Vec<_> = keys.collect();
                    keys.sort(); // deterministic order
                    keys.iter().filter_map(|k| self.rows.get(*k)).collect()
                })
                .unwrap_or_default()
        } else {
            let mut matches: Vec<(&Key, &Row)> =
                self.rows.iter().filter(|(_, r)| &r[column] == value).collect();
            matches.sort_by(|a, b| a.0.cmp(b.0));
            matches.into_iter().map(|(_, r)| r).collect()
        }
    }

    /// Iterates all rows (test/loader support; deterministic order not
    /// guaranteed).
    pub fn iter(&self) -> impl Iterator<Item = (&Key, &Row)> {
        self.rows.iter()
    }

    /// All rows cloned in sorted order — the deterministic serialization
    /// a snapshot writes.
    pub fn sorted_rows(&self) -> Vec<Row> {
        let mut rows: Vec<Row> = self.rows.values().cloned().collect();
        rows.sort();
        rows
    }

    /// Replaces this slice's contents wholesale with `rows`, rebuilding
    /// every secondary index from scratch (snapshot restore).
    pub fn restore(&mut self, schema: &Schema, rows: Vec<Row>) {
        self.rows.clear();
        let columns: Vec<usize> = self.secondary.iter().map(SecondaryIndex::column).collect();
        self.secondary = columns.into_iter().map(SecondaryIndex::new).collect();
        for row in rows {
            let key = Self::key_of(schema, &row);
            for idx in &mut self.secondary {
                idx.insert(&row, &key);
            }
            self.rows.insert(key, row);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new("T", &["ID", "GRP", "VAL"], &[0], Some(0))
    }

    fn row(id: i64, grp: i64, val: i64) -> Row {
        vec![Value::Int(id), Value::Int(grp), Value::Int(val)]
    }

    #[test]
    fn insert_get_delete() {
        let s = schema();
        let mut t = Table::new();
        t.insert(&s, row(1, 10, 100)).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&[Value::Int(1)]).unwrap()[2], Value::Int(100));
        assert!(t.delete(&[Value::Int(1)]).is_some());
        assert!(t.is_empty());
        assert!(t.delete(&[Value::Int(1)]).is_none());
    }

    #[test]
    fn duplicate_pk_rejected() {
        let s = schema();
        let mut t = Table::new();
        t.insert(&s, row(1, 10, 100)).unwrap();
        assert!(matches!(t.insert(&s, row(1, 11, 101)), Err(Error::Constraint(_))));
    }

    #[test]
    fn arity_checked() {
        let s = schema();
        let mut t = Table::new();
        assert!(t.insert(&s, vec![Value::Int(1)]).is_err());
    }

    #[test]
    fn update_returns_preimage() {
        let s = schema();
        let mut t = Table::new();
        t.insert(&s, row(1, 10, 100)).unwrap();
        let before = t.update(&[Value::Int(1)], |r| r[2] = Value::Int(999)).unwrap();
        assert_eq!(before[2], Value::Int(100));
        assert_eq!(t.get(&[Value::Int(1)]).unwrap()[2], Value::Int(999));
        assert!(t.update(&[Value::Int(7)], |_| {}).is_err());
    }

    #[test]
    fn lookup_by_full_scan() {
        let s = schema();
        let mut t = Table::new();
        for i in 0..10 {
            t.insert(&s, row(i, i % 2, i * 10)).unwrap();
        }
        let evens = t.lookup_by(1, &Value::Int(0));
        assert_eq!(evens.len(), 5);
    }

    #[test]
    fn lookup_by_secondary_index_matches_scan() {
        let s = schema();
        let mut indexed = Table::new();
        indexed.add_secondary_index(1);
        let mut plain = Table::new();
        for i in 0..20 {
            indexed.insert(&s, row(i, i % 3, i)).unwrap();
            plain.insert(&s, row(i, i % 3, i)).unwrap();
        }
        for g in 0..3 {
            let a: Vec<Row> = indexed.lookup_by(1, &Value::Int(g)).into_iter().cloned().collect();
            let b: Vec<Row> = plain.lookup_by(1, &Value::Int(g)).into_iter().cloned().collect();
            assert_eq!(a, b, "group {g}");
        }
    }

    #[test]
    fn index_follows_updates_and_deletes() {
        let s = schema();
        let mut t = Table::new();
        t.add_secondary_index(1);
        t.insert(&s, row(1, 5, 0)).unwrap();
        t.update(&[Value::Int(1)], |r| r[1] = Value::Int(6)).unwrap();
        assert!(t.lookup_by(1, &Value::Int(5)).is_empty());
        assert_eq!(t.lookup_by(1, &Value::Int(6)).len(), 1);
        t.delete(&[Value::Int(1)]);
        assert!(t.lookup_by(1, &Value::Int(6)).is_empty());
    }

    #[test]
    fn put_restores_row_and_index() {
        let s = schema();
        let mut t = Table::new();
        t.add_secondary_index(1);
        t.insert(&s, row(1, 5, 0)).unwrap();
        let key = vec![Value::Int(1)];
        let pre = t.get(&key).unwrap().clone();
        t.update(&key, |r| r[1] = Value::Int(9)).unwrap();
        t.put(key.clone(), pre);
        assert_eq!(t.lookup_by(1, &Value::Int(5)).len(), 1);
        assert!(t.lookup_by(1, &Value::Int(9)).is_empty());
    }
}
