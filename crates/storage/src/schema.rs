//! Table schemas.

use serde::{Deserialize, Serialize};

/// A column definition. Types are dynamic ([`common::Value`]); the schema
/// only needs names and roles.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Column {
    /// Column name, e.g. `W_ID`.
    pub name: String,
}

impl Column {
    /// Shorthand constructor.
    pub fn new(name: &str) -> Self {
        Column { name: name.to_owned() }
    }
}

/// A table schema: name, columns, primary key, and the partitioning column.
///
/// Horizontal partitioning is by a single column (the paper partitions TPC-C
/// by warehouse id, §2.1). Tables whose partitioning column is `None` are
/// *replicated* to every partition (read-anywhere, write-everywhere); TATP's
/// broadcast-first procedures exercise the non-partitioning-column lookup
/// path instead, so replication here is used only for small read-mostly
/// dimension tables (e.g. TPC-C `ITEM`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    /// Table name.
    pub name: String,
    /// Ordered column definitions.
    pub columns: Vec<Column>,
    /// Indices (into `columns`) of the primary-key columns, in key order.
    pub primary_key: Vec<usize>,
    /// Index of the partitioning column, or `None` for replicated tables.
    pub partitioning_column: Option<usize>,
}

impl Schema {
    /// Builds a schema. Panics on an empty key or out-of-range indices —
    /// schemas are static catalog data, so this is a programming error.
    pub fn new(
        name: &str,
        columns: &[&str],
        primary_key: &[usize],
        partitioning_column: Option<usize>,
    ) -> Self {
        assert!(!primary_key.is_empty(), "table {name} needs a primary key");
        for &k in primary_key {
            assert!(k < columns.len(), "pk column {k} out of range in {name}");
        }
        if let Some(pc) = partitioning_column {
            assert!(pc < columns.len(), "partitioning column out of range in {name}");
        }
        Schema {
            name: name.to_owned(),
            columns: columns.iter().map(|c| Column::new(c)).collect(),
            primary_key: primary_key.to_vec(),
            partitioning_column,
        }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Resolves a column name to its index.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// True if the table is replicated rather than partitioned.
    pub fn is_replicated(&self) -> bool {
        self.partitioning_column.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_lookup() {
        let s = Schema::new("WAREHOUSE", &["W_ID", "W_NAME", "W_YTD"], &[0], Some(0));
        assert_eq!(s.arity(), 3);
        assert_eq!(s.column_index("W_NAME"), Some(1));
        assert_eq!(s.column_index("NOPE"), None);
        assert!(!s.is_replicated());
    }

    #[test]
    fn replicated_table() {
        let s = Schema::new("ITEM", &["I_ID", "I_NAME"], &[0], None);
        assert!(s.is_replicated());
    }

    #[test]
    #[should_panic(expected = "primary key")]
    fn empty_pk_panics() {
        Schema::new("X", &["A"], &[], None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_pk_panics() {
        Schema::new("X", &["A"], &[3], None);
    }
}
