//! TATP — Telecom Application Transaction Processing (paper §6.1, \[25\]).
//!
//! Seven stored procedures over four tables partitioned by subscriber id.
//! Four procedures are always single-partition; `DeleteCallFwrd`,
//! `InsertCallFwrd`, and `UpdateLocation` first execute a broadcast query
//! that resolves a subscriber number (a column the tables are *not*
//! partitioned on) to a subscriber id, then operate on that subscriber's
//! partition — the access pattern of Fig. 10a that makes OP1 unpredictable
//! and OP4 valuable.

use common::{derive_seed, seeded_rng, FxHashMap, ProcId, Value};
use engine::{
    ColumnOp, PartitionHint, ProcDef, ProcInstance, Procedure, ProcedureRegistry, QueryDef,
    QueryInvocation, QueryOp, RequestGenerator, Step,
};
use rand::rngs::SmallRng;
use rand::Rng;
use storage::{Database, Row, Schema, UndoLog};

/// Subscribers loaded per partition.
pub const SUBS_PER_PARTITION: u32 = 200;

/// Table ids, in schema order.
pub mod tables {
    /// SUBSCRIBER(S_ID, SUB_NBR, BIT_1, MSC_LOC, VLR_LOC)
    pub const SUBSCRIBER: usize = 0;
    /// ACCESS_INFO(S_ID, AI_TYPE, DATA1)
    pub const ACCESS_INFO: usize = 1;
    /// SPECIAL_FACILITY(S_ID, SF_TYPE, IS_ACTIVE, DATA_A)
    pub const SPECIAL_FACILITY: usize = 2;
    /// CALL_FORWARDING(S_ID, SF_TYPE, START_TIME, NUMBERX)
    pub const CALL_FORWARDING: usize = 3;
}

/// Builds and loads the TATP database for `parts` partitions.
pub fn database(parts: u32) -> Database {
    let schemas = vec![
        Schema::new(
            "SUBSCRIBER",
            &["S_ID", "SUB_NBR", "BIT_1", "MSC_LOC", "VLR_LOC"],
            &[0],
            Some(0),
        ),
        Schema::new("ACCESS_INFO", &["S_ID", "AI_TYPE", "DATA1"], &[0, 1], Some(0)),
        Schema::new(
            "SPECIAL_FACILITY",
            &["S_ID", "SF_TYPE", "IS_ACTIVE", "DATA_A"],
            &[0, 1],
            Some(0),
        ),
        Schema::new(
            "CALL_FORWARDING",
            &["S_ID", "SF_TYPE", "START_TIME", "NUMBERX"],
            &[0, 1, 2],
            Some(0),
        ),
    ];
    let mut db = Database::new(
        schemas,
        parts,
        &[
            ("SUBSCRIBER", 1),       // SUB_NBR lookups
            ("SPECIAL_FACILITY", 0), // per-subscriber SF scans
            ("CALL_FORWARDING", 0),
        ],
    );
    let mut undo = UndoLog::new();
    let total = i64::from(parts * SUBS_PER_PARTITION);
    for s in 0..total {
        let p = db.partition_for_value(&Value::Int(s));
        db.insert(
            p,
            tables::SUBSCRIBER,
            vec![
                Value::Int(s),
                Value::Str(sub_nbr(s)),
                Value::Int(s % 2),
                Value::Int(s * 10),
                Value::Int(s * 10 + 1),
            ],
            &mut undo,
        )
        .expect("load subscriber");
        for ai in 1..=2i64 {
            db.insert(
                p,
                tables::ACCESS_INFO,
                vec![Value::Int(s), Value::Int(ai), Value::Int(s + ai)],
                &mut undo,
            )
            .expect("load access_info");
        }
        for sf in 1..=4i64 {
            let active = i64::from((s + sf) % 4 != 0); // 75% active
            db.insert(
                p,
                tables::SPECIAL_FACILITY,
                vec![Value::Int(s), Value::Int(sf), Value::Int(active), Value::Int(sf)],
                &mut undo,
            )
            .expect("load special_facility");
            if (s + sf) % 2 == 0 {
                for st in [0i64, 8] {
                    db.insert(
                        p,
                        tables::CALL_FORWARDING,
                        vec![Value::Int(s), Value::Int(sf), Value::Int(st), Value::Str(sub_nbr(s))],
                        &mut undo,
                    )
                    .expect("load call_forwarding");
                }
            }
        }
    }
    db
}

/// The subscriber-number string for `s_id` (the non-partitioning lookup key).
pub fn sub_nbr(s_id: i64) -> String {
    format!("NBR{s_id:012}")
}

fn q(name: &str, table: usize, op: QueryOp, hint: PartitionHint) -> QueryDef {
    QueryDef { name: name.into(), table, op, hint }
}

fn broadcast_sub_lookup() -> QueryDef {
    q(
        "GetSubscriber",
        tables::SUBSCRIBER,
        QueryOp::LookupBy { column: 1, param: 0 },
        PartitionHint::Broadcast,
    )
}

// ---------------------------------------------------------------------------
// Procedure A: DeleteCallFwrd(sub_nbr, sf_type, start_time)
// ---------------------------------------------------------------------------

struct DeleteCallFwrd {
    def: ProcDef,
}

impl DeleteCallFwrd {
    fn new() -> Self {
        DeleteCallFwrd {
            def: ProcDef {
                name: "DeleteCallFwrd".into(),
                queries: vec![
                    broadcast_sub_lookup(),
                    q(
                        "DeleteCallFwrd",
                        tables::CALL_FORWARDING,
                        QueryOp::DeleteByKey { key_params: vec![0, 1, 2] },
                        PartitionHint::Param(0),
                    ),
                ],
                read_only: false,
                can_abort: false,
            },
        }
    }
}

struct DeleteCallFwrdRun {
    args: Vec<Value>,
    stage: u8,
}

impl Procedure for DeleteCallFwrd {
    fn def(&self) -> &ProcDef {
        &self.def
    }
    fn instantiate(&self, args: &[Value]) -> Box<dyn ProcInstance> {
        Box::new(DeleteCallFwrdRun { args: args.to_vec(), stage: 0 })
    }
}

impl ProcInstance for DeleteCallFwrdRun {
    fn next(&mut self, results: Option<&[Vec<Row>]>) -> Step {
        match self.stage {
            0 => {
                self.stage = 1;
                Step::Queries(vec![QueryInvocation::new(0, vec![self.args[0].clone()])])
            }
            1 => {
                let rows = &results.unwrap()[0];
                let Some(sub) = rows.first() else {
                    return Step::Abort("unknown subscriber".into());
                };
                self.stage = 2;
                Step::Queries(vec![QueryInvocation::new(
                    1,
                    vec![sub[0].clone(), self.args[1].clone(), self.args[2].clone()],
                )])
            }
            _ => Step::Commit,
        }
    }
}

// ---------------------------------------------------------------------------
// Procedure B: GetAccessData(s_id, ai_type)  — always single-partition
// ---------------------------------------------------------------------------

struct GetAccessData {
    def: ProcDef,
}

impl GetAccessData {
    fn new() -> Self {
        GetAccessData {
            def: ProcDef {
                name: "GetAccessData".into(),
                queries: vec![q(
                    "GetAccessInfo",
                    tables::ACCESS_INFO,
                    QueryOp::GetByKey { key_params: vec![0, 1] },
                    PartitionHint::Param(0),
                )],
                read_only: true,
                can_abort: false,
            },
        }
    }
}

struct OneShot {
    invs: Vec<QueryInvocation>,
    fired: bool,
}

impl ProcInstance for OneShot {
    fn next(&mut self, _results: Option<&[Vec<Row>]>) -> Step {
        if self.fired {
            Step::Commit
        } else {
            self.fired = true;
            Step::Queries(std::mem::take(&mut self.invs))
        }
    }
}

impl Procedure for GetAccessData {
    fn def(&self) -> &ProcDef {
        &self.def
    }
    fn instantiate(&self, args: &[Value]) -> Box<dyn ProcInstance> {
        Box::new(OneShot { invs: vec![QueryInvocation::new(0, args.to_vec())], fired: false })
    }
}

// ---------------------------------------------------------------------------
// Procedure C: GetNewDest(s_id, sf_type, start_time)
// ---------------------------------------------------------------------------

struct GetNewDest {
    def: ProcDef,
}

impl GetNewDest {
    fn new() -> Self {
        GetNewDest {
            def: ProcDef {
                name: "GetNewDest".into(),
                queries: vec![
                    q(
                        "GetSpecialFacility",
                        tables::SPECIAL_FACILITY,
                        QueryOp::GetByKey { key_params: vec![0, 1] },
                        PartitionHint::Param(0),
                    ),
                    q(
                        "GetCallForwarding",
                        tables::CALL_FORWARDING,
                        QueryOp::GetByKey { key_params: vec![0, 1, 2] },
                        PartitionHint::Param(0),
                    ),
                ],
                read_only: true,
                can_abort: true,
            },
        }
    }
}

struct GetNewDestRun {
    args: Vec<Value>,
    stage: u8,
}

impl Procedure for GetNewDest {
    fn def(&self) -> &ProcDef {
        &self.def
    }
    fn instantiate(&self, args: &[Value]) -> Box<dyn ProcInstance> {
        Box::new(GetNewDestRun { args: args.to_vec(), stage: 0 })
    }
}

impl ProcInstance for GetNewDestRun {
    fn next(&mut self, results: Option<&[Vec<Row>]>) -> Step {
        match self.stage {
            0 => {
                self.stage = 1;
                Step::Queries(vec![QueryInvocation::new(
                    0,
                    vec![self.args[0].clone(), self.args[1].clone()],
                )])
            }
            1 => {
                let rows = &results.unwrap()[0];
                let active = rows.first().map(|r| r[2].expect_int()).unwrap_or(0);
                if active == 0 {
                    return Step::Abort("no active special facility".into());
                }
                self.stage = 2;
                Step::Queries(vec![QueryInvocation::new(1, self.args.clone())])
            }
            _ => Step::Commit,
        }
    }
}

// ---------------------------------------------------------------------------
// Procedure D: GetSubscriber(s_id)  — always single-partition
// ---------------------------------------------------------------------------

struct GetSubscriberData {
    def: ProcDef,
}

impl GetSubscriberData {
    fn new() -> Self {
        GetSubscriberData {
            def: ProcDef {
                name: "GetSubscriber".into(),
                queries: vec![q(
                    "GetSubscriberData",
                    tables::SUBSCRIBER,
                    QueryOp::GetByKey { key_params: vec![0] },
                    PartitionHint::Param(0),
                )],
                read_only: true,
                can_abort: false,
            },
        }
    }
}

impl Procedure for GetSubscriberData {
    fn def(&self) -> &ProcDef {
        &self.def
    }
    fn instantiate(&self, args: &[Value]) -> Box<dyn ProcInstance> {
        Box::new(OneShot { invs: vec![QueryInvocation::new(0, args.to_vec())], fired: false })
    }
}

// ---------------------------------------------------------------------------
// Procedure E: InsertCallFwrd(sub_nbr, sf_type, start_time, numberx)
// ---------------------------------------------------------------------------

struct InsertCallFwrd {
    def: ProcDef,
}

impl InsertCallFwrd {
    fn new() -> Self {
        InsertCallFwrd {
            def: ProcDef {
                name: "InsertCallFwrd".into(),
                queries: vec![
                    broadcast_sub_lookup(),
                    q(
                        "GetSFType",
                        tables::SPECIAL_FACILITY,
                        QueryOp::LookupBy { column: 0, param: 0 },
                        PartitionHint::Param(0),
                    ),
                    q(
                        "InsertCallFwrd",
                        tables::CALL_FORWARDING,
                        QueryOp::InsertRow,
                        PartitionHint::Param(0),
                    ),
                ],
                read_only: false,
                can_abort: true,
            },
        }
    }
}

struct InsertCallFwrdRun {
    args: Vec<Value>,
    stage: u8,
    s_id: Value,
}

impl Procedure for InsertCallFwrd {
    fn def(&self) -> &ProcDef {
        &self.def
    }
    fn instantiate(&self, args: &[Value]) -> Box<dyn ProcInstance> {
        Box::new(InsertCallFwrdRun { args: args.to_vec(), stage: 0, s_id: Value::Null })
    }
}

impl ProcInstance for InsertCallFwrdRun {
    fn next(&mut self, results: Option<&[Vec<Row>]>) -> Step {
        match self.stage {
            0 => {
                self.stage = 1;
                Step::Queries(vec![QueryInvocation::new(0, vec![self.args[0].clone()])])
            }
            1 => {
                let rows = &results.unwrap()[0];
                let Some(sub) = rows.first() else {
                    return Step::Abort("unknown subscriber".into());
                };
                self.s_id = sub[0].clone();
                self.stage = 2;
                Step::Queries(vec![QueryInvocation::new(1, vec![self.s_id.clone()])])
            }
            2 => {
                if results.unwrap()[0].is_empty() {
                    return Step::Abort("no special facility".into());
                }
                self.stage = 3;
                Step::Queries(vec![QueryInvocation::new(
                    2,
                    vec![
                        self.s_id.clone(),
                        self.args[1].clone(),
                        self.args[2].clone(),
                        self.args[3].clone(),
                    ],
                )])
            }
            _ => Step::Commit,
        }
    }
}

// ---------------------------------------------------------------------------
// Procedure F: UpdateLocation(sub_nbr, vlr_location)
// ---------------------------------------------------------------------------

struct UpdateLocation {
    def: ProcDef,
}

impl UpdateLocation {
    fn new() -> Self {
        UpdateLocation {
            def: ProcDef {
                name: "UpdateLocation".into(),
                queries: vec![
                    broadcast_sub_lookup(),
                    q(
                        "UpdateSubscriberLoc",
                        tables::SUBSCRIBER,
                        QueryOp::UpdateByKey {
                            key_params: vec![0],
                            sets: vec![ColumnOp::Set { column: 4, param: 1 }],
                        },
                        PartitionHint::Param(0),
                    ),
                ],
                read_only: false,
                can_abort: false,
            },
        }
    }
}

struct UpdateLocationRun {
    args: Vec<Value>,
    stage: u8,
}

impl Procedure for UpdateLocation {
    fn def(&self) -> &ProcDef {
        &self.def
    }
    fn instantiate(&self, args: &[Value]) -> Box<dyn ProcInstance> {
        Box::new(UpdateLocationRun { args: args.to_vec(), stage: 0 })
    }
}

impl ProcInstance for UpdateLocationRun {
    fn next(&mut self, results: Option<&[Vec<Row>]>) -> Step {
        match self.stage {
            0 => {
                self.stage = 1;
                Step::Queries(vec![QueryInvocation::new(0, vec![self.args[0].clone()])])
            }
            1 => {
                let rows = &results.unwrap()[0];
                let Some(sub) = rows.first() else {
                    return Step::Abort("unknown subscriber".into());
                };
                self.stage = 2;
                Step::Queries(vec![QueryInvocation::new(
                    1,
                    vec![sub[0].clone(), self.args[1].clone()],
                )])
            }
            _ => Step::Commit,
        }
    }
}

// ---------------------------------------------------------------------------
// Procedure G: UpdateSubscriber(s_id, bit_1, sf_type, data_a)
// ---------------------------------------------------------------------------

struct UpdateSubscriber {
    def: ProcDef,
}

impl UpdateSubscriber {
    fn new() -> Self {
        UpdateSubscriber {
            def: ProcDef {
                name: "UpdateSubscriber".into(),
                queries: vec![
                    q(
                        "UpdateSubscriberBit",
                        tables::SUBSCRIBER,
                        QueryOp::UpdateByKey {
                            key_params: vec![0],
                            sets: vec![ColumnOp::Set { column: 2, param: 1 }],
                        },
                        PartitionHint::Param(0),
                    ),
                    q(
                        "UpdateSpecialFacility",
                        tables::SPECIAL_FACILITY,
                        QueryOp::UpdateByKey {
                            key_params: vec![0, 1],
                            sets: vec![ColumnOp::Set { column: 3, param: 2 }],
                        },
                        PartitionHint::Param(0),
                    ),
                ],
                read_only: false,
                can_abort: false,
            },
        }
    }
}

struct UpdateSubscriberRun {
    args: Vec<Value>,
    stage: u8,
}

impl Procedure for UpdateSubscriber {
    fn def(&self) -> &ProcDef {
        &self.def
    }
    fn instantiate(&self, args: &[Value]) -> Box<dyn ProcInstance> {
        Box::new(UpdateSubscriberRun { args: args.to_vec(), stage: 0 })
    }
}

impl ProcInstance for UpdateSubscriberRun {
    fn next(&mut self, _results: Option<&[Vec<Row>]>) -> Step {
        match self.stage {
            0 => {
                self.stage = 1;
                Step::Queries(vec![QueryInvocation::new(
                    0,
                    vec![self.args[0].clone(), self.args[1].clone()],
                )])
            }
            1 => {
                self.stage = 2;
                Step::Queries(vec![QueryInvocation::new(
                    1,
                    vec![self.args[0].clone(), self.args[2].clone(), self.args[3].clone()],
                )])
            }
            _ => Step::Commit,
        }
    }
}

/// Builds the TATP procedure registry (procedure letters A–G of Table 4).
pub fn registry() -> ProcedureRegistry {
    ProcedureRegistry::new(vec![
        Box::new(DeleteCallFwrd::new()),    // A
        Box::new(GetAccessData::new()),     // B
        Box::new(GetNewDest::new()),        // C
        Box::new(GetSubscriberData::new()), // D
        Box::new(InsertCallFwrd::new()),    // E
        Box::new(UpdateLocation::new()),    // F
        Box::new(UpdateSubscriber::new()),  // G
    ])
}

/// TATP request generator with the standard transaction mix.
///
/// Subscriber ids are drawn uniformly from the whole population by
/// default; [`Generator::with_hot_partitions`] narrows the draw to the
/// subscribers of a *partition* range (subscribers map to partitions by
/// `s_id % parts`, so an id-range skew would still touch every partition),
/// and [`Generator::with_partition_flip`] makes the hot range switch
/// mid-stream — the workload-shift scenario of the paper's §4.5
/// maintenance loop (Fig. 11), used by the `live-drift` experiment.
pub struct Generator {
    parts: u32,
    seed: u64,
    rngs: FxHashMap<u64, SmallRng>,
    insert_counter: i64,
    /// Hot partition range `[lo, hi)`; `None` = all partitions.
    hot: Option<(u32, u32)>,
    /// After `flip_after` requests from this generator, `hot` becomes
    /// `flip_to` (a mid-stream skew flip).
    flip_to: Option<(u32, u32)>,
    flip_after: u64,
    issued: u64,
}

impl Generator {
    /// New generator for a cluster of `parts` partitions.
    pub fn new(parts: u32, seed: u64) -> Self {
        Generator {
            parts,
            seed,
            rngs: FxHashMap::default(),
            insert_counter: 0,
            hot: None,
            flip_to: None,
            flip_after: 0,
            issued: 0,
        }
    }

    /// An independent generator for one client stream. Per-client RNG
    /// streams already derive from `(seed, client)`, so this produces
    /// exactly the requests the shared generator would hand that client;
    /// only the unique insert timestamps come from a per-client block
    /// (stride 2^40) so concurrent streams never collide.
    pub fn for_client(parts: u32, seed: u64, client: u64) -> Self {
        Generator { insert_counter: (client as i64) << 40, ..Generator::new(parts, seed) }
    }

    /// Restricts subscriber draws to partitions `[lo, hi)` — partition
    /// skew. The standard procedure mix is preserved in distribution (the
    /// mix draw is independent of the subscriber draw).
    #[must_use]
    pub fn with_hot_partitions(mut self, lo: u32, hi: u32) -> Self {
        assert!(lo < hi && hi <= self.parts, "bad hot partition range");
        self.hot = Some((lo, hi));
        self
    }

    /// Switches the hot partitions to `[lo, hi)` after this generator has
    /// issued `after` requests: the mid-run skew flip of the `live-drift`
    /// experiment.
    #[must_use]
    pub fn with_partition_flip(mut self, lo: u32, hi: u32, after: u64) -> Self {
        assert!(lo < hi && hi <= self.parts, "bad flip partition range");
        self.flip_to = Some((lo, hi));
        self.flip_after = after;
        self
    }

    /// Uniform subscriber draw over the partitions `[lo, hi)`: subscriber
    /// `s` lives at partition `s % parts`, so the draw picks an index and
    /// a partition within the hot range and recombines them.
    fn draw_subscriber(rng: &mut SmallRng, parts: u32, range: (u32, u32)) -> i64 {
        let (lo, hi) = range;
        let width = i64::from(hi - lo);
        let k = rng.gen_range(0..width * i64::from(SUBS_PER_PARTITION));
        (k / width) * i64::from(parts) + i64::from(lo) + (k % width)
    }

    fn total_subs(&self) -> i64 {
        i64::from(self.parts * SUBS_PER_PARTITION)
    }
}

impl RequestGenerator for Generator {
    fn next_request(&mut self, client: u64) -> (ProcId, Vec<Value>) {
        self.issued += 1;
        if let Some(flip) = self.flip_to {
            if self.issued > self.flip_after {
                self.hot = Some(flip);
            }
        }
        let seed = self.seed;
        let parts = self.parts;
        let range = self.hot.unwrap_or((0, parts));
        let rng = self.rngs.entry(client).or_insert_with(|| seeded_rng(derive_seed(seed, client)));
        let s_id = Self::draw_subscriber(rng, parts, range);
        let mix: u32 = rng.gen_range(0..100);
        // TATP standard mix: GetSubscriber 35, GetAccessData 35, GetNewDest
        // 10, UpdateLocation 14, UpdateSubscriber 2, InsertCallFwrd 2,
        // DeleteCallFwrd 2.
        match mix {
            0..=34 => (3, vec![Value::Int(s_id)]), // GetSubscriber
            35..=69 => (1, vec![Value::Int(s_id), Value::Int(rng.gen_range(1..=2))]), // GetAccessData
            70..=79 => (
                2,
                vec![
                    Value::Int(s_id),
                    Value::Int(rng.gen_range(1..=4)),
                    Value::Int(if rng.gen_bool(0.5) { 0 } else { 8 }),
                ],
            ), // GetNewDest
            80..=93 => (5, vec![Value::Str(sub_nbr(s_id)), Value::Int(rng.gen_range(0..1 << 20))]), // UpdateLocation
            94..=95 => (
                6,
                vec![
                    Value::Int(s_id),
                    Value::Int(rng.gen_range(0..=1)),
                    Value::Int(rng.gen_range(1..=4)),
                    Value::Int(rng.gen_range(0..256)),
                ],
            ), // UpdateSubscriber
            96..=97 => {
                // InsertCallFwrd with a never-colliding start time.
                self.insert_counter += 1;
                (
                    4,
                    vec![
                        Value::Str(sub_nbr(s_id)),
                        Value::Int(self.rngs.get_mut(&client).unwrap().gen_range(1..=4)),
                        Value::Int(100 + self.insert_counter),
                        Value::Str(sub_nbr((s_id + 1) % self.total_subs())),
                    ],
                )
            }
            _ => (
                0,
                vec![
                    Value::Str(sub_nbr(s_id)),
                    Value::Int(rng.gen_range(1..=4)),
                    Value::Int(if rng.gen_bool(0.5) { 0 } else { 8 }),
                ],
            ), // DeleteCallFwrd
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use engine::run_offline;

    #[test]
    fn loads_expected_rows() {
        let db = database(4);
        assert_eq!(db.total_rows(tables::SUBSCRIBER), 800);
        assert_eq!(db.total_rows(tables::ACCESS_INFO), 1600);
        assert_eq!(db.total_rows(tables::SPECIAL_FACILITY), 3200);
    }

    #[test]
    fn get_subscriber_is_single_partition() {
        let mut db = database(4);
        let reg = registry();
        let cat = reg.catalog();
        let out = run_offline(&mut db, &reg, &cat, 3, &[Value::Int(5)], true).unwrap();
        assert!(out.committed);
        assert!(out.touched.is_single());
        assert_eq!(out.touched.first(), Some(1)); // 5 % 4
    }

    #[test]
    fn update_location_broadcasts_then_narrows() {
        let mut db = database(4);
        let reg = registry();
        let cat = reg.catalog();
        let out =
            run_offline(&mut db, &reg, &cat, 5, &[Value::Str(sub_nbr(6)), Value::Int(42)], true)
                .unwrap();
        assert!(out.committed);
        assert_eq!(out.touched.len(), 4, "broadcast touches everything");
        assert_eq!(out.record.queries.len(), 2);
        // Effect landed on subscriber 6 (partition 2).
        assert_eq!(db.get(2, tables::SUBSCRIBER, &[Value::Int(6)]).unwrap()[4], Value::Int(42));
    }

    #[test]
    fn get_new_dest_aborts_on_inactive_facility() {
        let mut db = database(4);
        let reg = registry();
        let cat = reg.catalog();
        // (s + sf) % 4 == 0 -> inactive; s=1, sf=3.
        let out = run_offline(
            &mut db,
            &reg,
            &cat,
            2,
            &[Value::Int(1), Value::Int(3), Value::Int(0)],
            true,
        )
        .unwrap();
        assert!(!out.committed);
    }

    #[test]
    fn insert_call_fwrd_inserts_at_subscriber_partition() {
        let mut db = database(4);
        let reg = registry();
        let cat = reg.catalog();
        let out = run_offline(
            &mut db,
            &reg,
            &cat,
            4,
            &[Value::Str(sub_nbr(9)), Value::Int(1), Value::Int(999), Value::Str("X".into())],
            true,
        )
        .unwrap();
        assert!(out.committed);
        assert!(db
            .get(1, tables::CALL_FORWARDING, &[Value::Int(9), Value::Int(1), Value::Int(999)])
            .is_some());
    }

    #[test]
    fn generator_mix_hits_every_procedure() {
        let mut g = Generator::new(4, 11);
        let mut seen = [0u32; 7];
        for i in 0..2000 {
            let (p, _) = g.next_request(i % 8);
            seen[p as usize] += 1;
        }
        for (i, &count) in seen.iter().enumerate() {
            assert!(count > 0, "procedure {i} never generated");
        }
        // GetSubscriber (id 3) should dominate alongside GetAccessData.
        assert!(seen[3] > seen[0] * 5);
    }

    #[test]
    fn skewed_generator_flips_hot_partitions_mid_stream() {
        let total = i64::from(4 * SUBS_PER_PARTITION);
        let mut g = Generator::new(4, 3).with_hot_partitions(0, 2).with_partition_flip(2, 4, 100);
        let s_of = |args: &[Value]| match &args[0] {
            Value::Int(s) => *s,
            Value::Str(nbr) => nbr[3..].parse::<i64>().unwrap(),
            other => panic!("unexpected arg {other:?}"),
        };
        for i in 0..200u64 {
            let (_, args) = g.next_request(0);
            let s = s_of(&args);
            assert!((0..total).contains(&s), "subscriber {s} out of range");
            if i < 100 {
                assert!(s % 4 < 2, "request {i} drew partition {} pre-flip", s % 4);
            } else {
                assert!(s % 4 >= 2, "request {i} drew partition {} post-flip", s % 4);
            }
        }
    }

    #[test]
    fn skewed_generator_still_hits_every_procedure() {
        let mut g = Generator::new(4, 11).with_hot_partitions(0, 2);
        let mut seen = [0u32; 7];
        for i in 0..2000 {
            let (p, _) = g.next_request(i % 8);
            seen[p as usize] += 1;
        }
        for (i, &count) in seen.iter().enumerate() {
            assert!(count > 0, "procedure {i} never generated under skew");
        }
    }

    #[test]
    fn default_draw_matches_the_unskewed_stream() {
        // The hot-partition machinery with the full range must reproduce
        // the historical uniform draw bit-for-bit (recorded expectations
        // elsewhere depend on the stream).
        let mut a = Generator::new(4, 5);
        let mut b = Generator::new(4, 5).with_hot_partitions(0, 4);
        for c in 0..4 {
            for _ in 0..100 {
                assert_eq!(a.next_request(c), b.next_request(c));
            }
        }
    }

    #[test]
    fn generator_is_deterministic() {
        let mut a = Generator::new(4, 5);
        let mut b = Generator::new(4, 5);
        for c in 0..4 {
            assert_eq!(a.next_request(c), b.next_request(c));
        }
    }
}
