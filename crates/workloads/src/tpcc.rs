//! TPC-C, simplified to the shapes the paper uses (§2.1 Fig. 2, §6.1).
//!
//! One warehouse per partition (the paper assigns two partitions per node
//! and partitions by warehouse id). `NewOrder` follows the paper's Fig. 2
//! simplification exactly — `GetWarehouse`, a `CheckStock` per item, then
//! `InsertOrder` and an `InsertOrdLine`/`UpdateStock` pair per item, where
//! remote items make the transaction distributed. `Payment` follows the
//! Fig. 10b shape with its good-credit/bad-credit conditional branch and a
//! 15% remote customer. `OrderStatus`, `Delivery`, and `StockLevel` are
//! always single-partition; `Delivery` executes the most queries and is the
//! longest transaction (Table 4 row H).

use common::{derive_seed, seeded_rng, FxHashMap, FxHashSet, ProcId, Value};
use engine::{
    ColumnOp, PartitionHint, ProcDef, ProcInstance, Procedure, ProcedureRegistry, QueryDef,
    QueryInvocation, QueryOp, RequestGenerator, Step,
};
use rand::rngs::SmallRng;
use rand::Rng;
use storage::{Database, Row, Schema, UndoLog};

/// Customers loaded per warehouse.
pub const CUSTOMERS_PER_WAREHOUSE: i64 = 300;
/// Stock items per warehouse (item ids `0..ITEMS`).
pub const ITEMS: i64 = 400;
/// Orders pre-loaded per warehouse.
pub const SEED_ORDERS: i64 = 20;
/// Sentinel item id used to trigger the ~1% "invalid item" rollback of the
/// TPC-C specification.
pub const INVALID_ITEM: i64 = 999_999;

/// Table ids, in schema order.
pub mod tables {
    /// WAREHOUSE(W_ID, NAME, W_YTD)
    pub const WAREHOUSE: usize = 0;
    /// CUSTOMER(C_W_ID, C_ID, C_CREDIT, C_BALANCE, C_YTD)
    pub const CUSTOMER: usize = 1;
    /// ORDERS(O_W_ID, O_ID, O_C_ID, O_CARRIER_ID)
    pub const ORDERS: usize = 2;
    /// ORDER_LINE(OL_SUPPLY_W_ID, OL_W_ID, OL_O_ID, OL_NUMBER, OL_I_ID, OL_QTY)
    pub const ORDER_LINE: usize = 3;
    /// STOCK(S_W_ID, S_I_ID, S_QTY, S_YTD)
    pub const STOCK: usize = 4;
    /// HISTORY(H_W_ID, H_ID, H_C_ID, H_AMOUNT)
    pub const HISTORY: usize = 5;
}

/// Builds and loads the TPC-C database: one warehouse per partition.
pub fn database(parts: u32) -> Database {
    let schemas = vec![
        Schema::new("WAREHOUSE", &["W_ID", "NAME", "W_YTD"], &[0], Some(0)),
        Schema::new(
            "CUSTOMER",
            &["C_W_ID", "C_ID", "C_CREDIT", "C_BALANCE", "C_YTD"],
            &[0, 1],
            Some(0),
        ),
        Schema::new("ORDERS", &["O_W_ID", "O_ID", "O_C_ID", "O_CARRIER_ID"], &[0, 1], Some(0)),
        Schema::new(
            "ORDER_LINE",
            &["OL_SUPPLY_W_ID", "OL_W_ID", "OL_O_ID", "OL_NUMBER", "OL_I_ID", "OL_QTY"],
            &[1, 2, 3],
            Some(0),
        ),
        Schema::new("STOCK", &["S_W_ID", "S_I_ID", "S_QTY", "S_YTD"], &[0, 1], Some(0)),
        Schema::new("HISTORY", &["H_W_ID", "H_ID", "H_C_ID", "H_AMOUNT"], &[0, 1], Some(0)),
    ];
    let mut db = Database::new(
        schemas,
        parts,
        &[
            ("ORDERS", 2),     // orders by customer (OrderStatus)
            ("ORDERS", 3),     // orders by carrier (Delivery: 0 = undelivered)
            ("ORDER_LINE", 2), // order lines by order id
        ],
    );
    let mut undo = UndoLog::new();
    for w in 0..i64::from(parts) {
        let p = db.partition_for_value(&Value::Int(w));
        db.insert(
            p,
            tables::WAREHOUSE,
            vec![Value::Int(w), Value::Str(format!("W{w}")), Value::Int(0)],
            &mut undo,
        )
        .expect("load warehouse");
        for c in 0..CUSTOMERS_PER_WAREHOUSE {
            let credit = if c % 10 == 0 { "BC" } else { "GC" };
            db.insert(
                p,
                tables::CUSTOMER,
                vec![
                    Value::Int(w),
                    Value::Int(c),
                    Value::Str(credit.into()),
                    Value::Int(1000),
                    Value::Int(0),
                ],
                &mut undo,
            )
            .expect("load customer");
        }
        for i in 0..ITEMS {
            db.insert(
                p,
                tables::STOCK,
                vec![Value::Int(w), Value::Int(i), Value::Int(10_000), Value::Int(0)],
                &mut undo,
            )
            .expect("load stock");
        }
        for o in 0..SEED_ORDERS {
            db.insert(
                p,
                tables::ORDERS,
                vec![
                    Value::Int(w),
                    Value::Int(o),
                    Value::Int(o % CUSTOMERS_PER_WAREHOUSE),
                    Value::Int(0),
                ],
                &mut undo,
            )
            .expect("load order");
            for ol in 0..3i64 {
                db.insert(
                    p,
                    tables::ORDER_LINE,
                    vec![
                        Value::Int(w),
                        Value::Int(w),
                        Value::Int(o),
                        Value::Int(ol),
                        Value::Int((o * 3 + ol) % ITEMS),
                        Value::Int(5),
                    ],
                    &mut undo,
                )
                .expect("load order line");
            }
        }
    }
    db
}

fn q(name: &str, table: usize, op: QueryOp, hint: PartitionHint) -> QueryDef {
    QueryDef { name: name.into(), table, op, hint }
}

// ---------------------------------------------------------------------------
// Procedure H: Delivery(w_id, carrier_id)
// ---------------------------------------------------------------------------

struct Delivery {
    def: ProcDef,
}

impl Delivery {
    fn new() -> Self {
        Delivery {
            def: ProcDef {
                name: "Delivery".into(),
                queries: vec![
                    // q0: all undelivered orders at this warehouse.
                    q(
                        "GetUndelivered",
                        tables::ORDERS,
                        QueryOp::LookupBy { column: 3, param: 1 },
                        PartitionHint::Param(0),
                    ),
                    // q1: stamp the carrier on one order.
                    q(
                        "UpdateOrderCarrier",
                        tables::ORDERS,
                        QueryOp::UpdateByKey {
                            key_params: vec![0, 1],
                            sets: vec![ColumnOp::Set { column: 3, param: 2 }],
                        },
                        PartitionHint::Param(0),
                    ),
                    // q2: the order's lines (amount to charge).
                    q(
                        "GetOrderLines",
                        tables::ORDER_LINE,
                        QueryOp::LookupBy { column: 2, param: 1 },
                        PartitionHint::Param(0),
                    ),
                    // q3: charge the customer.
                    q(
                        "UpdateCustomerBalance",
                        tables::CUSTOMER,
                        QueryOp::UpdateByKey {
                            key_params: vec![0, 1],
                            sets: vec![ColumnOp::Add { column: 3, param: 2 }],
                        },
                        PartitionHint::Param(0),
                    ),
                ],
                read_only: false,
                can_abort: false,
            },
        }
    }
}

/// Delivers up to this many orders per invocation (stands in for TPC-C's
/// one-per-district loop over 10 districts).
const DELIVERY_BATCH: usize = 10;

struct DeliveryRun {
    w_id: Value,
    carrier: Value,
    stage: u8,
    orders: Vec<(Value, Value)>, // (o_id, c_id)
    cursor: usize,
}

impl Procedure for Delivery {
    fn def(&self) -> &ProcDef {
        &self.def
    }
    fn instantiate(&self, args: &[Value]) -> Box<dyn ProcInstance> {
        Box::new(DeliveryRun {
            w_id: args[0].clone(),
            carrier: args[1].clone(),
            stage: 0,
            orders: Vec::new(),
            cursor: 0,
        })
    }
}

impl ProcInstance for DeliveryRun {
    fn next(&mut self, results: Option<&[Vec<Row>]>) -> Step {
        match self.stage {
            0 => {
                self.stage = 1;
                Step::Queries(vec![QueryInvocation::new(0, vec![self.w_id.clone(), Value::Int(0)])])
            }
            1 => {
                let rows = &results.unwrap()[0];
                self.orders = rows
                    .iter()
                    .take(DELIVERY_BATCH)
                    .map(|r| (r[1].clone(), r[2].clone()))
                    .collect();
                if self.orders.is_empty() {
                    return Step::Commit; // nothing to deliver
                }
                self.stage = 2;
                self.emit_order()
            }
            2 => {
                // GetOrderLines is always the last query of the previous
                // batch; charge its sum to the customer, then move on.
                let lines = results.unwrap().last().unwrap();
                let amount: i64 = lines.iter().map(|l| l[5].expect_int()).sum();
                let (_, c_id) = &self.orders[self.cursor];
                let mut invs = vec![QueryInvocation::new(
                    3,
                    vec![self.w_id.clone(), c_id.clone(), Value::Int(amount)],
                )];
                self.cursor += 1;
                if self.cursor < self.orders.len() {
                    if let Step::Queries(mut next) = self.emit_order() {
                        invs.append(&mut next);
                    }
                } else {
                    self.stage = 3;
                }
                Step::Queries(invs)
            }
            _ => Step::Commit,
        }
    }
}

impl DeliveryRun {
    fn emit_order(&self) -> Step {
        let (o_id, _) = &self.orders[self.cursor];
        Step::Queries(vec![
            QueryInvocation::new(1, vec![self.w_id.clone(), o_id.clone(), self.carrier.clone()]),
            QueryInvocation::new(2, vec![self.w_id.clone(), o_id.clone()]),
        ])
    }
}

// ---------------------------------------------------------------------------
// Procedure I: NewOrder(w_id, o_id, c_id, i_ids[], i_w_ids[], i_qtys[])
// ---------------------------------------------------------------------------

struct NewOrder {
    def: ProcDef,
}

impl NewOrder {
    fn new() -> Self {
        NewOrder {
            def: ProcDef {
                name: "NewOrder".into(),
                queries: vec![
                    q(
                        "GetWarehouse",
                        tables::WAREHOUSE,
                        QueryOp::GetByKey { key_params: vec![0] },
                        PartitionHint::Param(0),
                    ),
                    q(
                        "CheckStock",
                        tables::STOCK,
                        QueryOp::GetByKey { key_params: vec![1, 0] }, // (S_W_ID, S_I_ID) from (i_id, w_id)
                        PartitionHint::Param(1),
                    ),
                    q("InsertOrder", tables::ORDERS, QueryOp::InsertRow, PartitionHint::Param(0)),
                    q(
                        "InsertOrdLine",
                        tables::ORDER_LINE,
                        QueryOp::InsertRow,
                        PartitionHint::Param(0),
                    ),
                    q(
                        "UpdateStock",
                        tables::STOCK,
                        QueryOp::UpdateByKey {
                            key_params: vec![0, 1],
                            sets: vec![
                                ColumnOp::Add { column: 2, param: 2 }, // qty -= n (param negative)
                                ColumnOp::Add { column: 3, param: 3 }, // ytd += n
                            ],
                        },
                        PartitionHint::Param(0),
                    ),
                ],
                read_only: false,
                can_abort: true,
            },
        }
    }
}

struct NewOrderRun {
    w_id: Value,
    o_id: Value,
    c_id: Value,
    i_ids: Vec<Value>,
    i_w_ids: Vec<Value>,
    i_qtys: Vec<Value>,
    stage: u8,
}

impl Procedure for NewOrder {
    fn def(&self) -> &ProcDef {
        &self.def
    }
    fn instantiate(&self, args: &[Value]) -> Box<dyn ProcInstance> {
        Box::new(NewOrderRun {
            w_id: args[0].clone(),
            o_id: args[1].clone(),
            c_id: args[2].clone(),
            i_ids: args[3].as_array().expect("i_ids").to_vec(),
            i_w_ids: args[4].as_array().expect("i_w_ids").to_vec(),
            i_qtys: args[5].as_array().expect("i_qtys").to_vec(),
            stage: 0,
        })
    }
}

impl ProcInstance for NewOrderRun {
    fn next(&mut self, results: Option<&[Vec<Row>]>) -> Step {
        match self.stage {
            0 => {
                // Batch 1 (Fig. 2): GetWarehouse + one CheckStock per item.
                self.stage = 1;
                let mut invs = vec![QueryInvocation::new(0, vec![self.w_id.clone()])];
                for (i_id, i_w) in self.i_ids.iter().zip(&self.i_w_ids) {
                    invs.push(QueryInvocation::new(1, vec![i_id.clone(), i_w.clone()]));
                }
                Step::Queries(invs)
            }
            1 => {
                let results = results.unwrap();
                // results[0] = warehouse; results[1..] = stock rows.
                for (i, stock) in results[1..].iter().enumerate() {
                    if stock.is_empty() {
                        return Step::Abort(format!("invalid item {}", self.i_ids[i]));
                    }
                }
                self.stage = 2;
                // Batch 2 (Fig. 2): InsertOrder + (InsertOrdLine, UpdateStock)*.
                let mut invs = vec![QueryInvocation::new(
                    2,
                    vec![self.w_id.clone(), self.o_id.clone(), self.c_id.clone(), Value::Int(0)],
                )];
                for (ol, ((i_id, i_w), qty)) in
                    self.i_ids.iter().zip(&self.i_w_ids).zip(&self.i_qtys).enumerate()
                {
                    invs.push(QueryInvocation::new(
                        3,
                        vec![
                            i_w.clone(),
                            self.w_id.clone(),
                            self.o_id.clone(),
                            Value::Int(ol as i64),
                            i_id.clone(),
                            qty.clone(),
                        ],
                    ));
                    invs.push(QueryInvocation::new(
                        4,
                        vec![i_w.clone(), i_id.clone(), Value::Int(-qty.expect_int()), qty.clone()],
                    ));
                }
                Step::Queries(invs)
            }
            _ => Step::Commit,
        }
    }
}

// ---------------------------------------------------------------------------
// Procedure J: OrderStatus(w_id, c_id)  — read-only, single-partition
// ---------------------------------------------------------------------------

struct OrderStatus {
    def: ProcDef,
}

impl OrderStatus {
    fn new() -> Self {
        OrderStatus {
            def: ProcDef {
                name: "OrderStatus".into(),
                queries: vec![
                    q(
                        "GetCustomer",
                        tables::CUSTOMER,
                        QueryOp::GetByKey { key_params: vec![0, 1] },
                        PartitionHint::Param(0),
                    ),
                    q(
                        "GetCustomerOrders",
                        tables::ORDERS,
                        QueryOp::LookupBy { column: 2, param: 1 },
                        PartitionHint::Param(0),
                    ),
                    q(
                        "GetOrderLines",
                        tables::ORDER_LINE,
                        QueryOp::LookupBy { column: 2, param: 1 },
                        PartitionHint::Param(0),
                    ),
                ],
                read_only: true,
                can_abort: false,
            },
        }
    }
}

struct OrderStatusRun {
    w_id: Value,
    c_id: Value,
    stage: u8,
}

impl Procedure for OrderStatus {
    fn def(&self) -> &ProcDef {
        &self.def
    }
    fn instantiate(&self, args: &[Value]) -> Box<dyn ProcInstance> {
        Box::new(OrderStatusRun { w_id: args[0].clone(), c_id: args[1].clone(), stage: 0 })
    }
}

impl ProcInstance for OrderStatusRun {
    fn next(&mut self, results: Option<&[Vec<Row>]>) -> Step {
        match self.stage {
            0 => {
                self.stage = 1;
                Step::Queries(vec![
                    QueryInvocation::new(0, vec![self.w_id.clone(), self.c_id.clone()]),
                    QueryInvocation::new(1, vec![self.w_id.clone(), self.c_id.clone()]),
                ])
            }
            1 => {
                let orders = &results.unwrap()[1];
                // Most recent order = max O_ID.
                let last = orders.iter().map(|r| r[1].expect_int()).max();
                match last {
                    None => Step::Commit, // customer has no orders
                    Some(o) => {
                        self.stage = 2;
                        Step::Queries(vec![QueryInvocation::new(
                            2,
                            vec![self.w_id.clone(), Value::Int(o)],
                        )])
                    }
                }
            }
            _ => Step::Commit,
        }
    }
}

// ---------------------------------------------------------------------------
// Procedure K: Payment(w_id, c_w_id, c_id, amount, h_id)
// ---------------------------------------------------------------------------

struct Payment {
    def: ProcDef,
}

impl Payment {
    fn new() -> Self {
        Payment {
            def: ProcDef {
                name: "Payment".into(),
                queries: vec![
                    q(
                        "GetCustomer",
                        tables::CUSTOMER,
                        QueryOp::GetByKey { key_params: vec![0, 1] },
                        PartitionHint::Param(0),
                    ),
                    q(
                        "GetWarehouse",
                        tables::WAREHOUSE,
                        QueryOp::GetByKey { key_params: vec![0] },
                        PartitionHint::Param(0),
                    ),
                    q(
                        "UpdateWarehouseBalance",
                        tables::WAREHOUSE,
                        QueryOp::UpdateByKey {
                            key_params: vec![0],
                            sets: vec![ColumnOp::Add { column: 2, param: 1 }],
                        },
                        PartitionHint::Param(0),
                    ),
                    // Good-credit / bad-credit conditional branch (Fig. 10b).
                    q(
                        "UpdateGCCustomer",
                        tables::CUSTOMER,
                        QueryOp::UpdateByKey {
                            key_params: vec![0, 1],
                            sets: vec![ColumnOp::Add { column: 3, param: 2 }],
                        },
                        PartitionHint::Param(0),
                    ),
                    q(
                        "UpdateBCCustomer",
                        tables::CUSTOMER,
                        QueryOp::UpdateByKey {
                            key_params: vec![0, 1],
                            sets: vec![
                                ColumnOp::Add { column: 3, param: 2 },
                                ColumnOp::Add { column: 4, param: 2 },
                            ],
                        },
                        PartitionHint::Param(0),
                    ),
                    q(
                        "InsertHistory",
                        tables::HISTORY,
                        QueryOp::InsertRow,
                        PartitionHint::Param(0),
                    ),
                ],
                read_only: false,
                can_abort: false,
            },
        }
    }
}

struct PaymentRun {
    w_id: Value,
    c_w_id: Value,
    c_id: Value,
    amount: Value,
    h_id: Value,
    stage: u8,
}

impl Procedure for Payment {
    fn def(&self) -> &ProcDef {
        &self.def
    }
    fn instantiate(&self, args: &[Value]) -> Box<dyn ProcInstance> {
        Box::new(PaymentRun {
            w_id: args[0].clone(),
            c_w_id: args[1].clone(),
            c_id: args[2].clone(),
            amount: args[3].clone(),
            h_id: args[4].clone(),
            stage: 0,
        })
    }
}

impl ProcInstance for PaymentRun {
    fn next(&mut self, results: Option<&[Vec<Row>]>) -> Step {
        match self.stage {
            0 => {
                self.stage = 1;
                Step::Queries(vec![
                    QueryInvocation::new(0, vec![self.c_w_id.clone(), self.c_id.clone()]),
                    QueryInvocation::new(1, vec![self.w_id.clone()]),
                ])
            }
            1 => {
                let customer = &results.unwrap()[0];
                let Some(c) = customer.first() else {
                    return Step::Abort("unknown customer".into());
                };
                let bad_credit = c[2].as_str() == Some("BC");
                self.stage = 2;
                let cust_update = if bad_credit { 4 } else { 3 };
                Step::Queries(vec![
                    QueryInvocation::new(2, vec![self.w_id.clone(), self.amount.clone()]),
                    QueryInvocation::new(
                        cust_update,
                        vec![self.c_w_id.clone(), self.c_id.clone(), self.amount.clone()],
                    ),
                    QueryInvocation::new(
                        5,
                        vec![
                            self.w_id.clone(),
                            self.h_id.clone(),
                            self.c_id.clone(),
                            self.amount.clone(),
                        ],
                    ),
                ])
            }
            _ => Step::Commit,
        }
    }
}

// ---------------------------------------------------------------------------
// Procedure L: StockLevel(w_id, threshold)  — read-only, single-partition
// ---------------------------------------------------------------------------

struct StockLevel {
    def: ProcDef,
}

impl StockLevel {
    fn new() -> Self {
        StockLevel {
            def: ProcDef {
                name: "StockLevel".into(),
                queries: vec![
                    q(
                        "GetRecentOrders",
                        tables::ORDERS,
                        QueryOp::LookupBy { column: 3, param: 1 },
                        PartitionHint::Param(0),
                    ),
                    q(
                        "GetOrderLines",
                        tables::ORDER_LINE,
                        QueryOp::LookupBy { column: 2, param: 1 },
                        PartitionHint::Param(0),
                    ),
                    q(
                        "CheckStockLevel",
                        tables::STOCK,
                        QueryOp::GetByKey { key_params: vec![0, 1] },
                        PartitionHint::Param(0),
                    ),
                ],
                read_only: true,
                can_abort: false,
            },
        }
    }
}

struct StockLevelRun {
    w_id: Value,
    stage: u8,
    items: Vec<i64>,
}

impl Procedure for StockLevel {
    fn def(&self) -> &ProcDef {
        &self.def
    }
    fn instantiate(&self, args: &[Value]) -> Box<dyn ProcInstance> {
        Box::new(StockLevelRun { w_id: args[0].clone(), stage: 0, items: Vec::new() })
    }
}

impl ProcInstance for StockLevelRun {
    fn next(&mut self, results: Option<&[Vec<Row>]>) -> Step {
        match self.stage {
            0 => {
                self.stage = 1;
                Step::Queries(vec![QueryInvocation::new(0, vec![self.w_id.clone(), Value::Int(0)])])
            }
            1 => {
                let orders = &results.unwrap()[0];
                let recent: Vec<i64> =
                    orders.iter().rev().take(5).map(|r| r[1].expect_int()).collect();
                if recent.is_empty() {
                    return Step::Commit;
                }
                self.stage = 2;
                Step::Queries(
                    recent
                        .iter()
                        .map(|&o| QueryInvocation::new(1, vec![self.w_id.clone(), Value::Int(o)]))
                        .collect(),
                )
            }
            2 => {
                let mut items: FxHashSet<i64> = FxHashSet::default();
                for lines in results.unwrap() {
                    for l in lines {
                        items.insert(l[4].expect_int());
                    }
                }
                self.items = items.into_iter().collect();
                self.items.sort_unstable();
                self.items.truncate(8);
                if self.items.is_empty() {
                    return Step::Commit;
                }
                self.stage = 3;
                Step::Queries(
                    self.items
                        .iter()
                        .map(|&i| QueryInvocation::new(2, vec![self.w_id.clone(), Value::Int(i)]))
                        .collect(),
                )
            }
            _ => Step::Commit,
        }
    }
}

/// Builds the TPC-C procedure registry (letters H–L of Table 4).
pub fn registry() -> ProcedureRegistry {
    ProcedureRegistry::new(vec![
        Box::new(Delivery::new()),    // H
        Box::new(NewOrder::new()),    // I
        Box::new(OrderStatus::new()), // J
        Box::new(Payment::new()),     // K
        Box::new(StockLevel::new()),  // L
    ])
}

/// TPC-C request generator: 45% NewOrder, 43% Payment, 4% each of the rest.
pub struct Generator {
    parts: u32,
    seed: u64,
    rngs: FxHashMap<u64, SmallRng>,
    next_o_id: i64,
    next_h_id: i64,
    /// Fraction of NewOrder items supplied by a remote warehouse.
    pub remote_item_prob: f64,
    /// Fraction of Payments for a customer of another warehouse.
    pub remote_payment_prob: f64,
    /// Fraction of NewOrders carrying an invalid item (spec: 1%).
    pub invalid_item_prob: f64,
}

impl Generator {
    /// New generator with the spec-default remote/invalid probabilities.
    pub fn new(parts: u32, seed: u64) -> Self {
        Generator {
            parts,
            seed,
            rngs: FxHashMap::default(),
            next_o_id: SEED_ORDERS,
            next_h_id: 0,
            remote_item_prob: 0.02,
            remote_payment_prob: 0.15,
            invalid_item_prob: 0.01,
        }
    }

    /// An independent generator for one client stream: identical per-client
    /// RNG streams, with order/history ids drawn from a per-client block
    /// (stride 2^40) so concurrent streams never collide on inserts.
    pub fn for_client(parts: u32, seed: u64, client: u64) -> Self {
        let mut g = Generator::new(parts, seed);
        g.next_o_id = SEED_ORDERS + ((client as i64) << 40);
        g.next_h_id = (client as i64) << 40;
        g
    }

    /// Generates a NewOrder argument vector for warehouse `w`.
    pub fn new_order_args(&mut self, client: u64, w: i64) -> Vec<Value> {
        self.next_o_id += 1;
        let o_id = self.next_o_id;
        let parts = i64::from(self.parts);
        let seed = self.seed;
        let remote_prob = self.remote_item_prob;
        let invalid_prob = self.invalid_item_prob;
        let rng = self.rngs.entry(client).or_insert_with(|| seeded_rng(derive_seed(seed, client)));
        let n_items = rng.gen_range(3..=8);
        let invalid = invalid_prob > 0.0 && rng.gen_bool(invalid_prob);
        let mut i_ids = Vec::with_capacity(n_items);
        let mut i_w_ids = Vec::with_capacity(n_items);
        let mut i_qtys = Vec::with_capacity(n_items);
        for k in 0..n_items {
            let id =
                if invalid && k == n_items - 1 { INVALID_ITEM } else { rng.gen_range(0..ITEMS) };
            i_ids.push(Value::Int(id));
            let remote = parts > 1 && remote_prob > 0.0 && rng.gen_bool(remote_prob);
            let i_w = if remote {
                let mut other = rng.gen_range(0..parts);
                if other == w {
                    other = (other + 1) % parts;
                }
                other
            } else {
                w
            };
            i_w_ids.push(Value::Int(i_w));
            i_qtys.push(Value::Int(rng.gen_range(1..=10)));
        }
        vec![
            Value::Int(w),
            Value::Int(o_id),
            Value::Int(rng.gen_range(0..CUSTOMERS_PER_WAREHOUSE)),
            Value::Array(i_ids),
            Value::Array(i_w_ids),
            Value::Array(i_qtys),
        ]
    }
}

impl RequestGenerator for Generator {
    fn next_request(&mut self, client: u64) -> (ProcId, Vec<Value>) {
        let parts = i64::from(self.parts);
        let seed = self.seed;
        let (mix, w) = {
            let rng =
                self.rngs.entry(client).or_insert_with(|| seeded_rng(derive_seed(seed, client)));
            (rng.gen_range(0..100u32), rng.gen_range(0..parts))
        };
        match mix {
            0..=44 => (1, self.new_order_args(client, w)),
            45..=87 => {
                self.next_h_id += 1;
                let h_id = self.next_h_id;
                let remote_prob = self.remote_payment_prob;
                let rng = self.rngs.get_mut(&client).unwrap();
                let remote = parts > 1 && remote_prob > 0.0 && rng.gen_bool(remote_prob);
                let c_w = if remote {
                    let mut other = rng.gen_range(0..parts);
                    if other == w {
                        other = (other + 1) % parts;
                    }
                    other
                } else {
                    w
                };
                (
                    3, // Payment
                    vec![
                        Value::Int(w),
                        Value::Int(c_w),
                        Value::Int(rng.gen_range(0..CUSTOMERS_PER_WAREHOUSE)),
                        Value::Int(rng.gen_range(1..500)),
                        Value::Int(h_id),
                    ],
                )
            }
            88..=91 => {
                let rng = self.rngs.get_mut(&client).unwrap();
                (
                    2, // OrderStatus
                    vec![Value::Int(w), Value::Int(rng.gen_range(0..CUSTOMERS_PER_WAREHOUSE))],
                )
            }
            92..=95 => (0, vec![Value::Int(w), Value::Int(1)]), // Delivery
            _ => (4, vec![Value::Int(w), Value::Int(50)]),      // StockLevel
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use engine::run_offline;

    #[test]
    fn loads_expected_rows() {
        let db = database(2);
        assert_eq!(db.total_rows(tables::WAREHOUSE), 2);
        assert_eq!(db.total_rows(tables::CUSTOMER), 600);
        assert_eq!(db.total_rows(tables::STOCK), 800);
        assert_eq!(db.total_rows(tables::ORDERS), 40);
    }

    #[test]
    fn new_order_local_is_single_partition() {
        let mut db = database(2);
        let reg = registry();
        let cat = reg.catalog();
        let args = vec![
            Value::Int(0),
            Value::Int(1000),
            Value::Int(5),
            Value::Array(vec![Value::Int(1), Value::Int(2)]),
            Value::Array(vec![Value::Int(0), Value::Int(0)]),
            Value::Array(vec![Value::Int(3), Value::Int(4)]),
        ];
        let out = run_offline(&mut db, &reg, &cat, 1, &args, true).unwrap();
        assert!(out.committed);
        assert!(out.touched.is_single());
        // Order + lines + stock effects landed.
        assert!(db.get(0, tables::ORDERS, &[Value::Int(0), Value::Int(1000)]).is_some());
        assert_eq!(
            db.get(0, tables::STOCK, &[Value::Int(0), Value::Int(1)]).unwrap()[2],
            Value::Int(10_000 - 3)
        );
    }

    #[test]
    fn new_order_remote_item_is_distributed() {
        let mut db = database(2);
        let reg = registry();
        let cat = reg.catalog();
        let args = vec![
            Value::Int(0),
            Value::Int(1001),
            Value::Int(5),
            Value::Array(vec![Value::Int(1), Value::Int(2)]),
            Value::Array(vec![Value::Int(0), Value::Int(1)]),
            Value::Array(vec![Value::Int(1), Value::Int(1)]),
        ];
        let out = run_offline(&mut db, &reg, &cat, 1, &args, true).unwrap();
        assert!(out.committed);
        assert_eq!(out.touched.len(), 2);
        // Remote order line stored at the supplying warehouse's partition.
        assert!(db
            .get(1, tables::ORDER_LINE, &[Value::Int(0), Value::Int(1001), Value::Int(1)])
            .is_some());
    }

    #[test]
    fn new_order_invalid_item_aborts_and_rolls_back() {
        let mut db = database(2);
        let reg = registry();
        let cat = reg.catalog();
        let args = vec![
            Value::Int(0),
            Value::Int(1002),
            Value::Int(5),
            Value::Array(vec![Value::Int(1), Value::Int(INVALID_ITEM)]),
            Value::Array(vec![Value::Int(0), Value::Int(0)]),
            Value::Array(vec![Value::Int(1), Value::Int(1)]),
        ];
        let out = run_offline(&mut db, &reg, &cat, 1, &args, true).unwrap();
        assert!(!out.committed);
        assert!(db.get(0, tables::ORDERS, &[Value::Int(0), Value::Int(1002)]).is_none());
    }

    #[test]
    fn payment_branches_on_credit() {
        let mut db = database(2);
        let reg = registry();
        let cat = reg.catalog();
        // Customer 0 is BC (c % 10 == 0), customer 1 is GC.
        for (c, expected_query) in [(0i64, "UpdateBCCustomer"), (1i64, "UpdateGCCustomer")] {
            let args = vec![
                Value::Int(0),
                Value::Int(0),
                Value::Int(c),
                Value::Int(100),
                Value::Int(9000 + c),
            ];
            let out = run_offline(&mut db, &reg, &cat, 3, &args, true).unwrap();
            assert!(out.committed);
            let names: Vec<String> = out
                .record
                .queries
                .iter()
                .map(|qr| cat.proc(3).query(qr.query).name.clone())
                .collect();
            assert!(names.iter().any(|n| n == expected_query), "customer {c}: {names:?}");
        }
    }

    #[test]
    fn payment_remote_customer_is_distributed() {
        let mut db = database(2);
        let reg = registry();
        let cat = reg.catalog();
        let args =
            vec![Value::Int(0), Value::Int(1), Value::Int(7), Value::Int(100), Value::Int(5000)];
        let out = run_offline(&mut db, &reg, &cat, 3, &args, true).unwrap();
        assert!(out.committed);
        assert_eq!(out.touched.len(), 2);
    }

    #[test]
    fn delivery_processes_seed_orders() {
        let mut db = database(2);
        let reg = registry();
        let cat = reg.catalog();
        let out =
            run_offline(&mut db, &reg, &cat, 0, &[Value::Int(0), Value::Int(7)], true).unwrap();
        assert!(out.committed);
        assert!(out.touched.is_single());
        // At least DELIVERY_BATCH orders got a carrier.
        let delivered = db.lookup_by(0, tables::ORDERS, 3, &Value::Int(7));
        assert_eq!(delivered.len(), DELIVERY_BATCH);
        // Long transaction: 1 + batch*(2 queries) + batch charge queries.
        assert!(out.record.queries.len() > 20, "{}", out.record.queries.len());
    }

    #[test]
    fn order_status_reads_last_order() {
        let mut db = database(2);
        let reg = registry();
        let cat = reg.catalog();
        let out =
            run_offline(&mut db, &reg, &cat, 2, &[Value::Int(0), Value::Int(3)], true).unwrap();
        assert!(out.committed);
        assert!(out.touched.is_single());
        assert_eq!(out.record.queries.len(), 3);
    }

    #[test]
    fn stock_level_is_read_only_single_partition() {
        let mut db = database(2);
        let reg = registry();
        let cat = reg.catalog();
        let before = db.total_rows(tables::STOCK);
        let out =
            run_offline(&mut db, &reg, &cat, 4, &[Value::Int(1), Value::Int(50)], true).unwrap();
        assert!(out.committed);
        assert!(out.touched.is_single());
        assert_eq!(db.total_rows(tables::STOCK), before);
    }

    #[test]
    fn generator_mix_and_determinism() {
        let mut a = Generator::new(4, 3);
        let mut b = Generator::new(4, 3);
        let mut counts = [0u32; 5];
        for i in 0..1000 {
            let (p, args) = a.next_request(i % 16);
            assert_eq!((p, args.clone()), b.next_request(i % 16));
            counts[p as usize] += 1;
        }
        assert!(counts[1] > 350, "NewOrder should dominate: {counts:?}");
        assert!(counts[3] > 330, "Payment close behind: {counts:?}");
        assert!(counts[0] > 0 && counts[2] > 0 && counts[4] > 0);
    }
}
