//! AuctionMark (paper §6.1, \[1\]).
//!
//! Ten stored procedures over auction data partitioned by the *seller's*
//! user id. Buyer/seller interactions (`NewBid`, `NewPurchase`) touch two
//! partitions; `GetUserInfo` has the conditional single-partition vs
//! multi-partition branches of Fig. 10c; `PostAuction` takes arbitrary-
//! length arrays (the paper's OP2 trouble case); and `CheckWinningBids` is
//! the >175-query maintenance transaction for which the paper disables
//! Houdini entirely (Table 4 row M).

use common::{derive_seed, seeded_rng, FxHashMap, ProcId, Value};
use engine::{
    ColumnOp, PartitionHint, ProcDef, ProcInstance, Procedure, ProcedureRegistry, QueryDef,
    QueryInvocation, QueryOp, RequestGenerator, Step,
};
use rand::rngs::SmallRng;
use rand::Rng;
use storage::{Database, Row, Schema, UndoLog};

/// Users loaded per partition.
pub const USERS_PER_PARTITION: u32 = 100;
/// Pre-loaded items per user.
pub const ITEMS_PER_USER: i64 = 3;
/// Item status values.
pub mod status {
    /// Auction open.
    pub const OPEN: i64 = 0;
    /// Auction ending (picked up by CheckWinningBids).
    pub const ENDING: i64 = 1;
    /// Auction closed.
    pub const CLOSED: i64 = 2;
}

/// Table ids, in schema order.
pub mod tables {
    /// USERACCT(U_ID, RATING, BALANCE)
    pub const USERACCT: usize = 0;
    /// ITEM(SELLER_ID, I_ID, PRICE, STATUS, NBIDS)
    pub const ITEM: usize = 1;
    /// BID(SELLER_ID, I_ID, BID_ID, BUYER_ID, AMOUNT)
    pub const BID: usize = 2;
    /// COMMENT(SELLER_ID, I_ID, CM_ID, FROM_ID)
    pub const COMMENT: usize = 3;
    /// FEEDBACK(USER_ID, FB_ID, FROM_ID, RATING)
    pub const FEEDBACK: usize = 4;
    /// WATCH(USER_ID, SELLER_ID, I_ID)
    pub const WATCH: usize = 5;
    /// PURCHASE(SELLER_ID, I_ID, PU_ID, BUYER_ID)
    pub const PURCHASE: usize = 6;
}

/// Builds and loads the AuctionMark database.
pub fn database(parts: u32) -> Database {
    let schemas = vec![
        Schema::new("USERACCT", &["U_ID", "RATING", "BALANCE"], &[0], Some(0)),
        Schema::new("ITEM", &["SELLER_ID", "I_ID", "PRICE", "STATUS", "NBIDS"], &[0, 1], Some(0)),
        Schema::new(
            "BID",
            &["SELLER_ID", "I_ID", "BID_ID", "BUYER_ID", "AMOUNT"],
            &[0, 1, 2],
            Some(0),
        ),
        Schema::new("COMMENT", &["SELLER_ID", "I_ID", "CM_ID", "FROM_ID"], &[0, 1, 2], Some(0)),
        Schema::new("FEEDBACK", &["USER_ID", "FB_ID", "FROM_ID", "RATING"], &[0, 1], Some(0)),
        Schema::new("WATCH", &["USER_ID", "SELLER_ID", "I_ID"], &[0, 1, 2], Some(0)),
        Schema::new("PURCHASE", &["SELLER_ID", "I_ID", "PU_ID", "BUYER_ID"], &[0, 1, 2], Some(0)),
    ];
    let mut db = Database::new(
        schemas,
        parts,
        &[
            ("ITEM", 0),     // items by seller (GetSellerItems)
            ("ITEM", 3),     // items by status (CheckWinningBids)
            ("BID", 1),      // bids by item
            ("BID", 3),      // bids by buyer (GetBuyerItems)
            ("FEEDBACK", 2), // feedback by author (GetBuyerFeedback)
            ("WATCH", 0),    // watches by user
        ],
    );
    let mut undo = UndoLog::new();
    let total_users = i64::from(parts * USERS_PER_PARTITION);
    for u in 0..total_users {
        let p = db.partition_for_value(&Value::Int(u));
        db.insert(
            p,
            tables::USERACCT,
            vec![Value::Int(u), Value::Int(u % 5), Value::Int(1000)],
            &mut undo,
        )
        .expect("load user");
        for k in 0..ITEMS_PER_USER {
            let i_id = u * 10 + k;
            let st = if (u + k) % 17 == 0 { status::ENDING } else { status::OPEN };
            db.insert(
                p,
                tables::ITEM,
                vec![
                    Value::Int(u),
                    Value::Int(i_id),
                    Value::Int(100),
                    Value::Int(st),
                    Value::Int(2),
                ],
                &mut undo,
            )
            .expect("load item");
            for b in 0..2i64 {
                let buyer = (u + b + 1) % total_users;
                db.insert(
                    p,
                    tables::BID,
                    vec![
                        Value::Int(u),
                        Value::Int(i_id),
                        Value::Int(i_id * 100 + b),
                        Value::Int(buyer),
                        Value::Int(100 + b),
                    ],
                    &mut undo,
                )
                .expect("load bid");
            }
        }
        for f in 0..2i64 {
            db.insert(
                p,
                tables::FEEDBACK,
                vec![
                    Value::Int(u),
                    Value::Int(f),
                    Value::Int((u + f + 3) % total_users),
                    Value::Int(5),
                ],
                &mut undo,
            )
            .expect("load feedback");
            let seller = (u + f + 1) % total_users;
            db.insert(
                p,
                tables::WATCH,
                vec![Value::Int(u), Value::Int(seller), Value::Int(seller * 10)],
                &mut undo,
            )
            .expect("load watch");
        }
    }
    db
}

fn q(name: &str, table: usize, op: QueryOp, hint: PartitionHint) -> QueryDef {
    QueryDef { name: name.into(), table, op, hint }
}

/// A generic linear procedure runner: a fixed list of batches with optional
/// abort-if-empty checks on the previous batch's first result.
struct Linear {
    batches: Vec<Vec<QueryInvocation>>,
    /// `abort_if_empty[i]` aborts before issuing batch `i` if batch `i-1`'s
    /// first query returned no rows.
    abort_if_empty: Vec<bool>,
    cursor: usize,
}

impl Linear {
    fn new(batches: Vec<Vec<QueryInvocation>>, abort_if_empty: Vec<bool>) -> Self {
        debug_assert_eq!(batches.len(), abort_if_empty.len());
        Linear { batches, abort_if_empty, cursor: 0 }
    }
}

impl ProcInstance for Linear {
    fn next(&mut self, results: Option<&[Vec<Row>]>) -> Step {
        if self.cursor < self.batches.len() {
            if self.cursor > 0 && self.abort_if_empty[self.cursor] {
                if let Some(rs) = results {
                    if rs.first().map(Vec::is_empty).unwrap_or(true) {
                        return Step::Abort("empty prerequisite".into());
                    }
                }
            }
            let b = std::mem::take(&mut self.batches[self.cursor]);
            self.cursor += 1;
            Step::Queries(b)
        } else {
            Step::Commit
        }
    }
}

// ---------------------------------------------------------------------------
// Procedure M: CheckWinningBids()  — >175 queries; Houdini disabled
// ---------------------------------------------------------------------------

struct CheckWinningBids {
    def: ProcDef,
}

/// Items processed per CheckWinningBids invocation.
const CWB_ITEMS: usize = 60;

impl CheckWinningBids {
    fn new() -> Self {
        CheckWinningBids {
            def: ProcDef {
                name: "CheckWinningBids".into(),
                queries: vec![
                    q(
                        "GetEndedItems",
                        tables::ITEM,
                        QueryOp::LookupBy { column: 3, param: 0 },
                        PartitionHint::Broadcast,
                    ),
                    q(
                        "GetItemRec",
                        tables::ITEM,
                        QueryOp::GetByKey { key_params: vec![0, 1] },
                        PartitionHint::Param(0),
                    ),
                    q(
                        "GetItemBids",
                        tables::BID,
                        QueryOp::LookupBy { column: 1, param: 1 },
                        PartitionHint::Param(0),
                    ),
                    q(
                        "GetMaxBidder",
                        tables::USERACCT,
                        QueryOp::GetByKey { key_params: vec![0] },
                        PartitionHint::Param(0),
                    ),
                ],
                read_only: true,
                can_abort: false,
            },
        }
    }
}

struct CheckWinningBidsRun {
    stage: u8,
    items: Vec<(Value, Value)>, // (seller, i_id)
    cursor: usize,
}

impl Procedure for CheckWinningBids {
    fn def(&self) -> &ProcDef {
        &self.def
    }
    fn instantiate(&self, _args: &[Value]) -> Box<dyn ProcInstance> {
        Box::new(CheckWinningBidsRun { stage: 0, items: Vec::new(), cursor: 0 })
    }
}

impl ProcInstance for CheckWinningBidsRun {
    fn next(&mut self, results: Option<&[Vec<Row>]>) -> Step {
        match self.stage {
            0 => {
                self.stage = 1;
                Step::Queries(vec![QueryInvocation::new(0, vec![Value::Int(status::ENDING)])])
            }
            1 => {
                let rows = &results.unwrap()[0];
                self.items =
                    rows.iter().take(CWB_ITEMS).map(|r| (r[0].clone(), r[1].clone())).collect();
                if self.items.is_empty() {
                    return Step::Commit;
                }
                self.stage = 2;
                let (s, i) = &self.items[0];
                Step::Queries(vec![
                    QueryInvocation::new(1, vec![s.clone(), i.clone()]),
                    QueryInvocation::new(2, vec![s.clone(), i.clone()]),
                ])
            }
            2 => {
                // Max bidder of the bids we just read.
                let bids = results.unwrap().last().unwrap();
                let max_bidder = bids
                    .iter()
                    .max_by_key(|b| b[4].expect_int())
                    .map(|b| b[3].clone())
                    .unwrap_or(Value::Int(0));
                self.stage = 3;
                Step::Queries(vec![QueryInvocation::new(3, vec![max_bidder])])
            }
            3 => {
                self.cursor += 1;
                if self.cursor < self.items.len() {
                    self.stage = 2;
                    let (s, i) = &self.items[self.cursor];
                    Step::Queries(vec![
                        QueryInvocation::new(1, vec![s.clone(), i.clone()]),
                        QueryInvocation::new(2, vec![s.clone(), i.clone()]),
                    ])
                } else {
                    Step::Commit
                }
            }
            _ => Step::Commit,
        }
    }
}

// ---------------------------------------------------------------------------
// Simple linear procedures
// ---------------------------------------------------------------------------

macro_rules! linear_proc {
    ($struct_name:ident, $build:expr) => {
        struct $struct_name {
            def: ProcDef,
        }
        impl Procedure for $struct_name {
            fn def(&self) -> &ProcDef {
                &self.def
            }
            fn instantiate(&self, args: &[Value]) -> Box<dyn ProcInstance> {
                #[allow(clippy::redundant_closure_call)]
                ($build)(args)
            }
        }
    };
}

// Procedure N: GetItem(seller_id, i_id)
linear_proc!(GetItem, |args: &[Value]| {
    Box::new(Linear::new(
        vec![vec![
            QueryInvocation::new(0, args.to_vec()),
            QueryInvocation::new(1, vec![args[0].clone()]),
        ]],
        vec![false],
    )) as Box<dyn ProcInstance>
});

impl GetItem {
    fn new() -> Self {
        GetItem {
            def: ProcDef {
                name: "GetItem".into(),
                queries: vec![
                    q(
                        "GetItemRec",
                        tables::ITEM,
                        QueryOp::GetByKey { key_params: vec![0, 1] },
                        PartitionHint::Param(0),
                    ),
                    q(
                        "GetSeller",
                        tables::USERACCT,
                        QueryOp::GetByKey { key_params: vec![0] },
                        PartitionHint::Param(0),
                    ),
                ],
                read_only: true,
                can_abort: false,
            },
        }
    }
}

// ---------------------------------------------------------------------------
// Procedure O: GetUserInfo(user_id, seller_items, buyer_items, feedback)
// ---------------------------------------------------------------------------

struct GetUserInfo {
    def: ProcDef,
}

impl GetUserInfo {
    fn new() -> Self {
        GetUserInfo {
            def: ProcDef {
                name: "GetUserInfo".into(),
                queries: vec![
                    q(
                        "GetUser",
                        tables::USERACCT,
                        QueryOp::GetByKey { key_params: vec![0] },
                        PartitionHint::Param(0),
                    ),
                    q(
                        "GetSellerItems",
                        tables::ITEM,
                        QueryOp::LookupBy { column: 0, param: 0 },
                        PartitionHint::Param(0),
                    ),
                    q(
                        "GetBuyerItems",
                        tables::BID,
                        QueryOp::LookupBy { column: 3, param: 0 },
                        PartitionHint::Broadcast,
                    ),
                    q(
                        "GetBuyerFeedback",
                        tables::FEEDBACK,
                        QueryOp::LookupBy { column: 2, param: 0 },
                        PartitionHint::Broadcast,
                    ),
                ],
                read_only: true,
                can_abort: false,
            },
        }
    }
}

impl Procedure for GetUserInfo {
    fn def(&self) -> &ProcDef {
        &self.def
    }
    fn instantiate(&self, args: &[Value]) -> Box<dyn ProcInstance> {
        let user = args[0].clone();
        let mut second: Vec<QueryInvocation> = Vec::new();
        if args[1].expect_int() != 0 {
            second.push(QueryInvocation::new(1, vec![user.clone()]));
        }
        if args[2].expect_int() != 0 {
            second.push(QueryInvocation::new(2, vec![user.clone()]));
        }
        if args[3].expect_int() != 0 {
            second.push(QueryInvocation::new(3, vec![user.clone()]));
        }
        let mut batches = vec![vec![QueryInvocation::new(0, vec![user])]];
        let mut aborts = vec![false];
        if !second.is_empty() {
            batches.push(second);
            aborts.push(false);
        }
        Box::new(Linear::new(batches, aborts))
    }
}

// Procedure P: GetWatchedItems(user_id)
linear_proc!(GetWatchedItems, |args: &[Value]| {
    Box::new(Linear::new(vec![vec![QueryInvocation::new(0, vec![args[0].clone()])]], vec![false]))
        as Box<dyn ProcInstance>
});

impl GetWatchedItems {
    fn new() -> Self {
        GetWatchedItems {
            def: ProcDef {
                name: "GetWatchedItems".into(),
                queries: vec![q(
                    "GetWatched",
                    tables::WATCH,
                    QueryOp::LookupBy { column: 0, param: 0 },
                    PartitionHint::Param(0),
                )],
                read_only: true,
                can_abort: false,
            },
        }
    }
}

// ---------------------------------------------------------------------------
// Procedure Q: NewBid(seller_id, i_id, bid_id, buyer_id, amount)
// ---------------------------------------------------------------------------

struct NewBid {
    def: ProcDef,
}

impl NewBid {
    fn new() -> Self {
        NewBid {
            def: ProcDef {
                name: "NewBid".into(),
                queries: vec![
                    q(
                        "GetItem",
                        tables::ITEM,
                        QueryOp::GetByKey { key_params: vec![0, 1] },
                        PartitionHint::Param(0),
                    ),
                    q("InsertBid", tables::BID, QueryOp::InsertRow, PartitionHint::Param(0)),
                    q(
                        "UpdateItemBids",
                        tables::ITEM,
                        QueryOp::UpdateByKey {
                            key_params: vec![0, 1],
                            sets: vec![
                                ColumnOp::Set { column: 2, param: 2 },
                                ColumnOp::Add { column: 4, param: 3 },
                            ],
                        },
                        PartitionHint::Param(0),
                    ),
                    q(
                        "UpdateBuyerBalance",
                        tables::USERACCT,
                        QueryOp::UpdateByKey {
                            key_params: vec![0],
                            sets: vec![ColumnOp::Add { column: 2, param: 1 }],
                        },
                        PartitionHint::Param(0),
                    ),
                ],
                read_only: false,
                can_abort: true,
            },
        }
    }
}

struct NewBidRun {
    args: Vec<Value>,
    stage: u8,
}

impl Procedure for NewBid {
    fn def(&self) -> &ProcDef {
        &self.def
    }
    fn instantiate(&self, args: &[Value]) -> Box<dyn ProcInstance> {
        Box::new(NewBidRun { args: args.to_vec(), stage: 0 })
    }
}

impl ProcInstance for NewBidRun {
    fn next(&mut self, results: Option<&[Vec<Row>]>) -> Step {
        let [seller, i_id, bid_id, buyer, amount] = &self.args[..] else {
            return Step::Abort("bad args".into());
        };
        match self.stage {
            0 => {
                self.stage = 1;
                Step::Queries(vec![QueryInvocation::new(0, vec![seller.clone(), i_id.clone()])])
            }
            1 => {
                let item = &results.unwrap()[0];
                match item.first() {
                    None => Step::Abort("no such item".into()),
                    Some(r) if r[3].expect_int() == status::CLOSED => {
                        Step::Abort("auction closed".into())
                    }
                    Some(_) => {
                        self.stage = 2;
                        Step::Queries(vec![
                            QueryInvocation::new(
                                1,
                                vec![
                                    seller.clone(),
                                    i_id.clone(),
                                    bid_id.clone(),
                                    buyer.clone(),
                                    amount.clone(),
                                ],
                            ),
                            QueryInvocation::new(
                                2,
                                vec![seller.clone(), i_id.clone(), amount.clone(), Value::Int(1)],
                            ),
                        ])
                    }
                }
            }
            2 => {
                self.stage = 3;
                Step::Queries(vec![QueryInvocation::new(
                    3,
                    vec![buyer.clone(), Value::Int(-amount.expect_int())],
                )])
            }
            _ => Step::Commit,
        }
    }
}

// Procedure R: NewComment(seller_id, i_id, cm_id, from_id) — shortest txn.
linear_proc!(NewComment, |args: &[Value]| {
    Box::new(Linear::new(
        vec![
            vec![QueryInvocation::new(0, vec![args[0].clone(), args[1].clone()])],
            vec![QueryInvocation::new(1, args.to_vec())],
        ],
        vec![false, true],
    )) as Box<dyn ProcInstance>
});

impl NewComment {
    fn new() -> Self {
        NewComment {
            def: ProcDef {
                name: "NewComment".into(),
                queries: vec![
                    q(
                        "GetItemRec",
                        tables::ITEM,
                        QueryOp::GetByKey { key_params: vec![0, 1] },
                        PartitionHint::Param(0),
                    ),
                    q(
                        "InsertComment",
                        tables::COMMENT,
                        QueryOp::InsertRow,
                        PartitionHint::Param(0),
                    ),
                ],
                read_only: false,
                can_abort: true,
            },
        }
    }
}

// Procedure S: NewItem(seller_id, i_id, price)
linear_proc!(NewItem, |args: &[Value]| {
    Box::new(Linear::new(
        vec![
            vec![QueryInvocation::new(0, vec![args[0].clone()])],
            vec![QueryInvocation::new(
                1,
                vec![
                    args[0].clone(),
                    args[1].clone(),
                    args[2].clone(),
                    Value::Int(status::OPEN),
                    Value::Int(0),
                ],
            )],
        ],
        vec![false, true],
    )) as Box<dyn ProcInstance>
});

impl NewItem {
    fn new() -> Self {
        NewItem {
            def: ProcDef {
                name: "NewItem".into(),
                queries: vec![
                    q(
                        "GetSeller",
                        tables::USERACCT,
                        QueryOp::GetByKey { key_params: vec![0] },
                        PartitionHint::Param(0),
                    ),
                    q("InsertItem", tables::ITEM, QueryOp::InsertRow, PartitionHint::Param(0)),
                ],
                read_only: false,
                can_abort: true,
            },
        }
    }
}

// ---------------------------------------------------------------------------
// Procedure T: NewPurchase(seller_id, i_id, pu_id, buyer_id, amount)
// ---------------------------------------------------------------------------

struct NewPurchase {
    def: ProcDef,
}

impl NewPurchase {
    fn new() -> Self {
        NewPurchase {
            def: ProcDef {
                name: "NewPurchase".into(),
                queries: vec![
                    q(
                        "GetItem",
                        tables::ITEM,
                        QueryOp::GetByKey { key_params: vec![0, 1] },
                        PartitionHint::Param(0),
                    ),
                    q(
                        "InsertPurchase",
                        tables::PURCHASE,
                        QueryOp::InsertRow,
                        PartitionHint::Param(0),
                    ),
                    q(
                        "UpdateItemStatus",
                        tables::ITEM,
                        QueryOp::UpdateByKey {
                            key_params: vec![0, 1],
                            sets: vec![ColumnOp::Set { column: 3, param: 2 }],
                        },
                        PartitionHint::Param(0),
                    ),
                    q(
                        "UpdateSellerBalance",
                        tables::USERACCT,
                        QueryOp::UpdateByKey {
                            key_params: vec![0],
                            sets: vec![ColumnOp::Add { column: 2, param: 1 }],
                        },
                        PartitionHint::Param(0),
                    ),
                    q(
                        "UpdateBuyerBalance",
                        tables::USERACCT,
                        QueryOp::UpdateByKey {
                            key_params: vec![0],
                            sets: vec![ColumnOp::Add { column: 2, param: 1 }],
                        },
                        PartitionHint::Param(0),
                    ),
                ],
                read_only: false,
                can_abort: true,
            },
        }
    }
}

struct NewPurchaseRun {
    args: Vec<Value>,
    stage: u8,
}

impl Procedure for NewPurchase {
    fn def(&self) -> &ProcDef {
        &self.def
    }
    fn instantiate(&self, args: &[Value]) -> Box<dyn ProcInstance> {
        Box::new(NewPurchaseRun { args: args.to_vec(), stage: 0 })
    }
}

impl ProcInstance for NewPurchaseRun {
    fn next(&mut self, results: Option<&[Vec<Row>]>) -> Step {
        let [seller, i_id, pu_id, buyer, amount] = &self.args[..] else {
            return Step::Abort("bad args".into());
        };
        match self.stage {
            0 => {
                self.stage = 1;
                Step::Queries(vec![QueryInvocation::new(0, vec![seller.clone(), i_id.clone()])])
            }
            1 => {
                if results.unwrap()[0].is_empty() {
                    return Step::Abort("no such item".into());
                }
                self.stage = 2;
                Step::Queries(vec![
                    QueryInvocation::new(
                        1,
                        vec![seller.clone(), i_id.clone(), pu_id.clone(), buyer.clone()],
                    ),
                    QueryInvocation::new(
                        2,
                        vec![seller.clone(), i_id.clone(), Value::Int(status::CLOSED)],
                    ),
                    QueryInvocation::new(3, vec![seller.clone(), amount.clone()]),
                ])
            }
            2 => {
                self.stage = 3;
                Step::Queries(vec![QueryInvocation::new(
                    4,
                    vec![buyer.clone(), Value::Int(-amount.expect_int())],
                )])
            }
            _ => Step::Commit,
        }
    }
}

// ---------------------------------------------------------------------------
// Procedure U: PostAuction(seller_ids[], i_ids[], buyer_ids[])
// ---------------------------------------------------------------------------

struct PostAuction {
    def: ProcDef,
}

impl PostAuction {
    fn new() -> Self {
        PostAuction {
            def: ProcDef {
                name: "PostAuction".into(),
                queries: vec![
                    q(
                        "UpdateItemStatus",
                        tables::ITEM,
                        QueryOp::UpdateByKey {
                            key_params: vec![0, 1],
                            sets: vec![ColumnOp::Set { column: 3, param: 2 }],
                        },
                        PartitionHint::Param(0),
                    ),
                    q(
                        "UpdateBuyerBalance",
                        tables::USERACCT,
                        QueryOp::UpdateByKey {
                            key_params: vec![0],
                            sets: vec![ColumnOp::Add { column: 2, param: 1 }],
                        },
                        PartitionHint::Param(0),
                    ),
                ],
                read_only: false,
                can_abort: false,
            },
        }
    }
}

impl Procedure for PostAuction {
    fn def(&self) -> &ProcDef {
        &self.def
    }
    fn instantiate(&self, args: &[Value]) -> Box<dyn ProcInstance> {
        let sellers = args[0].as_array().expect("seller_ids").to_vec();
        let items = args[1].as_array().expect("i_ids").to_vec();
        let buyers = args[2].as_array().expect("buyer_ids").to_vec();
        let mut batches = Vec::with_capacity(sellers.len());
        let mut aborts = Vec::with_capacity(sellers.len());
        for k in 0..sellers.len() {
            batches.push(vec![
                QueryInvocation::new(
                    0,
                    vec![sellers[k].clone(), items[k].clone(), Value::Int(status::CLOSED)],
                ),
                QueryInvocation::new(1, vec![buyers[k].clone(), Value::Int(10)]),
            ]);
            aborts.push(false);
        }
        Box::new(Linear::new(batches, aborts))
    }
}

// Procedure V: UpdateItem(seller_id, i_id, price)
linear_proc!(UpdateItem, |args: &[Value]| {
    Box::new(Linear::new(
        vec![
            vec![QueryInvocation::new(0, vec![args[0].clone(), args[1].clone()])],
            vec![QueryInvocation::new(1, args.to_vec())],
        ],
        vec![false, true],
    )) as Box<dyn ProcInstance>
});

impl UpdateItem {
    fn new() -> Self {
        UpdateItem {
            def: ProcDef {
                name: "UpdateItem".into(),
                queries: vec![
                    q(
                        "GetItemRec",
                        tables::ITEM,
                        QueryOp::GetByKey { key_params: vec![0, 1] },
                        PartitionHint::Param(0),
                    ),
                    q(
                        "SetItemPrice",
                        tables::ITEM,
                        QueryOp::UpdateByKey {
                            key_params: vec![0, 1],
                            sets: vec![ColumnOp::Set { column: 2, param: 2 }],
                        },
                        PartitionHint::Param(0),
                    ),
                ],
                read_only: false,
                can_abort: true,
            },
        }
    }
}

/// Builds the AuctionMark registry (letters M–V of Table 4).
pub fn registry() -> ProcedureRegistry {
    ProcedureRegistry::new(vec![
        Box::new(CheckWinningBids::new()), // M
        Box::new(GetItem::new()),          // N
        Box::new(GetUserInfo::new()),      // O
        Box::new(GetWatchedItems::new()),  // P
        Box::new(NewBid::new()),           // Q
        Box::new(NewComment::new()),       // R
        Box::new(NewItem::new()),          // S
        Box::new(NewPurchase::new()),      // T
        Box::new(PostAuction::new()),      // U
        Box::new(UpdateItem::new()),       // V
    ])
}

/// AuctionMark request generator.
pub struct Generator {
    parts: u32,
    seed: u64,
    rngs: FxHashMap<u64, SmallRng>,
    counter: i64,
}

impl Generator {
    /// New generator.
    pub fn new(parts: u32, seed: u64) -> Self {
        Generator { parts, seed, rngs: FxHashMap::default(), counter: 0 }
    }

    /// An independent generator for one client stream: identical per-client
    /// RNG streams, with unique ids drawn from a per-client block (stride
    /// 2^40) so concurrent streams never collide on inserts.
    pub fn for_client(parts: u32, seed: u64, client: u64) -> Self {
        Generator { parts, seed, rngs: FxHashMap::default(), counter: (client as i64) << 40 }
    }
}

impl RequestGenerator for Generator {
    fn next_request(&mut self, client: u64) -> (ProcId, Vec<Value>) {
        self.counter += 1;
        let unique = 1_000_000 + self.counter;
        let total_users = i64::from(self.parts * USERS_PER_PARTITION);
        let seed = self.seed;
        let rng = self.rngs.entry(client).or_insert_with(|| seeded_rng(derive_seed(seed, client)));
        let seller = rng.gen_range(0..total_users);
        let buyer = rng.gen_range(0..total_users);
        let item = Value::Int(seller * 10 + rng.gen_range(0..ITEMS_PER_USER));
        let mix: u32 = rng.gen_range(0..200);
        match mix {
            0..=49 => (1, vec![Value::Int(seller), item]), // GetItem 25%
            50..=79 => {
                // GetUserInfo 15%: 60% seller-items only, 25% buyer items,
                // 15% buyer items + feedback (Fig. 10c's branch mix).
                let branch: u32 = rng.gen_range(0..100);
                let (si, bi, fb) = match branch {
                    0..=59 => (1, 0, 0),
                    60..=84 => (0, 1, 0),
                    _ => (0, 1, 1),
                };
                (
                    2,
                    vec![
                        Value::Int(rng.gen_range(0..total_users)),
                        Value::Int(si),
                        Value::Int(bi),
                        Value::Int(fb),
                    ],
                )
            }
            80..=99 => (3, vec![Value::Int(rng.gen_range(0..total_users))]), // GetWatchedItems 10%
            100..=139 => (
                4, // NewBid 20%
                vec![
                    Value::Int(seller),
                    item,
                    Value::Int(unique),
                    Value::Int(buyer),
                    Value::Int(rng.gen_range(10..500)),
                ],
            ),
            140..=151 => (
                5, // NewComment 6%
                vec![Value::Int(seller), item, Value::Int(unique), Value::Int(buyer)],
            ),
            152..=171 => (
                6, // NewItem 10%
                vec![Value::Int(seller), Value::Int(unique), Value::Int(rng.gen_range(50..500))],
            ),
            172..=181 => (
                7, // NewPurchase 5%
                vec![
                    Value::Int(seller),
                    item,
                    Value::Int(unique),
                    Value::Int(buyer),
                    Value::Int(rng.gen_range(50..500)),
                ],
            ),
            182..=195 => (
                9, // UpdateItem 7%
                vec![Value::Int(seller), item, Value::Int(rng.gen_range(50..500))],
            ),
            196..=198 => {
                // PostAuction 1.5%: arbitrary-length arrays.
                let n = rng.gen_range(1..=5usize);
                let mut sellers = Vec::with_capacity(n);
                let mut items = Vec::with_capacity(n);
                let mut buyers = Vec::with_capacity(n);
                for _ in 0..n {
                    let s = rng.gen_range(0..total_users);
                    sellers.push(Value::Int(s));
                    items.push(Value::Int(s * 10 + rng.gen_range(0..ITEMS_PER_USER)));
                    buyers.push(Value::Int(rng.gen_range(0..total_users)));
                }
                (8, vec![Value::Array(sellers), Value::Array(items), Value::Array(buyers)])
            }
            _ => (0, vec![]), // CheckWinningBids 0.5%
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use engine::run_offline;

    #[test]
    fn loads_expected_rows() {
        let db = database(4);
        assert_eq!(db.total_rows(tables::USERACCT), 400);
        assert_eq!(db.total_rows(tables::ITEM), 1200);
        assert_eq!(db.total_rows(tables::BID), 2400);
    }

    #[test]
    fn get_item_single_partition() {
        let mut db = database(4);
        let reg = registry();
        let cat = reg.catalog();
        let out =
            run_offline(&mut db, &reg, &cat, 1, &[Value::Int(5), Value::Int(50)], true).unwrap();
        assert!(out.committed);
        assert!(out.touched.is_single());
    }

    #[test]
    fn new_bid_spans_buyer_and_seller() {
        let mut db = database(4);
        let reg = registry();
        let cat = reg.catalog();
        // seller 1 (partition 1), buyer 2 (partition 2).
        let out = run_offline(
            &mut db,
            &reg,
            &cat,
            4,
            &[Value::Int(1), Value::Int(10), Value::Int(777_777), Value::Int(2), Value::Int(50)],
            true,
        )
        .unwrap();
        assert!(out.committed);
        assert_eq!(out.touched.len(), 2);
        // Buyer balance decremented.
        assert_eq!(db.get(2, tables::USERACCT, &[Value::Int(2)]).unwrap()[2], Value::Int(950));
    }

    #[test]
    fn new_bid_aborts_on_closed_auction() {
        let mut db = database(4);
        let reg = registry();
        let cat = reg.catalog();
        // Close item (1, 10) first via NewPurchase.
        run_offline(
            &mut db,
            &reg,
            &cat,
            7,
            &[Value::Int(1), Value::Int(10), Value::Int(888_888), Value::Int(2), Value::Int(100)],
            true,
        )
        .unwrap();
        let out = run_offline(
            &mut db,
            &reg,
            &cat,
            4,
            &[Value::Int(1), Value::Int(10), Value::Int(999_999), Value::Int(3), Value::Int(60)],
            true,
        )
        .unwrap();
        assert!(!out.committed, "bids on closed auctions abort");
    }

    #[test]
    fn get_user_info_branches() {
        let mut db = database(4);
        let reg = registry();
        let cat = reg.catalog();
        // Seller-items branch: single partition.
        let sp = run_offline(
            &mut db,
            &reg,
            &cat,
            2,
            &[Value::Int(5), Value::Int(1), Value::Int(0), Value::Int(0)],
            true,
        )
        .unwrap();
        assert!(sp.touched.is_single());
        // Buyer-items branch: broadcast (multi-partition).
        let mp = run_offline(
            &mut db,
            &reg,
            &cat,
            2,
            &[Value::Int(5), Value::Int(0), Value::Int(1), Value::Int(0)],
            true,
        )
        .unwrap();
        assert_eq!(mp.touched.len(), 4);
    }

    #[test]
    fn check_winning_bids_exceeds_175_queries() {
        let mut db = database(4);
        let reg = registry();
        let cat = reg.catalog();
        let out = run_offline(&mut db, &reg, &cat, 0, &[], true).unwrap();
        assert!(out.committed);
        assert!(out.record.queries.len() > 175, "only {} queries", out.record.queries.len());
        assert_eq!(out.touched.len(), 4, "broadcast plus per-seller accesses");
    }

    #[test]
    fn post_auction_variable_arrays() {
        let mut db = database(4);
        let reg = registry();
        let cat = reg.catalog();
        let out = run_offline(
            &mut db,
            &reg,
            &cat,
            8,
            &[
                Value::Array(vec![Value::Int(1), Value::Int(2)]),
                Value::Array(vec![Value::Int(10), Value::Int(20)]),
                Value::Array(vec![Value::Int(3), Value::Int(0)]),
            ],
            true,
        )
        .unwrap();
        assert!(out.committed);
        assert_eq!(out.record.queries.len(), 4);
        // Item (1,10) now closed.
        assert_eq!(
            db.get(1, tables::ITEM, &[Value::Int(1), Value::Int(10)]).unwrap()[3],
            Value::Int(status::CLOSED)
        );
    }

    #[test]
    fn generator_covers_all_procedures() {
        let mut g = Generator::new(4, 13);
        let mut seen = [0u32; 10];
        for i in 0..4000 {
            let (p, _) = g.next_request(i % 16);
            seen[p as usize] += 1;
        }
        for (i, &c) in seen.iter().enumerate() {
            assert!(c > 0, "procedure {i} never generated: {seen:?}");
        }
    }
}
