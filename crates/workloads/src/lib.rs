//! The three OLTP benchmarks of the paper's evaluation (§6.1).
//!
//! * [`tatp`] — Telecom Application Transaction Processing: 7 procedures, 4
//!   always single-partition, 3 that open with a broadcast query on a
//!   non-partitioning column and then work at a single partition.
//! * [`tpcc`] — TPC-C (simplified to the paper's Fig. 2 shapes): 5
//!   procedures; the two hottest (NewOrder, Payment) vary between
//!   single-partition and distributed.
//! * [`auctionmark`] — AuctionMark: 10 procedures, buyer/seller
//!   cross-partition transactions, conditional branches, and the >175-query
//!   maintenance transaction CheckWinningBids for which the paper disables
//!   Houdini.
//!
//! Each benchmark exposes `database(num_partitions)`, `registry()` and a
//! [`engine::RequestGenerator`]; procedure letters follow Table 4.

pub mod auctionmark;
pub mod tatp;
pub mod tpcc;

use engine::{ProcedureRegistry, RequestGenerator};
use storage::Database;

/// Which benchmark to build — convenience for the experiment harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bench {
    /// TATP.
    Tatp,
    /// TPC-C.
    Tpcc,
    /// AuctionMark.
    AuctionMark,
}

impl Bench {
    /// All benchmarks in the paper's order.
    pub const ALL: [Bench; 3] = [Bench::Tatp, Bench::Tpcc, Bench::AuctionMark];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Bench::Tatp => "TATP",
            Bench::Tpcc => "TPC-C",
            Bench::AuctionMark => "AuctionMark",
        }
    }

    /// Builds and loads the benchmark database.
    pub fn database(self, num_partitions: u32) -> Database {
        match self {
            Bench::Tatp => tatp::database(num_partitions),
            Bench::Tpcc => tpcc::database(num_partitions),
            Bench::AuctionMark => auctionmark::database(num_partitions),
        }
    }

    /// Builds the stored-procedure registry.
    pub fn registry(self) -> ProcedureRegistry {
        match self {
            Bench::Tatp => tatp::registry(),
            Bench::Tpcc => tpcc::registry(),
            Bench::AuctionMark => auctionmark::registry(),
        }
    }

    /// Builds the shared request generator for a cluster of
    /// `num_partitions`: exactly client 0's split stream (per-client RNG
    /// streams already derive from `(seed, client)` internally, and the
    /// shared generator draws its unique-id blocks from client 0's range —
    /// the invariant `client_zero_split_stream_matches_shared_generator`
    /// pins). [`Bench::client_generator`] is the single construction path
    /// underneath.
    pub fn generator(self, num_partitions: u32, seed: u64) -> Box<dyn RequestGenerator + Send> {
        self.client_generator(num_partitions, seed, 0)
    }

    /// Builds the independent, `Send` request generator for one client
    /// stream — the one construction path every caller goes through
    /// (closed-loop `run_live` streams, open-loop submitters, trace
    /// collection via [`Bench::generator`]). Each client's RNG stream is
    /// derived from `(seed, client)`, so a split set of client generators
    /// issues the same per-client requests as the shared generator;
    /// benchmark-unique ids (order ids, call-forwarding start times, ...)
    /// come from per-client blocks so concurrent streams never collide.
    pub fn client_generator(
        self,
        num_partitions: u32,
        seed: u64,
        client: u64,
    ) -> Box<dyn RequestGenerator + Send> {
        match self {
            Bench::Tatp => Box::new(tatp::Generator::for_client(num_partitions, seed, client)),
            Bench::Tpcc => Box::new(tpcc::Generator::for_client(num_partitions, seed, client)),
            Bench::AuctionMark => {
                Box::new(auctionmark::Generator::for_client(num_partitions, seed, client))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The direct per-bench constructors (`Generator::new`) the shared
    /// path historically wrapped — the independent reference the
    /// delegation tests compare against (constructing through
    /// `Bench::generator` here would make them vacuous).
    fn direct_generators(parts: u32, seed: u64) -> Vec<Box<dyn RequestGenerator + Send>> {
        vec![
            Box::new(tatp::Generator::new(parts, seed)),
            Box::new(tpcc::Generator::new(parts, seed)),
            Box::new(auctionmark::Generator::new(parts, seed)),
        ]
    }

    #[test]
    fn client_zero_split_stream_matches_shared_generator() {
        // `Bench::generator` delegates to client 0's split stream; this
        // pin keeps the delegation honest against the direct per-bench
        // construction it claims to equal (same RNG derivation, same
        // unique-id block 0) — bit-for-bit over 200 requests.
        for (bench, mut direct) in Bench::ALL.into_iter().zip(direct_generators(4, 11)) {
            let mut split = bench.generator(4, 11);
            for i in 0..200 {
                assert_eq!(
                    direct.next_request(0),
                    split.next_request(0),
                    "{} request {i} diverged",
                    bench.name()
                );
            }
        }
    }

    #[test]
    fn split_streams_issue_same_procedures_as_shared() {
        // Multi-client: per-client procedure/argument streams match the
        // directly-constructed shared generator except for globally-unique
        // insert ids, which come from disjoint per-client blocks.
        let clients = 4u64;
        for (bench, mut shared) in Bench::ALL.into_iter().zip(direct_generators(2, 5)) {
            let mut splits: Vec<_> =
                (0..clients).map(|c| bench.client_generator(2, 5, c)).collect();
            for i in 0..120u64 {
                let c = i % clients;
                let (proc_a, _) = shared.next_request(c);
                let (proc_b, _) = splits[c as usize].next_request(c);
                assert_eq!(proc_a, proc_b, "{} client {c} step {i}", bench.name());
            }
        }
    }
}
