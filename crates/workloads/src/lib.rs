//! The three OLTP benchmarks of the paper's evaluation (§6.1).
//!
//! * [`tatp`] — Telecom Application Transaction Processing: 7 procedures, 4
//!   always single-partition, 3 that open with a broadcast query on a
//!   non-partitioning column and then work at a single partition.
//! * [`tpcc`] — TPC-C (simplified to the paper's Fig. 2 shapes): 5
//!   procedures; the two hottest (NewOrder, Payment) vary between
//!   single-partition and distributed.
//! * [`auctionmark`] — AuctionMark: 10 procedures, buyer/seller
//!   cross-partition transactions, conditional branches, and the >175-query
//!   maintenance transaction CheckWinningBids for which the paper disables
//!   Houdini.
//!
//! Each benchmark exposes `database(num_partitions)`, `registry()` and a
//! [`engine::RequestGenerator`]; procedure letters follow Table 4.

pub mod auctionmark;
pub mod tatp;
pub mod tpcc;

use engine::{ProcedureRegistry, RequestGenerator};
use storage::Database;

/// Which benchmark to build — convenience for the experiment harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bench {
    /// TATP.
    Tatp,
    /// TPC-C.
    Tpcc,
    /// AuctionMark.
    AuctionMark,
}

impl Bench {
    /// All benchmarks in the paper's order.
    pub const ALL: [Bench; 3] = [Bench::Tatp, Bench::Tpcc, Bench::AuctionMark];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Bench::Tatp => "TATP",
            Bench::Tpcc => "TPC-C",
            Bench::AuctionMark => "AuctionMark",
        }
    }

    /// Builds and loads the benchmark database.
    pub fn database(self, num_partitions: u32) -> Database {
        match self {
            Bench::Tatp => tatp::database(num_partitions),
            Bench::Tpcc => tpcc::database(num_partitions),
            Bench::AuctionMark => auctionmark::database(num_partitions),
        }
    }

    /// Builds the stored-procedure registry.
    pub fn registry(self) -> ProcedureRegistry {
        match self {
            Bench::Tatp => tatp::registry(),
            Bench::Tpcc => tpcc::registry(),
            Bench::AuctionMark => auctionmark::registry(),
        }
    }

    /// Builds a request generator for a cluster of `num_partitions`.
    pub fn generator(self, num_partitions: u32, seed: u64) -> Box<dyn RequestGenerator> {
        match self {
            Bench::Tatp => Box::new(tatp::Generator::new(num_partitions, seed)),
            Bench::Tpcc => Box::new(tpcc::Generator::new(num_partitions, seed)),
            Bench::AuctionMark => Box::new(auctionmark::Generator::new(num_partitions, seed)),
        }
    }
}
