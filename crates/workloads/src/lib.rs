//! The three OLTP benchmarks of the paper's evaluation (§6.1).
//!
//! * [`tatp`] — Telecom Application Transaction Processing: 7 procedures, 4
//!   always single-partition, 3 that open with a broadcast query on a
//!   non-partitioning column and then work at a single partition.
//! * [`tpcc`] — TPC-C (simplified to the paper's Fig. 2 shapes): 5
//!   procedures; the two hottest (NewOrder, Payment) vary between
//!   single-partition and distributed.
//! * [`auctionmark`] — AuctionMark: 10 procedures, buyer/seller
//!   cross-partition transactions, conditional branches, and the >175-query
//!   maintenance transaction CheckWinningBids for which the paper disables
//!   Houdini.
//!
//! Each benchmark exposes `database(num_partitions)`, `registry()` and a
//! [`engine::RequestGenerator`]; procedure letters follow Table 4.

pub mod auctionmark;
pub mod tatp;
pub mod tpcc;

use engine::{ProcedureRegistry, RequestGenerator};
use storage::Database;

/// Which benchmark to build — convenience for the experiment harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bench {
    /// TATP.
    Tatp,
    /// TPC-C.
    Tpcc,
    /// AuctionMark.
    AuctionMark,
}

impl Bench {
    /// All benchmarks in the paper's order.
    pub const ALL: [Bench; 3] = [Bench::Tatp, Bench::Tpcc, Bench::AuctionMark];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Bench::Tatp => "TATP",
            Bench::Tpcc => "TPC-C",
            Bench::AuctionMark => "AuctionMark",
        }
    }

    /// Builds and loads the benchmark database.
    pub fn database(self, num_partitions: u32) -> Database {
        match self {
            Bench::Tatp => tatp::database(num_partitions),
            Bench::Tpcc => tpcc::database(num_partitions),
            Bench::AuctionMark => auctionmark::database(num_partitions),
        }
    }

    /// Builds the stored-procedure registry.
    pub fn registry(self) -> ProcedureRegistry {
        match self {
            Bench::Tatp => tatp::registry(),
            Bench::Tpcc => tpcc::registry(),
            Bench::AuctionMark => auctionmark::registry(),
        }
    }

    /// Builds a request generator for a cluster of `num_partitions`.
    pub fn generator(self, num_partitions: u32, seed: u64) -> Box<dyn RequestGenerator> {
        match self {
            Bench::Tatp => Box::new(tatp::Generator::new(num_partitions, seed)),
            Bench::Tpcc => Box::new(tpcc::Generator::new(num_partitions, seed)),
            Bench::AuctionMark => Box::new(auctionmark::Generator::new(num_partitions, seed)),
        }
    }

    /// Builds the independent, `Send` request generator for one client
    /// stream of the live runtime. Each client's RNG stream is derived from
    /// `(seed, client)` exactly as in the shared [`Bench::generator`], so a
    /// split set of client generators issues the same per-client requests;
    /// benchmark-unique ids (order ids, call-forwarding start times, ...)
    /// come from per-client blocks so concurrent streams never collide.
    pub fn client_generator(
        self,
        num_partitions: u32,
        seed: u64,
        client: u64,
    ) -> Box<dyn RequestGenerator + Send> {
        match self {
            Bench::Tatp => Box::new(tatp::Generator::for_client(num_partitions, seed, client)),
            Bench::Tpcc => Box::new(tpcc::Generator::for_client(num_partitions, seed, client)),
            Bench::AuctionMark => {
                Box::new(auctionmark::Generator::for_client(num_partitions, seed, client))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn client_zero_split_stream_matches_shared_generator() {
        // With a single client, the split generator must reproduce the
        // shared generator's stream bit-for-bit (same RNG derivation, same
        // unique-id block 0).
        for bench in Bench::ALL {
            let mut shared = bench.generator(4, 11);
            let mut split = bench.client_generator(4, 11, 0);
            for i in 0..200 {
                assert_eq!(
                    shared.next_request(0),
                    split.next_request(0),
                    "{} request {i} diverged",
                    bench.name()
                );
            }
        }
    }

    #[test]
    fn split_streams_issue_same_procedures_as_shared() {
        // Multi-client: per-client procedure/argument streams match the
        // shared generator except for globally-unique insert ids, which
        // come from disjoint per-client blocks.
        let clients = 4u64;
        for bench in Bench::ALL {
            let mut shared = bench.generator(2, 5);
            let mut splits: Vec<_> =
                (0..clients).map(|c| bench.client_generator(2, 5, c)).collect();
            for i in 0..120u64 {
                let c = i % clients;
                let (proc_a, _) = shared.next_request(c);
                let (proc_b, _) = splits[c as usize].next_request(c);
                assert_eq!(proc_a, proc_b, "{} client {c} step {i}", bench.name());
            }
        }
    }
}
