//! Parameter mappings (paper §4.1).
//!
//! For most OLTP transactions, the partitions a query touches are determined
//! by its input parameters — and those parameters are usually "linked" to
//! the stored procedure's own input parameters. A *parameter mapping*
//! captures these links from a sample workload trace by counting, for every
//! (query parameter, procedure parameter) pair, how often their values
//! coincide. Pairs whose *mapping coefficient* clears a threshold (the paper
//! found 0.9 works across workloads) are treated as the same variable in the
//! control code, letting Houdini compute which partitions a query will
//! access before the transaction runs.
//!
//! Array procedure parameters are handled element-wise: the n-th element is
//! compared against the n-th invocation of each query, and per-invocation
//! ratios are aggregated with a geometric mean, exactly as the paper
//! describes for repeated queries.

pub mod builder;

pub use builder::{build_mapping, MappingConfig};

use common::{FxHashMap, QueryId, Value};
use serde::{Deserialize, Serialize};

/// Where a query parameter's value comes from.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ParamSource {
    /// The procedure's scalar input parameter at this index.
    Scalar(usize),
    /// Element `counter` of the procedure's array parameter at this index,
    /// where `counter` is the query's invocation counter.
    ArrayElement(usize),
}

/// The resolved mapping for one query parameter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryParamMapping {
    /// The winning source.
    pub source: ParamSource,
    /// Its mapping coefficient in `[0, 1]`.
    pub coefficient: f64,
}

/// A stored procedure's full parameter mapping: `(query, query-param index)`
/// → best procedure-parameter source above the threshold.
///
/// Serialized as a list of entries (JSON maps require string keys).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
#[serde(from = "Vec<MappingEntry>", into = "Vec<MappingEntry>")]
pub struct ProcMapping {
    entries: FxHashMap<(QueryId, usize), QueryParamMapping>,
}

/// Wire form of one mapping entry.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MappingEntry {
    /// Query id.
    pub query: QueryId,
    /// Query parameter index.
    pub qparam: usize,
    /// The mapping.
    pub mapping: QueryParamMapping,
}

impl From<Vec<MappingEntry>> for ProcMapping {
    fn from(v: Vec<MappingEntry>) -> Self {
        let mut m = ProcMapping::empty();
        for e in v {
            m.insert(e.query, e.qparam, e.mapping);
        }
        m
    }
}

impl From<ProcMapping> for Vec<MappingEntry> {
    fn from(m: ProcMapping) -> Self {
        let mut v: Vec<MappingEntry> = m
            .entries
            .into_iter()
            .map(|((query, qparam), mapping)| MappingEntry { query, qparam, mapping })
            .collect();
        v.sort_by_key(|e| (e.query, e.qparam));
        v
    }
}

impl ProcMapping {
    /// Creates an empty mapping (nothing resolvable).
    pub fn empty() -> Self {
        ProcMapping::default()
    }

    /// Inserts an entry (builder use).
    pub fn insert(&mut self, query: QueryId, qparam: usize, m: QueryParamMapping) {
        self.entries.insert((query, qparam), m);
    }

    /// The mapping entry for `(query, qparam)`, if one survived the
    /// threshold.
    pub fn get(&self, query: QueryId, qparam: usize) -> Option<&QueryParamMapping> {
        self.entries.get(&(query, qparam))
    }

    /// Number of mapped query parameters.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is mapped.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates `((query, qparam), mapping)` entries in deterministic order.
    pub fn entries(&self) -> Vec<((QueryId, usize), &QueryParamMapping)> {
        let mut es: Vec<_> = self.entries.iter().map(|(k, v)| (*k, v)).collect();
        es.sort_by_key(|(k, _)| *k);
        es
    }

    /// Predicts the value of query parameter `qparam` for invocation
    /// `counter` of `query`, given the procedure arguments.
    ///
    /// Returns `None` when the parameter is unmapped, the source argument is
    /// missing, or the invocation counter runs past the array — the latter
    /// is how Houdini infers "this transaction can never execute the query
    /// an (n+1)-th time" (§4.2).
    pub fn resolve(
        &self,
        query: QueryId,
        counter: u32,
        qparam: usize,
        args: &[Value],
    ) -> Option<Value> {
        match self.resolve_detail(query, counter, qparam, args) {
            Resolve::Value(v) => Some(v),
            _ => None,
        }
    }

    /// Like [`ProcMapping::resolve`] but distinguishes *why* resolution
    /// failed, which path estimation needs: an out-of-range array element
    /// proves the transition impossible, while an unmapped parameter merely
    /// leaves it uncertain (§4.2).
    pub fn resolve_detail(
        &self,
        query: QueryId,
        counter: u32,
        qparam: usize,
        args: &[Value],
    ) -> Resolve {
        let Some(entry) = self.get(query, qparam) else {
            return Resolve::Unmapped;
        };
        match entry.source {
            ParamSource::Scalar(k) => match args.get(k) {
                Some(v) => Resolve::Value(v.clone()),
                None => Resolve::Unmapped,
            },
            ParamSource::ArrayElement(k) => match args.get(k).and_then(Value::as_array) {
                Some(elems) => match elems.get(counter as usize) {
                    Some(v) => Resolve::Value(v.clone()),
                    None => Resolve::OutOfRange,
                },
                None => Resolve::Unmapped,
            },
        }
    }
}

/// Outcome of resolving one query parameter through the mapping.
#[derive(Debug, Clone, PartialEq)]
pub enum Resolve {
    /// The predicted value.
    Value(Value),
    /// The invocation counter runs past the source array: this invocation
    /// can never happen for these arguments.
    OutOfRange,
    /// No mapping above the threshold (e.g. the value is derived from an
    /// earlier query's result, like TATP's broadcast-then-lookup pattern).
    Unmapped,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_scalar_and_array() {
        let mut m = ProcMapping::empty();
        m.insert(0, 0, QueryParamMapping { source: ParamSource::Scalar(1), coefficient: 1.0 });
        m.insert(
            1,
            0,
            QueryParamMapping { source: ParamSource::ArrayElement(2), coefficient: 0.95 },
        );
        let args =
            vec![Value::Int(9), Value::Int(42), Value::Array(vec![Value::Int(7), Value::Int(8)])];
        assert_eq!(m.resolve(0, 0, 0, &args), Some(Value::Int(42)));
        assert_eq!(m.resolve(0, 5, 0, &args), Some(Value::Int(42)), "scalar ignores counter");
        assert_eq!(m.resolve(1, 0, 0, &args), Some(Value::Int(7)));
        assert_eq!(m.resolve(1, 1, 0, &args), Some(Value::Int(8)));
        assert_eq!(m.resolve(1, 2, 0, &args), None, "past the array end");
        assert_eq!(m.resolve(9, 0, 0, &args), None, "unmapped query");
    }
}
