//! Deriving parameter mappings from a workload trace (paper §4.1).

use crate::{ParamSource, ProcMapping, QueryParamMapping};
use common::{FxHashMap, QueryId, Value};
use trace::TraceRecord;

/// Builder knobs.
#[derive(Debug, Clone)]
pub struct MappingConfig {
    /// Minimum mapping coefficient to keep an entry. The paper found values
    /// above 0.9 all behave the same (§4.1); this is the false-positive
    /// filter for coincidentally equal values.
    pub threshold: f64,
}

impl Default for MappingConfig {
    fn default() -> Self {
        MappingConfig { threshold: 0.9 }
    }
}

/// Per-(pair, invocation-counter) agreement statistics.
#[derive(Default)]
struct PairStats {
    /// counter -> (matching comparisons, total comparisons)
    per_counter: FxHashMap<u32, (u64, u64)>,
}

impl PairStats {
    fn observe(&mut self, counter: u32, matched: bool) {
        let e = self.per_counter.entry(counter).or_insert((0, 0));
        e.1 += 1;
        if matched {
            e.0 += 1;
        }
    }

    /// Geometric mean of per-counter agreement ratios (the paper's
    /// aggregation for repeated queries and array parameters).
    fn coefficient(&self) -> f64 {
        if self.per_counter.is_empty() {
            return 0.0;
        }
        let mut log_sum = 0.0f64;
        for &(m, t) in self.per_counter.values() {
            if m == 0 {
                return 0.0;
            }
            log_sum += (m as f64 / t as f64).ln();
        }
        (log_sum / self.per_counter.len() as f64).exp()
    }
}

/// Derives a procedure's parameter mapping from its trace records.
///
/// For every transaction record, each query invocation's parameters are
/// compared pairwise against (a) every scalar procedure parameter and (b)
/// the invocation-aligned element of every array procedure parameter. The
/// per-pair agreement ratios are aggregated (geometric mean over invocation
/// counters) into mapping coefficients, and the best source above
/// `config.threshold` wins for each query parameter.
pub fn build_mapping(records: &[&TraceRecord], config: &MappingConfig) -> ProcMapping {
    // (query, qparam, source) -> stats
    let mut stats: FxHashMap<(QueryId, usize, SourceKey), PairStats> = FxHashMap::default();

    for rec in records {
        let mut counters: FxHashMap<QueryId, u32> = FxHashMap::default();
        for q in &rec.queries {
            let counter = {
                let c = counters.entry(q.query).or_insert(0);
                let cur = *c;
                *c += 1;
                cur
            };
            for (j, qv) in q.params.iter().enumerate() {
                if matches!(qv, Value::Array(_)) {
                    continue; // only scalar query parameters are mappable
                }
                for (k, pv) in rec.params.iter().enumerate() {
                    match pv {
                        Value::Array(elems) => {
                            // Element-wise, aligned with the invocation
                            // counter ("the n-th element of the array is
                            // linked to the n-th invocation", §4.1).
                            if let Some(elem) = elems.get(counter as usize) {
                                stats
                                    .entry((q.query, j, SourceKey::Array(k)))
                                    .or_default()
                                    .observe(counter, elem == qv);
                            }
                        }
                        scalar => {
                            stats
                                .entry((q.query, j, SourceKey::Scalar(k)))
                                .or_default()
                                .observe(counter, scalar == qv);
                        }
                    }
                }
            }
        }
    }

    // Pick the best surviving source per (query, qparam).
    let mut best: FxHashMap<(QueryId, usize), QueryParamMapping> = FxHashMap::default();
    let mut keys: Vec<_> = stats.keys().cloned().collect();
    keys.sort_by_key(|(q, j, s)| (*q, *j, s.order()));
    for key in keys {
        let (q, j, src) = key.clone();
        let coeff = stats[&key].coefficient();
        if coeff < config.threshold {
            continue;
        }
        let candidate = QueryParamMapping {
            source: match src {
                SourceKey::Scalar(k) => ParamSource::Scalar(k),
                SourceKey::Array(k) => ParamSource::ArrayElement(k),
            },
            coefficient: coeff,
        };
        match best.get(&(q, j)) {
            Some(existing) if existing.coefficient >= coeff => {}
            _ => {
                best.insert((q, j), candidate);
            }
        }
    }

    let mut mapping = ProcMapping::empty();
    for ((q, j), m) in best {
        mapping.insert(q, j, m);
    }
    mapping
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum SourceKey {
    Scalar(usize),
    Array(usize),
}

impl SourceKey {
    fn order(&self) -> (u8, usize) {
        match self {
            SourceKey::Scalar(k) => (0, *k),
            SourceKey::Array(k) => (1, *k),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace::QueryRecord;

    /// Builds NewOrder-like records: proc params (w_id, i_ids[], i_w_ids[]),
    /// queries GetWarehouse(w_id)=q0, CheckStock(i_id, i_w_id)=q1 repeated.
    fn records(n: usize) -> Vec<TraceRecord> {
        (0..n)
            .map(|t| {
                let w = t as i64 % 4;
                let ids = vec![Value::Int(1000 + t as i64), Value::Int(2000 + t as i64)];
                let ws = vec![Value::Int(w), Value::Int((w + 1) % 4)];
                let mut queries = vec![QueryRecord { query: 0, params: vec![Value::Int(w)] }];
                for k in 0..2 {
                    queries.push(QueryRecord {
                        query: 1,
                        params: vec![ids[k].clone(), ws[k].clone()],
                    });
                }
                TraceRecord {
                    proc: 0,
                    params: vec![Value::Int(w), Value::Array(ids), Value::Array(ws)],
                    queries,
                    aborted: false,
                }
            })
            .collect()
    }

    #[test]
    fn maps_scalar_and_array_params() {
        let owned = records(50);
        let refs: Vec<&TraceRecord> = owned.iter().collect();
        let m = build_mapping(&refs, &MappingConfig::default());
        // GetWarehouse param 0 <- proc param 0 (w_id), coefficient 1.
        let gw = m.get(0, 0).expect("GetWarehouse mapped");
        assert_eq!(gw.source, ParamSource::Scalar(0));
        assert!((gw.coefficient - 1.0).abs() < 1e-12);
        // CheckStock param 0 <- i_ids elements, param 1 <- i_w_ids elements.
        assert_eq!(m.get(1, 0).unwrap().source, ParamSource::ArrayElement(1));
        assert_eq!(m.get(1, 1).unwrap().source, ParamSource::ArrayElement(2));
    }

    #[test]
    fn resolves_through_mapping() {
        let owned = records(50);
        let refs: Vec<&TraceRecord> = owned.iter().collect();
        let m = build_mapping(&refs, &MappingConfig::default());
        let args = vec![
            Value::Int(3),
            Value::Array(vec![Value::Int(11), Value::Int(12)]),
            Value::Array(vec![Value::Int(3), Value::Int(0)]),
        ];
        assert_eq!(m.resolve(0, 0, 0, &args), Some(Value::Int(3)));
        assert_eq!(m.resolve(1, 1, 1, &args), Some(Value::Int(0)));
        assert_eq!(m.resolve(1, 2, 1, &args), None, "third CheckStock impossible");
    }

    #[test]
    fn coincidental_matches_filtered() {
        // Query param equals proc param only half the time -> below 0.9.
        let owned: Vec<TraceRecord> = (0..40)
            .map(|t| TraceRecord {
                proc: 0,
                params: vec![Value::Int(t % 2)],
                queries: vec![QueryRecord { query: 0, params: vec![Value::Int(0)] }],
                aborted: false,
            })
            .collect();
        let refs: Vec<&TraceRecord> = owned.iter().collect();
        let m = build_mapping(&refs, &MappingConfig::default());
        assert!(m.get(0, 0).is_none());
    }

    #[test]
    fn derived_value_not_mapped() {
        // Query param comes from DB state (s_id from a broadcast lookup),
        // uncorrelated with the proc param string.
        let owned: Vec<TraceRecord> = (0..30)
            .map(|t| TraceRecord {
                proc: 0,
                params: vec![Value::Str(format!("NBR{t}"))],
                queries: vec![QueryRecord { query: 0, params: vec![Value::Int(t)] }],
                aborted: false,
            })
            .collect();
        let refs: Vec<&TraceRecord> = owned.iter().collect();
        let m = build_mapping(&refs, &MappingConfig::default());
        assert!(m.get(0, 0).is_none(), "derived params stay unmapped");
    }

    #[test]
    fn empty_trace_empty_mapping() {
        let m = build_mapping(&[], &MappingConfig::default());
        assert!(m.is_empty());
    }
}
