//! The on-line advisor: Houdini as the engine's [`TxnAdvisor`] (paper §4).

use crate::modelset::{lock_set_for, CatalogRule};
use crate::train::ProcPredictor;
use common::{EpochCell, FxHashMap, PartitionSet, ProcId, QueryId, Value};
use engine::{
    Catalog, CatalogResolver, ExecutedQuery, LiveAdvisor, LiveMaintainer, MaintenanceReport,
    PlanContext, PlanEnv, Request, TxnAdvisor, TxnFeedback, TxnOutcome, TxnPlan, Updates,
};
use markov::{
    estimate_path, EstimateConfig, ModelMonitor, PathTracker, QueryKind, VertexId, VertexKey,
};
use std::sync::Arc;

/// Minimum training observations before a state's finish table is trusted
/// for OP4: a state observed once or twice (e.g. only in an aborted record)
/// produces finish probabilities that trigger early prepares the
/// transaction later violates, and each violation is an abort-and-restart.
const MIN_FINISH_HITS: u64 = 4;

/// Near-certainty bar for *table-driven* OP4 releases (the confidence
/// threshold plays no part here: any finish probability clearing this bar
/// clears every threshold in (0, 1)). The cost asymmetry demands it: releasing a
/// partition early saves micro-seconds of lock hold, while re-touching a
/// released partition aborts and restarts the whole transaction — and in
/// the live runtime additionally cascades every transaction that ran
/// speculatively in the window. A finish probability like 0.7 (common at
/// loop states such as NewOrder's per-item stock updates, where the state
/// cannot see the total item count) is therefore a terrible bet; only
/// states whose training history *always* finished the partition qualify.
/// Request-specific releases keep flowing through the estimate-derived
/// finish plan, which knows this request's actual loop bounds.
const FINISH_TABLE_CERTAINTY: f64 = 1.0 - 1e-9;

/// True if `model` has no query-loop states (no vertex at invocation
/// counter > 0). A static per-model property; callers cache it per
/// transaction so the hot `updates_at_state` path reads a bool instead of
/// rescanning the vertex table per executed query.
fn model_is_loop_free(model: &markov::MarkovModel) -> bool {
    !model.vertices().iter().any(|v| v.key.counter > 0)
}

/// On-line knobs.
#[derive(Debug, Clone)]
pub struct HoudiniConfig {
    /// The confidence-coefficient threshold of §4.3 / Fig. 13. Estimations
    /// whose confidence falls below it are pruned (conservative fallback).
    pub threshold: f64,
    /// Simulated µs charged per candidate state examined during the initial
    /// path estimate.
    pub est_cost_per_state_us: f64,
    /// Simulated µs charged per runtime update (§4.4).
    pub update_cost_us: f64,
    /// Emit OP4 finished-partition declarations (early prepare +
    /// speculative execution). Off is the OP4 ablation: plans are produced
    /// identically but `TxnPlan::early_prepare` stays false, so the engine
    /// never releases a partition before 2PC.
    pub early_prepare: bool,
    /// Learn from live traffic (§4.5): emit per-transaction path feedback
    /// at session teardown and drive the runtime's maintenance thread,
    /// which rebuilds drifted models and epoch-swaps them in without
    /// stopping traffic. Off is the frozen-model ablation of the
    /// `live-drift` experiment.
    pub maintenance: bool,
    /// Accuracy floor of the live maintenance monitors (the paper's 75%).
    pub maintenance_threshold: f64,
    /// Observations per model before live accuracy is judged.
    pub maintenance_min_window: u64,
    /// Path-estimation knobs.
    pub estimate: EstimateConfig,
}

impl Default for HoudiniConfig {
    fn default() -> Self {
        HoudiniConfig {
            threshold: 0.5,
            est_cost_per_state_us: 1.2,
            update_cost_us: 4.0,
            early_prepare: true,
            maintenance: true,
            maintenance_threshold: 0.75,
            maintenance_min_window: 200,
            estimate: EstimateConfig::default(),
        }
    }
}

/// Per-transaction decision state shared verbatim by the simulated-time
/// advisor (inside [`CurrentTxn`]) and the live advisor (inside
/// [`LiveTxn`]): one definition, so the two paths cannot drift.
struct TxnCore {
    lock_set: PartitionSet,
    declared: PartitionSet,
    undo_disabled: bool,
    /// Whether this model's abort estimates are sound (see
    /// [`ProcPredictor::trust_abort_estimates`]).
    trust_abort: bool,
    /// The initial estimate reached commit, every step was validated
    /// through the parameter mapping, and no feasible alternative branch
    /// leaves the lock set. Only then are runtime OP3 updates safe: an OP2
    /// mispredict after disabling undo logging is unrecoverable.
    est_complete: bool,
    /// Per-step query ids of the initial estimate (deviation detection).
    step_queries: Vec<QueryId>,
    /// Per-step partition sets of the initial estimate. A transaction that
    /// issues the estimated query sequence through *different* partitions
    /// (a feasible alternative branch inside the lock set) has deviated
    /// just as surely as one issuing different queries — its finish plan
    /// no longer describes reality and applying it causes release-then-
    /// re-touch abort-restarts.
    step_partitions: Vec<PartitionSet>,
    /// Per-step finish sets: partitions whose predicted last access is that
    /// step (the Oracle-style OP4 plan derived from the estimate, §4.4).
    finish_plan: Vec<PartitionSet>,
    /// Position along the estimated path; `None` once the transaction has
    /// deviated from the estimate.
    est_pos: Option<usize>,
    /// Whether the selected model is free of query loops (no state at
    /// invocation counter > 0) — computed once per transaction at plan
    /// time; release decisions (estimate plan *and* tables) are only
    /// trusted on loop-free models, where the trained closures genuinely
    /// enumerate the continuations (see the release-policy comments in
    /// `updates_at_state` and `plan_from_estimate`).
    model_loop_free: bool,
    /// Houdini switched off (disabled procedure or restart fallback):
    /// no tracking, no updates.
    passive: bool,
    /// The transaction had a followed estimate and left it (§4.4
    /// deviation) — reported in live feedback as a drift signal.
    deviated: bool,
}

/// Per-transaction scratch state between `plan` and `on_end`.
struct CurrentTxn {
    proc: ProcId,
    model_idx: usize,
    tracker: PathTracker,
    core: TxnCore,
}

/// OP3/OP4 runtime updates (§4.4) at the state `to` reached by executing
/// `q` — the single implementation behind both `TxnAdvisor::on_query` and
/// `LiveAdvisor::on_query_live`. `to` is `None` when the transaction
/// reached a state absent from the trained model (only possible on the
/// live path, whose walk is read-only).
fn updates_at_state(
    cfg: &HoudiniConfig,
    num_partitions: u32,
    pred: &ProcPredictor,
    model: &markov::MarkovModel,
    core: &mut TxnCore,
    to: Option<VertexId>,
    q: &ExecutedQuery,
) -> Updates {
    let mut upd = Updates { cost_us: cfg.update_cost_us, ..Default::default() };
    // OP3 runtime update: no path from here to the abort state. Only models
    // that have actually witnessed this procedure's aborts may assert that
    // no such path exists, the state must be a trained one (not a live
    // placeholder), the transaction must be single-partition (§4.3), and no
    // continuation may leave the lock set — otherwise an OP2 mispredict
    // after disabling undo would be unrecoverable.
    if let Some(to) = to {
        let vtx = model.vertex(to);
        let table = &vtx.table;
        let sig_safe = match vtx.key.kind {
            QueryKind::Query(qid) => {
                !pred.can_abort
                    || (pred.abort_rate > 0.0
                        && !pred.unsafe_signatures.contains(&(qid, vtx.key.counter)))
            }
            _ => false,
        };
        if sig_safe
            && core.trust_abort
            && core.est_complete
            && !core.undo_disabled
            && core.lock_set.is_single()
            && vtx.hits > 0
            && table.abort < 1e-9
            && 1.0 - table.abort > cfg.threshold
            && (0..num_partitions).all(|p| core.lock_set.contains(p) || table.access(p) < 1e-9)
        {
            core.undo_disabled = true;
            upd.disable_undo = true;
        }
    }
    // OP4: partitions whose finish probability clears the threshold are
    // handed back for early prepare. Only *exact* well-observed states
    // qualify: a shape proxy (same query, counter, seen set but different
    // partition binding) carries per-partition finish entries for *its*
    // binding, which systematically mispredicts release decisions — and a
    // wrong release is an abort-restart plus a live cascade, far costlier
    // than a kept lock.
    let mut finished = PartitionSet::EMPTY;
    // Loop gate: a procedure with query loops (any state at invocation
    // counter > 0) executes data-dependent trip counts the closure behind
    // `finish` cannot see — a model (or cluster, under partitioned models)
    // whose trained loops are shorter or more local than this request's
    // yields finish = 1.0 *with certainty* and still lies, and every such
    // release is an abort-restart plus a live cascade. Loop-free
    // procedures (all of TATP, TPC-C's Payment) have closures that
    // genuinely enumerate their continuations, so only they may release
    // through tables. (Computed once per transaction at plan time.)
    let finish_table =
        to.filter(|&v| model.vertex(v).hits >= MIN_FINISH_HITS).filter(|_| core.model_loop_free);
    // A complete request-specific estimate outranks the generalized
    // tables: its finish plan knows this request's actual loop bounds and
    // partition bindings, while the table closure averages over every
    // trained request and lies wherever the model is sparse. Mixing the
    // two turns loop-heavy procedures (NewOrder's per-item stock updates)
    // into release-then-re-touch abort-restart storms, so estimated
    // transactions release through their plan alone.
    if let Some(ft) = finish_table.filter(|_| !core.est_complete) {
        let table = &model.vertex(ft).table;
        for p in core.lock_set.iter() {
            if !core.declared.contains(p)
                && !q.partitions.contains(p)
                && table.finish(p) >= FINISH_TABLE_CERTAINTY
            {
                finished.insert(p);
            }
        }
    }
    // While the transaction follows its initial estimate, the Oracle-style
    // finish plan derived from the estimate also applies (and generalizes
    // to partition combinations the trace never produced).
    if let Some(pos) = core.est_pos {
        let on_plan = core.step_queries.get(pos).is_some_and(|&eq| eq == q.query)
            && core.step_partitions.get(pos).is_some_and(|&ep| ep == q.partitions)
            && pos < core.finish_plan.len();
        if on_plan {
            let step_fin = core.finish_plan[pos];
            for p in step_fin.iter() {
                if core.lock_set.contains(p) && !core.declared.contains(p) {
                    finished.insert(p);
                }
            }
            core.est_pos = Some(pos + 1);
        } else {
            core.est_pos = None; // deviated: stop trusting the plan
            core.deviated = true;
        }
    }
    core.declared = core.declared.union(finished);
    upd.finished = finished;
    upd
}

/// The Houdini advisor: trained predictors plus on-line tracking.
///
/// Two views of the trained predictors coexist:
///
/// * `procs` — the simulator's `&mut` view, maintained in place by
///   [`TxnAdvisor`]'s tracker/monitor machinery.
/// * `epochs` — the live runtime's epoch-swapped view: every live
///   transaction pins the snapshot it planned against, and the runtime's
///   maintenance thread publishes rebuilt predictors as new epochs
///   (clone-on-write: only drifted models are deep-copied).
///
/// Both start as clones of the same training output (sharing every model
/// `Arc`), then diverge under their own maintenance regimes.
pub struct Houdini {
    procs: Vec<ProcPredictor>,
    /// Live-runtime predictor epochs (§4.5; see DESIGN.md §5).
    epochs: EpochCell<Vec<ProcPredictor>>,
    catalog: Catalog,
    num_partitions: u32,
    /// Knobs.
    pub cfg: HoudiniConfig,
    cur: Option<CurrentTxn>,
    /// Model-maintenance recomputations triggered so far (all models).
    pub recomputations: u64,
    /// Plans produced from a complete path estimate.
    pub plans_estimated: u64,
    /// Conservative lock-all fallbacks (disabled procedure or dead-ended
    /// estimate).
    pub plans_fallback: u64,
    /// Replans after a mispredict restart.
    pub plans_replanned: u64,
    /// Replans per procedure (diagnostics).
    pub replans_by_proc: common::FxHashMap<ProcId, u64>,
    /// Fallbacks per procedure (diagnostics).
    pub fallbacks_by_proc: common::FxHashMap<ProcId, u64>,
}

impl Houdini {
    /// Wraps trained predictors for on-line use.
    pub fn new(
        procs: Vec<ProcPredictor>,
        catalog: Catalog,
        num_partitions: u32,
        cfg: HoudiniConfig,
    ) -> Self {
        let epochs = EpochCell::new(procs.clone());
        Houdini {
            procs,
            epochs,
            catalog,
            num_partitions,
            cfg,
            cur: None,
            recomputations: 0,
            plans_estimated: 0,
            plans_fallback: 0,
            plans_replanned: 0,
            replans_by_proc: common::FxHashMap::default(),
            fallbacks_by_proc: common::FxHashMap::default(),
        }
    }

    /// The predictor for `proc` (the simulator's in-place view).
    pub fn predictor(&self, proc: ProcId) -> &ProcPredictor {
        &self.procs[proc as usize]
    }

    /// The live runtime's current predictor epoch number (0 until the
    /// maintenance thread publishes a rebuild).
    pub fn live_epoch(&self) -> u64 {
        self.epochs.epoch()
    }

    /// Snapshot of the live runtime's current predictors — what a fresh
    /// `plan_live` would plan against right now.
    pub fn live_predictors(&self) -> Arc<Vec<ProcPredictor>> {
        self.epochs.load()
    }

    /// Conservative fallback decisions: lock every partition, keep undo
    /// logging, but still track the model (unless the procedure is disabled
    /// outright) so OP4 can release partitions the tables say are finished
    /// — a lock-all transaction that never lets go would serialize the
    /// cluster. Shared by the simulated-time and live paths.
    fn passive_decision(
        &self,
        pred: &ProcPredictor,
        args: &[Value],
        base: u32,
    ) -> (TxnPlan, usize, TxnCore) {
        let model_idx = if pred.disabled { 0 } else { pred.models.select(args) };
        let track = !pred.disabled;
        let model_loop_free = model_is_loop_free(pred.models.model(model_idx));
        let core = TxnCore {
            lock_set: PartitionSet::all(self.num_partitions),
            declared: PartitionSet::EMPTY,
            undo_disabled: false,
            trust_abort: false,
            est_complete: false,
            step_queries: Vec::new(),
            step_partitions: Vec::new(),
            finish_plan: Vec::new(),
            est_pos: None,
            model_loop_free,
            passive: !track,
            deviated: false,
        };
        let plan = TxnPlan {
            base_partition: base,
            lock_set: PartitionSet::all(self.num_partitions),
            disable_undo: false,
            early_prepare: track && self.cfg.early_prepare,
            estimate_cost_us: 0.0,
        };
        (plan, model_idx, core)
    }

    /// Installs the fallback as the simulated-time in-flight transaction.
    fn passive_plan(&mut self, proc: ProcId, args: &[Value], base: u32) -> TxnPlan {
        let (plan, model_idx, core) = self.passive_decision(&self.procs[proc as usize], args, base);
        let tracker = PathTracker::new(self.procs[proc as usize].models.model(model_idx));
        self.cur = Some(CurrentTxn { proc, model_idx, tracker, core });
        plan
    }

    /// Derives the OP1–OP4 plan and decision state from a completed path
    /// estimate — the single implementation behind `TxnAdvisor::plan` and
    /// `LiveAdvisor::plan_live` (the caller charges `estimate_cost_us`).
    fn plan_from_estimate(
        &self,
        pred: &ProcPredictor,
        model_idx: usize,
        est: markov::PathEstimate,
        random_local_partition: u32,
    ) -> (TxnPlan, TxnCore) {
        let model = pred.models.model(model_idx);
        // OP2: partitions whose access estimate clears the threshold.
        let mut lock_set = lock_set_for(&est, model, self.cfg.threshold, self.num_partitions);
        // OP1: most-accessed partition along the estimate.
        let base = est
            .best_base()
            .filter(|p| lock_set.contains(*p))
            .or_else(|| est.best_base())
            .unwrap_or(random_local_partition);
        lock_set.insert(base);
        // OP3: only committing, never-aborting, single-partition estimates
        // qualify; the strict comparison stops disabling as the threshold
        // approaches one (Fig. 13's right edge). A model that never saw an
        // abort for an aborting procedure is not trusted — mispredicting
        // here is unrecoverable (§4.3).
        let trust_abort = pred.trust_abort_estimates(model_idx);
        let est_complete = est.reached_commit
            && est.uncertain_steps == 0
            && est.alt_partitions.is_subset(lock_set);
        let disable_undo = pred.abort_safe_initial()
            && trust_abort
            && est_complete
            && est.abort_prob < 1e-9
            && lock_set.is_single()
            && 1.0 - est.abort_prob > self.cfg.threshold;

        // Oracle-style OP4 plan from the estimate: partitions whose last
        // predicted access is step i can early-prepare once step i has
        // executed — provided the transaction follows the estimate.
        let mut finish_plan = vec![PartitionSet::EMPTY; est.step_partitions.len()];
        let mut later = PartitionSet::EMPTY;
        for i in (0..est.step_partitions.len()).rev() {
            finish_plan[i] = est.step_partitions[i].difference(later);
            later = later.union(est.step_partitions[i]);
        }
        // Loop gate, mirroring the table-finish rule: a model with query
        // loops (any state at counter > 0) may have reached commit through
        // a *shorter* trained iteration path than this request will
        // actually take — the plan's "last access" steps then release
        // partitions the remaining iterations still need, and every such
        // release is an abort-restart (plus a live cascade). Loop-free
        // models cannot under-run, so only they may drive early prepares.
        let model_loop_free = model_is_loop_free(model);
        let follow_plan = est_complete && model_loop_free && est.confidence >= self.cfg.threshold;
        let core = TxnCore {
            lock_set,
            declared: PartitionSet::EMPTY,
            undo_disabled: disable_undo,
            trust_abort,
            est_complete,
            step_queries: est.step_queries,
            step_partitions: est.step_partitions,
            finish_plan,
            est_pos: follow_plan.then_some(0),
            model_loop_free,
            passive: false,
            deviated: false,
        };
        let plan = TxnPlan {
            base_partition: base,
            lock_set,
            disable_undo,
            early_prepare: self.cfg.early_prepare,
            estimate_cost_us: 0.0,
        };
        (plan, core)
    }
}

impl TxnAdvisor for Houdini {
    fn name(&self) -> &str {
        "houdini"
    }

    fn plan(&mut self, req: &Request, env: &mut PlanEnv<'_>) -> TxnPlan {
        let proc = req.proc;
        if self.procs[proc as usize].disabled {
            self.plans_fallback += 1;
            return self.passive_plan(proc, &req.args, env.random_local_partition);
        }
        let pred = &self.procs[proc as usize];
        let model_idx = pred.models.select(&req.args);
        let model = pred.models.model(model_idx);
        let rule = CatalogRule::new(&self.catalog, proc, self.num_partitions);
        let est = estimate_path(model, &rule, &pred.mapping, &req.args, &self.cfg.estimate);
        let cost = f64::from(est.states_examined) * self.cfg.est_cost_per_state_us;
        if !est.reached_commit && !est.reached_abort {
            // The walk dead-ended (a state never seen in training, §4.4):
            // the lock set cannot be trusted. Fall back to lock-all with
            // tracking rather than gamble on a mispredict restart.
            self.plans_fallback += 1;
            *self.fallbacks_by_proc.entry(proc).or_insert(0) += 1;
            let mut plan = self.passive_plan(proc, &req.args, env.random_local_partition);
            plan.estimate_cost_us = cost;
            return plan;
        }
        self.plans_estimated += 1;
        let (mut plan, core) =
            self.plan_from_estimate(pred, model_idx, est, env.random_local_partition);
        plan.estimate_cost_us = cost;
        let tracker = PathTracker::new(model);
        self.cur = Some(CurrentTxn { proc, model_idx, tracker, core });
        plan
    }

    fn on_query(&mut self, q: &ExecutedQuery) -> Updates {
        let Some(cur) = self.cur.as_mut() else {
            return Updates::default();
        };
        if cur.core.passive {
            return Updates::default();
        }
        // Maintenance walk (§4.5), simulator flavour: advance the tracker
        // (interning a live placeholder for unseen states) and let the
        // monitor recompute in place — the live path does the equivalent
        // off to the side, via teardown feedback and epoch swaps.
        {
            let pred = &mut self.procs[cur.proc as usize];
            let (model, monitor) = pred.models.model_mut(cur.model_idx);
            let resolver = CatalogResolver::new(&self.catalog, self.num_partitions);
            let from = cur.tracker.current();
            let to = cur.tracker.advance(model, q.query, q.partitions, &resolver);
            if monitor.observe(model, from, to) {
                self.recomputations += 1;
            }
        }
        let pred = &self.procs[cur.proc as usize];
        let model = pred.models.model(cur.model_idx);
        let to = cur.tracker.current();
        updates_at_state(&self.cfg, self.num_partitions, pred, model, &mut cur.core, Some(to), q)
    }

    fn replan(
        &mut self,
        req: &Request,
        observed: PartitionSet,
        _attempt: u32,
        env: &mut PlanEnv<'_>,
    ) -> TxnPlan {
        // A transaction that touched an unpredicted partition restarts as a
        // multi-partition transaction locking all partitions (§6.4).
        self.plans_replanned += 1;
        *self.replans_by_proc.entry(req.proc).or_insert(0) += 1;
        let base = observed.first().unwrap_or(env.random_local_partition);
        self.passive_plan(req.proc, &req.args, base)
    }

    fn on_end(&mut self, outcome: TxnOutcome) {
        if let Some(mut cur) = self.cur.take() {
            if cur.core.passive {
                return;
            }
            let pred = &mut self.procs[cur.proc as usize];
            let (model, monitor) = pred.models.model_mut(cur.model_idx);
            let from = cur.tracker.current();
            cur.tracker.finish(model, matches!(outcome, TxnOutcome::Committed));
            let to = cur.tracker.current();
            if monitor.observe(model, from, to) {
                self.recomputations += 1;
            }
        }
    }
}

/// Per-transaction scratch state for the live runtime: the shared
/// `TxnCore` decision state plus a *read-only* model walk against the
/// predictor epoch the transaction planned with. The session pins that
/// epoch's snapshot, so a maintenance swap mid-transaction never moves the
/// model under an in-flight walk; states the snapshot has never seen turn
/// the walk dark, and the executed path is handed back as [`TxnFeedback`]
/// at teardown so the maintenance thread can intern them into the *next*
/// epoch (§4.5).
pub struct LiveTxn {
    proc: ProcId,
    model_idx: usize,
    /// Predictor epoch this transaction planned against.
    epoch: u64,
    /// The pinned predictor snapshot (epoch `epoch`).
    procs: Arc<Vec<ProcPredictor>>,
    /// Current vertex, `None` once the transaction reached a state never
    /// seen in training.
    cur: Option<VertexId>,
    /// Partitions accessed before the current state.
    prev: PartitionSet,
    /// Per-query invocation counters (vertex identity, §3.1).
    counters: FxHashMap<QueryId, u16>,
    /// Executed `(query, partitions)` path, for teardown feedback.
    steps: Vec<(QueryId, PartitionSet)>,
    core: TxnCore,
}

impl Houdini {
    /// Teardown feedback (§4.5), shared by `on_end_live` and
    /// `end_live_reclaim`: takes the executed path out of the session (the
    /// maintenance thread owns it from here) and leaves the rest intact so
    /// the reclaim path can recycle the session's buffers.
    fn feedback_from(&self, session: &mut LiveTxn, outcome: TxnOutcome) -> Option<TxnFeedback> {
        if !self.cfg.maintenance || session.core.passive {
            return None;
        }
        let terminal = match outcome {
            TxnOutcome::Committed => Some(true),
            TxnOutcome::UserAborted | TxnOutcome::Failed => Some(false),
            // A mispredict-aborted attempt: the executed prefix is real
            // signal, but no commit/abort edge was taken.
            TxnOutcome::Mispredicted => None,
        };
        Some(TxnFeedback {
            proc: session.proc,
            model: session.model_idx as u32,
            epoch: session.epoch,
            path: std::mem::take(&mut session.steps),
            terminal,
            deviated: session.core.deviated,
            predicted: session.core.lock_set,
        })
    }

    /// Live twin of `passive_plan`: conservative lock-all with tracking
    /// unless the procedure is disabled outright.
    fn passive_live(
        &self,
        epoch: u64,
        procs: &Arc<Vec<ProcPredictor>>,
        proc: ProcId,
        args: &[Value],
        base: u32,
    ) -> (TxnPlan, LiveTxn) {
        let pred = &procs[proc as usize];
        let (plan, model_idx, core) = self.passive_decision(pred, args, base);
        let session = LiveTxn {
            proc,
            model_idx,
            epoch,
            procs: procs.clone(),
            cur: Some(pred.models.model(model_idx).begin()),
            prev: PartitionSet::EMPTY,
            counters: FxHashMap::default(),
            steps: Vec::new(),
            core,
        };
        (plan, session)
    }
}

impl LiveAdvisor for Houdini {
    type Session = LiveTxn;

    fn name(&self) -> &str {
        "houdini"
    }

    fn plan_live(&self, req: &Request, ctx: &PlanContext<'_>) -> (TxnPlan, LiveTxn) {
        let proc = req.proc;
        // Pin the current predictor epoch for this whole transaction.
        let (epoch, procs) = self.epochs.load_with_epoch();
        let pred = &procs[proc as usize];
        if pred.disabled {
            return self.passive_live(epoch, &procs, proc, &req.args, ctx.random_local_partition);
        }
        let model_idx = pred.models.select(&req.args);
        let model = pred.models.model(model_idx);
        let rule = CatalogRule::new(&self.catalog, proc, self.num_partitions);
        let est = estimate_path(model, &rule, &pred.mapping, &req.args, &self.cfg.estimate);
        let cost = f64::from(est.states_examined) * self.cfg.est_cost_per_state_us;
        if !est.reached_commit && !est.reached_abort {
            // Dead-ended walk (§4.4): same conservative fallback as the
            // simulated-time path.
            let (mut plan, session) =
                self.passive_live(epoch, &procs, proc, &req.args, ctx.random_local_partition);
            plan.estimate_cost_us = cost;
            return (plan, session);
        }
        // OP1-OP4 decisions: the same `plan_from_estimate` the simulated-
        // time advisor uses.
        let (mut plan, core) =
            self.plan_from_estimate(pred, model_idx, est, ctx.random_local_partition);
        plan.estimate_cost_us = cost;
        let begin = model.begin();
        let session = LiveTxn {
            proc,
            model_idx,
            epoch,
            procs: procs.clone(),
            cur: Some(begin),
            prev: PartitionSet::EMPTY,
            counters: FxHashMap::default(),
            steps: Vec::new(),
            core,
        };
        (plan, session)
    }

    fn on_query_live(&self, cur: &mut LiveTxn, q: &ExecutedQuery) -> Updates {
        if cur.core.passive {
            return Updates::default();
        }
        let pred = &cur.procs[cur.proc as usize];
        let model = pred.models.model(cur.model_idx);
        // Read-only walk against the pinned epoch: follow the trained
        // vertex if it exists; a state never seen in training turns the
        // walk dark here, and teardown feedback lets the maintenance
        // thread intern it into the next epoch (§4.4/§4.5).
        let counter = {
            let c = cur.counters.entry(q.query).or_insert(0);
            let seen = *c;
            *c += 1;
            seen
        };
        let key = VertexKey {
            kind: QueryKind::Query(q.query),
            counter,
            partitions: q.partitions,
            previous: cur.prev,
        };
        let to = model.find(&key);
        cur.prev = cur.prev.union(q.partitions);
        cur.cur = to;
        cur.steps.push((q.query, q.partitions));
        updates_at_state(&self.cfg, self.num_partitions, pred, model, &mut cur.core, to, q)
    }

    fn replan_live(
        &self,
        req: &Request,
        observed: PartitionSet,
        _attempt: u32,
        ctx: &PlanContext<'_>,
    ) -> (TxnPlan, LiveTxn) {
        // Same §6.4 policy as the simulated-time path: restart locking all
        // partitions (re-pinning whatever epoch is current now).
        let base = observed.first().unwrap_or(ctx.random_local_partition);
        let (epoch, procs) = self.epochs.load_with_epoch();
        self.passive_live(epoch, &procs, req.proc, &req.args, base)
    }

    fn on_end_live(&self, mut session: LiveTxn, outcome: TxnOutcome) -> Option<TxnFeedback> {
        // Model maintenance (§4.5) runs on the runtime's background
        // thread: hand back the executed path so it can update accuracy
        // windows and rebuild drifted models into the next epoch.
        self.feedback_from(&mut session, outcome)
    }

    fn plan_live_reusing(
        &self,
        req: &Request,
        ctx: &PlanContext<'_>,
        spare: Option<LiveTxn>,
    ) -> (TxnPlan, LiveTxn) {
        let (plan, mut session) = self.plan_live(req, ctx);
        if let Some(mut old) = spare {
            // Graft only raw capacity into the fresh session: the counter
            // map and step vector are cleared, and every prediction field
            // (epoch snapshot, vertex walk, core decisions) was already
            // rebuilt by `plan_live` against the current epoch, so no
            // stale state can survive. This is what makes the repeat-proc
            // fast path allocation-free in steady state.
            old.counters.clear();
            session.counters = std::mem::take(&mut old.counters);
            old.steps.clear();
            session.steps = std::mem::take(&mut old.steps);
        }
        (plan, session)
    }

    fn end_live_reclaim(
        &self,
        mut session: LiveTxn,
        outcome: TxnOutcome,
    ) -> (Option<TxnFeedback>, Option<LiveTxn>) {
        let fb = self.feedback_from(&mut session, outcome);
        // The session goes back to the client's per-procedure cache. When
        // feedback was emitted, `steps` left with it (the maintenance
        // thread owns the path), so only the counter map's capacity is
        // recycled on that path; with maintenance off, both buffers
        // survive.
        (fb, Some(session))
    }

    fn maintainer(&self) -> Option<Box<dyn LiveMaintainer + '_>> {
        if !self.cfg.maintenance {
            return None;
        }
        let monitors = self
            .procs
            .iter()
            .map(|pred| {
                vec![
                    ModelMonitor::with_thresholds(
                        self.cfg.maintenance_threshold,
                        self.cfg.maintenance_min_window,
                    );
                    pred.models.len()
                ]
            })
            .collect();
        Some(Box::new(HoudiniMaintainer {
            houdini: self,
            monitors,
            report: MaintenanceReport::default(),
        }))
    }
}

/// Houdini's §4.5 maintenance driver, owned by the live runtime's
/// background thread. It consumes the feedback stream record by record:
/// each executed path is replayed against the *current* predictor epoch
/// (read-only) through that model's [`ModelMonitor`]; when a monitor's
/// accuracy window fills below the floor, the maintainer clones the
/// current epoch (cheap — models are `Arc`-shared), deep-copies only the
/// drifted model, folds the accumulated live counts and dark-state
/// placeholders into the copy ([`ModelMonitor::recompute`]), and publishes
/// the result as the next epoch. Traffic never stops: in-flight sessions
/// keep their pinned snapshot, fresh plans pick up the rebuilt models.
struct HoudiniMaintainer<'a> {
    houdini: &'a Houdini,
    /// Live accuracy monitors/accumulators, per procedure per model.
    monitors: Vec<Vec<ModelMonitor>>,
    report: MaintenanceReport,
}

impl LiveMaintainer for HoudiniMaintainer<'_> {
    fn absorb(&mut self, fb: TxnFeedback) {
        self.report.feedback_records += 1;
        let h = self.houdini;
        let (_, procs) = h.epochs.load_with_epoch();
        let pred = &procs[fb.proc as usize];
        if pred.disabled {
            return;
        }
        // Model count per procedure is fixed at training time (swaps only
        // replace model contents), so the session's index stays valid
        // across epochs; clamp defensively all the same.
        let idx = (fb.model as usize).min(pred.models.len() - 1);
        let monitor = &mut self.monitors[fb.proc as usize][idx];
        let resolver = CatalogResolver::new(&h.catalog, h.num_partitions);
        let (observed, matched) =
            monitor.observe_walk(pred.models.model(idx), &fb.path, fb.terminal, &resolver);
        // Accuracy is attributed to the epoch the transaction planned
        // with: a swap shows up as a fresh epoch entry whose accuracy
        // recovers.
        engine::EpochAccuracy::merge_into(
            &mut self.report.epoch_accuracy,
            fb.epoch,
            observed,
            matched,
        );
        if monitor.is_stale() {
            // Rebuild only the drifted model: snapshot-clone the epoch
            // (pointer bumps), deep-copy the one model, fold the live
            // counts in, publish.
            let mut next: Vec<ProcPredictor> = (*procs).clone();
            let model = Arc::make_mut(next[fb.proc as usize].models.model_arc_mut(idx));
            monitor.recompute(model);
            h.epochs.store(next);
            self.report.model_swaps += 1;
        }
    }

    fn report(&self) -> MaintenanceReport {
        self.report.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::{train, TrainingConfig};
    use common::Value;
    use engine::{run_offline, RequestGenerator};
    use trace::Workload;
    use workloads::{tpcc, Bench};

    fn trained(parts: u32, n: usize, partitioned: bool) -> (Houdini, Catalog) {
        let mut db = Bench::Tpcc.database(parts);
        let reg = Bench::Tpcc.registry();
        let catalog = reg.catalog();
        let mut gen = tpcc::Generator::new(parts, 7);
        let mut records = Vec::new();
        for i in 0..n {
            let (proc, args) = gen.next_request(i as u64 % 8);
            let out = run_offline(&mut db, &reg, &catalog, proc, &args, true).unwrap();
            records.push(out.record);
        }
        let cfg = TrainingConfig { partitioned, ..Default::default() };
        let preds = train(&catalog, parts, &Workload { records }, &cfg);
        (Houdini::new(preds, catalog.clone(), parts, HoudiniConfig::default()), catalog)
    }

    fn new_order_req(w: i64, o: i64, item_ws: &[i64]) -> Request {
        Request {
            proc: 1,
            args: vec![
                Value::Int(w),
                Value::Int(o),
                Value::Int(3),
                Value::Array((0..item_ws.len()).map(|k| Value::Int(k as i64 + 1)).collect()),
                Value::Array(item_ws.iter().map(|&x| Value::Int(x)).collect()),
                Value::Array(item_ws.iter().map(|_| Value::Int(1)).collect()),
            ],
            origin_node: 0,
        }
    }

    #[test]
    fn plans_local_new_order_single_partition() {
        let (mut h, catalog) = trained(2, 600, false);
        let mut db = Bench::Tpcc.database(2);
        let reg = Bench::Tpcc.registry();
        let mut env = PlanEnv {
            db: &mut db,
            registry: &reg,
            catalog: &catalog,
            num_partitions: 2,
            random_local_partition: 0,
        };
        let req = new_order_req(1, 90_000, &[1, 1, 1]);
        let plan = h.plan(&req, &mut env);
        assert_eq!(plan.base_partition, 1);
        assert_eq!(plan.lock_set, PartitionSet::single(1));
        assert!(plan.estimate_cost_us > 0.0);
    }

    #[test]
    fn plans_remote_new_order_distributed() {
        let (mut h, catalog) = trained(2, 600, false);
        let mut db = Bench::Tpcc.database(2);
        let reg = Bench::Tpcc.registry();
        let mut env = PlanEnv {
            db: &mut db,
            registry: &reg,
            catalog: &catalog,
            num_partitions: 2,
            random_local_partition: 0,
        };
        let req = new_order_req(0, 90_001, &[0, 0, 1]);
        let plan = h.plan(&req, &mut env);
        assert_eq!(plan.lock_set, PartitionSet::all(2));
        assert_eq!(plan.base_partition, 0, "home warehouse accessed most");
    }

    #[test]
    fn never_disables_undo_for_abortable_path() {
        // NewOrder can abort (invalid item, ~1%): its estimated abort
        // probability is nonzero, so OP3 must stay off initially.
        let (mut h, catalog) = trained(2, 600, false);
        let mut db = Bench::Tpcc.database(2);
        let reg = Bench::Tpcc.registry();
        let mut env = PlanEnv {
            db: &mut db,
            registry: &reg,
            catalog: &catalog,
            num_partitions: 2,
            random_local_partition: 0,
        };
        let req = new_order_req(0, 90_002, &[0, 0, 0]);
        let plan = h.plan(&req, &mut env);
        assert!(!plan.disable_undo);
    }

    #[test]
    fn replan_locks_all_and_goes_passive() {
        let (mut h, catalog) = trained(2, 400, false);
        let mut db = Bench::Tpcc.database(2);
        let reg = Bench::Tpcc.registry();
        let mut env = PlanEnv {
            db: &mut db,
            registry: &reg,
            catalog: &catalog,
            num_partitions: 2,
            random_local_partition: 0,
        };
        let req = new_order_req(0, 90_003, &[0, 0, 0]);
        h.plan(&req, &mut env);
        let plan = h.replan(&req, PartitionSet::single(1), 1, &mut env);
        assert_eq!(plan.lock_set, PartitionSet::all(2));
        assert!(!plan.disable_undo);
        // The retry keeps undo logging on no matter what it observes.
        let upd = h.on_query(&ExecutedQuery {
            query: 0,
            params: vec![Value::Int(0)],
            partitions: PartitionSet::single(0),
            is_write: false,
        });
        assert!(!upd.disable_undo);
    }

    #[test]
    fn threshold_zero_locks_everything() {
        let (mut h, catalog) = trained(2, 400, false);
        h.cfg.threshold = 0.0;
        let mut db = Bench::Tpcc.database(2);
        let reg = Bench::Tpcc.registry();
        let mut env = PlanEnv {
            db: &mut db,
            registry: &reg,
            catalog: &catalog,
            num_partitions: 2,
            random_local_partition: 0,
        };
        let req = new_order_req(1, 90_004, &[1, 1, 1]);
        let plan = h.plan(&req, &mut env);
        assert_eq!(
            plan.lock_set,
            PartitionSet::all(2),
            "threshold 0 admits every access estimation (Fig. 13)"
        );
        assert!(!plan.disable_undo);
    }

    #[test]
    fn early_prepare_knob_gates_op4_plans() {
        let (mut h, catalog) = trained(2, 600, false);
        h.cfg.early_prepare = false;
        let mut db = Bench::Tpcc.database(2);
        let reg = Bench::Tpcc.registry();
        let mut env = PlanEnv {
            db: &mut db,
            registry: &reg,
            catalog: &catalog,
            num_partitions: 2,
            random_local_partition: 0,
        };
        let req = new_order_req(0, 90_005, &[0, 0, 1]);
        let plan = h.plan(&req, &mut env);
        assert!(!plan.early_prepare, "OP4 ablation must not early-prepare");
        let ctx = PlanContext { catalog: &catalog, num_partitions: 2, random_local_partition: 0 };
        let (live_plan, _s) = h.plan_live(&req, &ctx);
        assert!(!live_plan.early_prepare);
        // The rest of the plan is unchanged by the ablation.
        assert_eq!(live_plan.lock_set, plan.lock_set);
    }

    #[test]
    fn trained_advisor_is_shareable_across_threads() {
        fn assert_sync<T: Sync + Send>() {}
        assert_sync::<Houdini>();
        fn assert_session_send<T: Send>() {}
        assert_session_send::<LiveTxn>();
    }

    #[test]
    fn live_plans_match_simulated_plans() {
        let (mut h, catalog) = trained(2, 600, false);
        let mut db = Bench::Tpcc.database(2);
        let reg = Bench::Tpcc.registry();
        for (w, o, items) in [
            (1i64, 91_000i64, vec![1i64, 1, 1]),
            (0, 91_001, vec![0, 0, 1]),
            (0, 91_002, vec![0, 0, 0]),
        ] {
            let req = new_order_req(w, o, &items);
            let sim_plan = {
                let mut env = PlanEnv {
                    db: &mut db,
                    registry: &reg,
                    catalog: &catalog,
                    num_partitions: 2,
                    random_local_partition: 0,
                };
                TxnAdvisor::plan(&mut h, &req, &mut env)
            };
            let ctx =
                PlanContext { catalog: &catalog, num_partitions: 2, random_local_partition: 0 };
            let (live_plan, _session) = h.plan_live(&req, &ctx);
            assert_eq!(live_plan.base_partition, sim_plan.base_partition, "w={w}");
            assert_eq!(live_plan.lock_set, sim_plan.lock_set, "w={w}");
            assert_eq!(live_plan.disable_undo, sim_plan.disable_undo, "w={w}");
        }
    }

    #[test]
    fn live_runtime_updates_declare_finished_partitions() {
        let (mut h_sim, catalog) = trained(2, 800, false);
        let (h_live, _) = trained(2, 800, false);
        let mut db = Bench::Tpcc.database(2);
        let reg = Bench::Tpcc.registry();
        // Remote payment: customer at partition 1, warehouse at 0 — the
        // same case the simulated-time test covers.
        let req = Request {
            proc: 3,
            args: vec![
                Value::Int(0),
                Value::Int(1),
                Value::Int(5),
                Value::Int(100),
                Value::Int(77_000),
            ],
            origin_node: 0,
        };
        let sim_plan = {
            let mut env = PlanEnv {
                db: &mut db,
                registry: &reg,
                catalog: &catalog,
                num_partitions: 2,
                random_local_partition: 0,
            };
            TxnAdvisor::plan(&mut h_sim, &req, &mut env)
        };
        let ctx = PlanContext { catalog: &catalog, num_partitions: 2, random_local_partition: 0 };
        let (live_plan, mut session) = h_live.plan_live(&req, &ctx);
        assert_eq!(live_plan.lock_set, sim_plan.lock_set);
        // Feed both advisors the executed path; the live session must
        // declare the same finished partitions as the simulated-time one.
        let out = run_offline(&mut db, &reg, &catalog, 3, &req.args, true).unwrap();
        let resolver = CatalogResolver::new(&catalog, 2);
        let mut declared_sim = PartitionSet::EMPTY;
        let mut declared_live = PartitionSet::EMPTY;
        for q in &out.record.queries {
            use trace::PartitionResolver as _;
            let parts = resolver.partitions(3, q.query, &q.params);
            let exec = ExecutedQuery {
                query: q.query,
                params: q.params.clone(),
                partitions: parts,
                is_write: catalog.proc(3).query(q.query).is_write(),
            };
            declared_sim = declared_sim.union(h_sim.on_query(&exec).finished);
            declared_live = declared_live.union(h_live.on_query_live(&mut session, &exec).finished);
        }
        h_sim.on_end(TxnOutcome::Committed);
        let _ = h_live.on_end_live(session, TxnOutcome::Committed);
        assert_eq!(declared_live, declared_sim);
        assert!(declared_live.contains(1), "customer partition finished (OP4)");
    }

    #[test]
    fn runtime_updates_declare_finished_partitions() {
        let (mut h, catalog) = trained(2, 800, false);
        let mut db = Bench::Tpcc.database(2);
        let reg = Bench::Tpcc.registry();
        // Remote payment: customer at partition 1, warehouse at 0.
        let req = Request {
            proc: 3,
            args: vec![
                Value::Int(0),
                Value::Int(1),
                Value::Int(5),
                Value::Int(100),
                Value::Int(77_000),
            ],
            origin_node: 0,
        };
        let mut env = PlanEnv {
            db: &mut db,
            registry: &reg,
            catalog: &catalog,
            num_partitions: 2,
            random_local_partition: 0,
        };
        let plan = h.plan(&req, &mut env);
        assert_eq!(plan.lock_set.len(), 2, "payment locks buyer+warehouse");
        // Execute the real queries and feed them back; by the final history
        // insert, the customer partition should be declared finished.
        let out = run_offline(&mut db, &reg, &catalog, 3, &req.args, true).unwrap();
        let resolver = CatalogResolver::new(&catalog, 2);
        let mut declared = PartitionSet::EMPTY;
        for q in &out.record.queries {
            use trace::PartitionResolver as _;
            let parts = resolver.partitions(3, q.query, &q.params);
            let upd = h.on_query(&ExecutedQuery {
                query: q.query,
                params: q.params.clone(),
                partitions: parts,
                is_write: catalog.proc(3).query(q.query).is_write(),
            });
            declared = declared.union(upd.finished);
        }
        h.on_end(TxnOutcome::Committed);
        assert!(
            declared.contains(1),
            "customer partition declared finished (OP4), declared = {declared}"
        );
    }
}
