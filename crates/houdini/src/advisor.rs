//! The on-line advisor: Houdini as the engine's [`TxnAdvisor`] (paper §4).

use crate::modelset::{lock_set_for, CatalogRule};
use crate::train::ProcPredictor;
use common::{PartitionSet, ProcId, Value};
use engine::{
    Catalog, CatalogResolver, ExecutedQuery, PlanEnv, Request, TxnAdvisor, TxnOutcome, TxnPlan,
    Updates,
};
use markov::{estimate_path, EstimateConfig, PathTracker};

/// On-line knobs.
#[derive(Debug, Clone)]
pub struct HoudiniConfig {
    /// The confidence-coefficient threshold of §4.3 / Fig. 13. Estimations
    /// whose confidence falls below it are pruned (conservative fallback).
    pub threshold: f64,
    /// Simulated µs charged per candidate state examined during the initial
    /// path estimate.
    pub est_cost_per_state_us: f64,
    /// Simulated µs charged per runtime update (§4.4).
    pub update_cost_us: f64,
    /// Path-estimation knobs.
    pub estimate: EstimateConfig,
}

impl Default for HoudiniConfig {
    fn default() -> Self {
        HoudiniConfig {
            threshold: 0.5,
            est_cost_per_state_us: 1.2,
            update_cost_us: 4.0,
            estimate: EstimateConfig::default(),
        }
    }
}

/// Per-transaction scratch state between `plan` and `on_end`.
struct CurrentTxn {
    proc: ProcId,
    model_idx: usize,
    tracker: PathTracker,
    lock_set: PartitionSet,
    declared: PartitionSet,
    undo_disabled: bool,
    /// Whether this model's abort estimates are sound (see
    /// [`ProcPredictor::trust_abort_estimates`]).
    trust_abort: bool,
    /// The initial estimate reached commit, every step was validated
    /// through the parameter mapping, and no feasible alternative branch
    /// leaves the lock set. Only then are runtime OP3 updates safe: an OP2
    /// mispredict after disabling undo logging is unrecoverable.
    est_complete: bool,
    /// Per-step query ids of the initial estimate (deviation detection).
    step_queries: Vec<common::QueryId>,
    /// Per-step finish sets: partitions whose predicted last access is that
    /// step (the Oracle-style OP4 plan derived from the estimate, §4.4).
    finish_plan: Vec<PartitionSet>,
    /// Position along the estimated path; `None` once the transaction has
    /// deviated from the estimate.
    est_pos: Option<usize>,
    /// Houdini switched off (disabled procedure or restart fallback):
    /// no tracking, no updates.
    passive: bool,
}

/// The Houdini advisor: trained predictors plus on-line tracking.
pub struct Houdini {
    procs: Vec<ProcPredictor>,
    catalog: Catalog,
    num_partitions: u32,
    /// Knobs.
    pub cfg: HoudiniConfig,
    cur: Option<CurrentTxn>,
    /// Model-maintenance recomputations triggered so far (all models).
    pub recomputations: u64,
    /// Plans produced from a complete path estimate.
    pub plans_estimated: u64,
    /// Conservative lock-all fallbacks (disabled procedure or dead-ended
    /// estimate).
    pub plans_fallback: u64,
    /// Replans after a mispredict restart.
    pub plans_replanned: u64,
    /// Replans per procedure (diagnostics).
    pub replans_by_proc: common::FxHashMap<ProcId, u64>,
    /// Fallbacks per procedure (diagnostics).
    pub fallbacks_by_proc: common::FxHashMap<ProcId, u64>,
}

impl Houdini {
    /// Wraps trained predictors for on-line use.
    pub fn new(
        procs: Vec<ProcPredictor>,
        catalog: Catalog,
        num_partitions: u32,
        cfg: HoudiniConfig,
    ) -> Self {
        Houdini {
            procs,
            catalog,
            num_partitions,
            cfg,
            cur: None,
            recomputations: 0,
            plans_estimated: 0,
            plans_fallback: 0,
            plans_replanned: 0,
            replans_by_proc: common::FxHashMap::default(),
            fallbacks_by_proc: common::FxHashMap::default(),
        }
    }

    /// The predictor for `proc`.
    pub fn predictor(&self, proc: ProcId) -> &ProcPredictor {
        &self.procs[proc as usize]
    }

    /// Conservative fallback: lock every partition, keep undo logging, but
    /// still track the model so OP4 can release partitions the tables say
    /// are finished — a lock-all transaction that never lets go would
    /// serialize the cluster.
    fn passive_plan(&mut self, proc: ProcId, args: &[Value], base: u32) -> TxnPlan {
        let pred = &self.procs[proc as usize];
        let model_idx = if pred.disabled { 0 } else { pred.models.select(args) };
        let track = !pred.disabled;
        self.cur = Some(CurrentTxn {
            proc,
            model_idx,
            tracker: PathTracker::new(pred.models.model(model_idx)),
            lock_set: PartitionSet::all(self.num_partitions),
            declared: PartitionSet::EMPTY,
            undo_disabled: false,
            trust_abort: false,
            est_complete: false,
            step_queries: Vec::new(),
            finish_plan: Vec::new(),
            est_pos: None,
            passive: !track,
        });
        TxnPlan {
            base_partition: base,
            lock_set: PartitionSet::all(self.num_partitions),
            disable_undo: false,
            early_prepare: track,
            estimate_cost_us: 0.0,
        }
    }
}

impl TxnAdvisor for Houdini {
    fn name(&self) -> &str {
        "houdini"
    }

    fn plan(&mut self, req: &Request, env: &mut PlanEnv<'_>) -> TxnPlan {
        let proc = req.proc;
        if self.procs[proc as usize].disabled {
            self.plans_fallback += 1;
            return self.passive_plan(proc, &req.args, env.random_local_partition);
        }
        let pred = &self.procs[proc as usize];
        let model_idx = pred.models.select(&req.args);
        let model = pred.models.model(model_idx);
        let rule = CatalogRule::new(&self.catalog, proc, self.num_partitions);
        let est = estimate_path(model, &rule, &pred.mapping, &req.args, &self.cfg.estimate);
        let cost = f64::from(est.states_examined) * self.cfg.est_cost_per_state_us;
        if !est.reached_commit && !est.reached_abort {
            // The walk dead-ended (a state never seen in training, §4.4):
            // the lock set cannot be trusted. Fall back to lock-all with
            // tracking rather than gamble on a mispredict restart.
            self.plans_fallback += 1;
            *self.fallbacks_by_proc.entry(proc).or_insert(0) += 1;
            let mut plan =
                self.passive_plan(proc, &req.args, env.random_local_partition);
            plan.estimate_cost_us = cost;
            return plan;
        }
        self.plans_estimated += 1;

        // OP2: partitions whose access estimate clears the threshold.
        let mut lock_set = lock_set_for(&est, model, self.cfg.threshold, self.num_partitions);
        // OP1: most-accessed partition along the estimate.
        let base = est
            .best_base()
            .filter(|p| lock_set.contains(*p))
            .or_else(|| est.best_base())
            .unwrap_or(env.random_local_partition);
        lock_set.insert(base);
        // OP3: only committing, never-aborting, single-partition estimates
        // qualify; the strict comparison stops disabling as the threshold
        // approaches one (Fig. 13's right edge). A model that never saw an
        // abort for an aborting procedure is not trusted — mispredicting
        // here is unrecoverable (§4.3).
        let trust_abort = pred.trust_abort_estimates(model_idx);
        let est_complete = est.reached_commit
            && est.uncertain_steps == 0
            && est.alt_partitions.is_subset(lock_set);
        let disable_undo = pred.abort_safe_initial()
            && trust_abort
            && est_complete
            && est.abort_prob < 1e-9
            && lock_set.is_single()
            && 1.0 - est.abort_prob > self.cfg.threshold;

        // Oracle-style OP4 plan from the estimate: partitions whose last
        // predicted access is step i can early-prepare once step i has
        // executed — provided the transaction follows the estimate.
        let mut finish_plan = vec![PartitionSet::EMPTY; est.step_partitions.len()];
        let mut later = PartitionSet::EMPTY;
        for i in (0..est.step_partitions.len()).rev() {
            finish_plan[i] = est.step_partitions[i].difference(later);
            later = later.union(est.step_partitions[i]);
        }
        let follow_plan = est_complete && est.confidence >= self.cfg.threshold;
        self.cur = Some(CurrentTxn {
            proc,
            model_idx,
            tracker: PathTracker::new(model),
            lock_set,
            declared: PartitionSet::EMPTY,
            undo_disabled: disable_undo,
            trust_abort,
            est_complete,
            step_queries: est.step_queries,
            finish_plan,
            est_pos: follow_plan.then_some(0),
            passive: false,
        });
        TxnPlan {
            base_partition: base,
            lock_set,
            disable_undo,
            early_prepare: true,
            estimate_cost_us: cost,
        }
    }

    fn on_query(&mut self, q: &ExecutedQuery) -> Updates {
        let Some(cur) = self.cur.as_mut() else {
            return Updates::default();
        };
        if cur.passive {
            return Updates::default();
        }
        let pred = &mut self.procs[cur.proc as usize];
        let can_abort = pred.can_abort;
        let abort_rate = pred.abort_rate;
        let unsafe_sigs = &pred.unsafe_signatures;
        let (model, monitor) = pred.models.model_mut(cur.model_idx);
        let resolver = CatalogResolver::new(&self.catalog, self.num_partitions);
        let from = cur.tracker.current();
        let to = cur.tracker.advance(model, q.query, q.partitions, &resolver);
        if monitor.observe(model, from, to) {
            self.recomputations += 1;
        }

        let mut upd = Updates { cost_us: self.cfg.update_cost_us, ..Default::default() };
        let table = &model.vertex(to).table;
        // OP3 runtime update (§4.4): no path from here to the abort state.
        // Only models that have actually witnessed this procedure's aborts
        // may assert that no such path exists, the state must be a trained
        // one (not a live placeholder), the transaction must be
        // single-partition (§4.3), and no continuation may leave the lock
        // set — otherwise an OP2 mispredict after disabling undo would be
        // unrecoverable.
        let vtx = model.vertex(to);
        let sig_safe = match vtx.key.kind {
            markov::QueryKind::Query(q) => {
                !can_abort
                    || (abort_rate > 0.0 && !unsafe_sigs.contains(&(q, vtx.key.counter)))
            }
            _ => false,
        };
        if sig_safe
            && cur.trust_abort
            && cur.est_complete
            && !cur.undo_disabled
            && cur.lock_set.is_single()
            && vtx.hits > 0
            && table.abort < 1e-9
            && 1.0 - table.abort > self.cfg.threshold
            && (0..self.num_partitions)
                .all(|p| cur.lock_set.contains(p) || table.access(p) < 1e-9)
        {
            cur.undo_disabled = true;
            upd.disable_undo = true;
        }
        // OP4 (§4.4): partitions whose finish probability clears the
        // threshold are handed back for early prepare. Trained exact states
        // use their pre-computed tables; while the transaction follows its
        // initial estimate, the Oracle-style finish plan derived from the
        // estimate also applies (and generalizes to partition combinations
        // the trace never produced).
        let mut finished = PartitionSet::EMPTY;
        // A finish table needs real statistical support: a state observed
        // once or twice (e.g. only in an aborted record) produces finish
        // probabilities that trigger early prepares the transaction later
        // violates, and each violation is an abort-and-restart.
        const MIN_FINISH_HITS: u64 = 4;
        let finish_table = if vtx.hits >= MIN_FINISH_HITS {
            Some(to)
        } else {
            // Sparse or placeholder state: consult a structurally analogous
            // well-observed state (same query, counter, and seen-partition
            // set). Its own partitions differ from ours, but the current
            // query's partitions are excluded below and the seen-set match
            // keeps the remaining finish structure sound.
            let key = vtx.key;
            model
                .shape_proxy(key.kind, key.counter, key.seen())
                .filter(|&p| model.vertex(p).hits >= MIN_FINISH_HITS)
        };
        if let Some(ft) = finish_table {
            let table = &model.vertex(ft).table;
            for p in cur.lock_set.iter() {
                if !cur.declared.contains(p)
                    && !q.partitions.contains(p)
                    && table.finish(p) > self.cfg.threshold
                {
                    finished.insert(p);
                }
            }
        }
        if let Some(pos) = cur.est_pos {
            let on_plan = cur
                .step_queries
                .get(pos)
                .is_some_and(|&eq| eq == q.query)
                && cur
                    .finish_plan
                    .get(pos)
                    .map(|_| true)
                    .unwrap_or(false);
            if on_plan {
                let step_fin = cur.finish_plan[pos];
                for p in step_fin.iter() {
                    if cur.lock_set.contains(p) && !cur.declared.contains(p) {
                        finished.insert(p);
                    }
                }
                cur.est_pos = Some(pos + 1);
            } else {
                cur.est_pos = None; // deviated: stop trusting the plan
            }
        }
        cur.declared = cur.declared.union(finished);
        upd.finished = finished;
        upd
    }

    fn replan(
        &mut self,
        req: &Request,
        observed: PartitionSet,
        _attempt: u32,
        env: &mut PlanEnv<'_>,
    ) -> TxnPlan {
        // A transaction that touched an unpredicted partition restarts as a
        // multi-partition transaction locking all partitions (§6.4).
        self.plans_replanned += 1;
        *self.replans_by_proc.entry(req.proc).or_insert(0) += 1;
        let base = observed.first().unwrap_or(env.random_local_partition);
        self.passive_plan(req.proc, &req.args, base)
    }

    fn on_end(&mut self, outcome: TxnOutcome) {
        if let Some(mut cur) = self.cur.take() {
            if cur.passive {
                return;
            }
            let pred = &mut self.procs[cur.proc as usize];
            let (model, monitor) = pred.models.model_mut(cur.model_idx);
            let from = cur.tracker.current();
            cur.tracker
                .finish(model, matches!(outcome, TxnOutcome::Committed));
            let to = cur.tracker.current();
            if monitor.observe(model, from, to) {
                self.recomputations += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::{train, TrainingConfig};
    use common::Value;
    use engine::{run_offline, RequestGenerator};
    use trace::Workload;
    use workloads::{tpcc, Bench};

    fn trained(parts: u32, n: usize, partitioned: bool) -> (Houdini, Catalog) {
        let mut db = Bench::Tpcc.database(parts);
        let reg = Bench::Tpcc.registry();
        let catalog = reg.catalog();
        let mut gen = tpcc::Generator::new(parts, 7);
        let mut records = Vec::new();
        for i in 0..n {
            let (proc, args) = gen.next_request(i as u64 % 8);
            let out = run_offline(&mut db, &reg, &catalog, proc, &args, true).unwrap();
            records.push(out.record);
        }
        let cfg = TrainingConfig { partitioned, ..Default::default() };
        let preds = train(&catalog, parts, &Workload { records }, &cfg);
        (
            Houdini::new(preds, catalog.clone(), parts, HoudiniConfig::default()),
            catalog,
        )
    }

    fn new_order_req(w: i64, o: i64, item_ws: &[i64]) -> Request {
        Request {
            proc: 1,
            args: vec![
                Value::Int(w),
                Value::Int(o),
                Value::Int(3),
                Value::Array((0..item_ws.len()).map(|k| Value::Int(k as i64 + 1)).collect()),
                Value::Array(item_ws.iter().map(|&x| Value::Int(x)).collect()),
                Value::Array(item_ws.iter().map(|_| Value::Int(1)).collect()),
            ],
            origin_node: 0,
        }
    }

    #[test]
    fn plans_local_new_order_single_partition() {
        let (mut h, catalog) = trained(2, 600, false);
        let mut db = Bench::Tpcc.database(2);
        let reg = Bench::Tpcc.registry();
        let mut env = PlanEnv {
            db: &mut db,
            registry: &reg,
            catalog: &catalog,
            num_partitions: 2,
            random_local_partition: 0,
        };
        let req = new_order_req(1, 90_000, &[1, 1, 1]);
        let plan = h.plan(&req, &mut env);
        assert_eq!(plan.base_partition, 1);
        assert_eq!(plan.lock_set, PartitionSet::single(1));
        assert!(plan.estimate_cost_us > 0.0);
    }

    #[test]
    fn plans_remote_new_order_distributed() {
        let (mut h, catalog) = trained(2, 600, false);
        let mut db = Bench::Tpcc.database(2);
        let reg = Bench::Tpcc.registry();
        let mut env = PlanEnv {
            db: &mut db,
            registry: &reg,
            catalog: &catalog,
            num_partitions: 2,
            random_local_partition: 0,
        };
        let req = new_order_req(0, 90_001, &[0, 0, 1]);
        let plan = h.plan(&req, &mut env);
        assert_eq!(plan.lock_set, PartitionSet::all(2));
        assert_eq!(plan.base_partition, 0, "home warehouse accessed most");
    }

    #[test]
    fn never_disables_undo_for_abortable_path() {
        // NewOrder can abort (invalid item, ~1%): its estimated abort
        // probability is nonzero, so OP3 must stay off initially.
        let (mut h, catalog) = trained(2, 600, false);
        let mut db = Bench::Tpcc.database(2);
        let reg = Bench::Tpcc.registry();
        let mut env = PlanEnv {
            db: &mut db,
            registry: &reg,
            catalog: &catalog,
            num_partitions: 2,
            random_local_partition: 0,
        };
        let req = new_order_req(0, 90_002, &[0, 0, 0]);
        let plan = h.plan(&req, &mut env);
        assert!(!plan.disable_undo);
    }

    #[test]
    fn replan_locks_all_and_goes_passive() {
        let (mut h, catalog) = trained(2, 400, false);
        let mut db = Bench::Tpcc.database(2);
        let reg = Bench::Tpcc.registry();
        let mut env = PlanEnv {
            db: &mut db,
            registry: &reg,
            catalog: &catalog,
            num_partitions: 2,
            random_local_partition: 0,
        };
        let req = new_order_req(0, 90_003, &[0, 0, 0]);
        h.plan(&req, &mut env);
        let plan = h.replan(&req, PartitionSet::single(1), 1, &mut env);
        assert_eq!(plan.lock_set, PartitionSet::all(2));
        assert!(!plan.disable_undo);
        // The retry keeps undo logging on no matter what it observes.
        let upd = h.on_query(&ExecutedQuery {
            query: 0,
            params: vec![Value::Int(0)],
            partitions: PartitionSet::single(0),
            is_write: false,
        });
        assert!(!upd.disable_undo);
    }

    #[test]
    fn threshold_zero_locks_everything() {
        let (mut h, catalog) = trained(2, 400, false);
        h.cfg.threshold = 0.0;
        let mut db = Bench::Tpcc.database(2);
        let reg = Bench::Tpcc.registry();
        let mut env = PlanEnv {
            db: &mut db,
            registry: &reg,
            catalog: &catalog,
            num_partitions: 2,
            random_local_partition: 0,
        };
        let req = new_order_req(1, 90_004, &[1, 1, 1]);
        let plan = h.plan(&req, &mut env);
        assert_eq!(
            plan.lock_set,
            PartitionSet::all(2),
            "threshold 0 admits every access estimation (Fig. 13)"
        );
        assert!(!plan.disable_undo);
    }

    #[test]
    fn runtime_updates_declare_finished_partitions() {
        let (mut h, catalog) = trained(2, 800, false);
        let mut db = Bench::Tpcc.database(2);
        let reg = Bench::Tpcc.registry();
        // Remote payment: customer at partition 1, warehouse at 0.
        let req = Request {
            proc: 3,
            args: vec![
                Value::Int(0),
                Value::Int(1),
                Value::Int(5),
                Value::Int(100),
                Value::Int(77_000),
            ],
            origin_node: 0,
        };
        let mut env = PlanEnv {
            db: &mut db,
            registry: &reg,
            catalog: &catalog,
            num_partitions: 2,
            random_local_partition: 0,
        };
        let plan = h.plan(&req, &mut env);
        assert_eq!(plan.lock_set.len(), 2, "payment locks buyer+warehouse");
        // Execute the real queries and feed them back; by the final history
        // insert, the customer partition should be declared finished.
        let out = run_offline(&mut db, &reg, &catalog, 3, &req.args, true).unwrap();
        let resolver = CatalogResolver::new(&catalog, 2);
        let mut declared = PartitionSet::EMPTY;
        for q in &out.record.queries {
            use trace::PartitionResolver as _;
            let parts = resolver.partitions(3, q.query, &q.params);
            let upd = h.on_query(&ExecutedQuery {
                query: q.query,
                params: q.params.clone(),
                partitions: parts,
                is_write: catalog.proc(3).query(q.query).is_write(),
            });
            declared = declared.union(upd.finished);
        }
        h.on_end(TxnOutcome::Committed);
        assert!(
            declared.contains(1),
            "customer partition declared finished (OP4), declared = {declared}"
        );
    }
}
