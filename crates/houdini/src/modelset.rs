//! Model sets: one global Markov model per procedure, or a feature-
//! partitioned family of models fronted by a decision tree (paper §5).

use common::{PartitionId, PartitionSet, ProcId, QueryId, Value};
use engine::{Catalog, PartitionHint};
use markov::{MarkovModel, ModelMonitor, QueryPartitionRule};
use ml::{DecisionTree, Feature};
use std::sync::Arc;

/// Adapts the engine catalog into the estimator's partition-rule interface.
pub struct CatalogRule<'a> {
    catalog: &'a Catalog,
    proc: ProcId,
    num_partitions: u32,
}

impl<'a> CatalogRule<'a> {
    /// Rule for `proc` under a cluster of `num_partitions`.
    pub fn new(catalog: &'a Catalog, proc: ProcId, num_partitions: u32) -> Self {
        CatalogRule { catalog, proc, num_partitions }
    }
}

impl QueryPartitionRule for CatalogRule<'_> {
    fn partition_param(&self, query: QueryId) -> Option<usize> {
        match self.catalog.proc(self.proc).query(query).hint {
            PartitionHint::Param(i) => Some(i),
            PartitionHint::Broadcast => None,
        }
    }

    fn partition_of(&self, v: &Value) -> PartitionId {
        match v {
            Value::Int(i) => (i.unsigned_abs() % u64::from(self.num_partitions)) as PartitionId,
            other => (other.stable_hash() % u64::from(self.num_partitions)) as PartitionId,
        }
    }

    fn num_partitions(&self) -> u32 {
        self.num_partitions
    }
}

/// A procedure's models: global, or partitioned by input-parameter features
/// with a run-time decision tree (§5.3).
///
/// Models are held behind `Arc` so a whole [`ModelSet`] (and therefore a
/// whole predictor vector) clones in O(models) pointer bumps: the live
/// maintenance thread snapshots the current epoch, deep-copies *only* the
/// drifted model via [`ModelSet::model_arc_mut`] + `Arc::make_mut`, and
/// publishes the result as the next epoch (clone-on-write, §4.5).
#[derive(Clone, serde::Serialize, serde::Deserialize)]
pub enum ModelSet {
    /// One model covers every invocation.
    Global {
        /// The model.
        model: Arc<MarkovModel>,
        /// Its maintenance monitor.
        monitor: ModelMonitor,
    },
    /// Per-cluster models selected by feature vector.
    Partitioned {
        /// Feature schema (all candidate features, Table 1 × params).
        schema: Vec<Feature>,
        /// Indices into `schema` the clusterer/tree actually use.
        selected: Vec<usize>,
        /// The run-time router.
        tree: DecisionTree,
        /// One model per cluster.
        models: Vec<Arc<MarkovModel>>,
        /// One monitor per cluster model.
        monitors: Vec<ModelMonitor>,
        /// Cluster size the features were hashed against.
        num_partitions: u32,
    },
}

impl ModelSet {
    /// Number of models in the set.
    pub fn len(&self) -> usize {
        match self {
            ModelSet::Global { .. } => 1,
            ModelSet::Partitioned { models, .. } => models.len(),
        }
    }

    /// Always at least one model.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Rebuilds every model's vertex index (after deserialization, where
    /// each `Arc` is freshly created and unique — `make_mut` copies
    /// nothing).
    pub fn rebuild_indexes(&mut self) {
        match self {
            ModelSet::Global { model, .. } => Arc::make_mut(model).rebuild_index(),
            ModelSet::Partitioned { models, .. } => {
                for m in models {
                    Arc::make_mut(m).rebuild_index();
                }
            }
        }
    }

    /// Total vertices across the set (scalability diagnostics, §4.6).
    pub fn total_states(&self) -> usize {
        match self {
            ModelSet::Global { model, .. } => model.len(),
            ModelSet::Partitioned { models, .. } => models.iter().map(|m| m.len()).sum(),
        }
    }

    /// Selects the model index for a request's arguments — a decision-tree
    /// traversal for partitioned sets (§5.3), constant for global sets.
    pub fn select(&self, args: &[Value]) -> usize {
        match self {
            ModelSet::Global { .. } => 0,
            ModelSet::Partitioned { schema, selected, tree, models, num_partitions, .. } => {
                let fv = ml::extract_features(schema, args, *num_partitions);
                let dense = ml::feature::densify(&fv, selected);
                tree.predict(&dense).min(models.len().saturating_sub(1))
            }
        }
    }

    /// The selected model, immutably.
    pub fn model(&self, idx: usize) -> &MarkovModel {
        match self {
            ModelSet::Global { model, .. } => model,
            ModelSet::Partitioned { models, .. } => &models[idx],
        }
    }

    /// The selected model's `Arc` handle, mutably — the maintenance
    /// thread's clone-on-write entry point: `Arc::make_mut` on a snapshot
    /// clone deep-copies exactly this one model and leaves every other
    /// model shared with the previous epoch.
    pub fn model_arc_mut(&mut self, idx: usize) -> &mut Arc<MarkovModel> {
        match self {
            ModelSet::Global { model, .. } => model,
            ModelSet::Partitioned { models, .. } => &mut models[idx],
        }
    }

    /// The selected model plus its monitor, mutably (the simulator's
    /// in-place tracking and maintenance; copies only if the model is
    /// still shared with a published live epoch).
    pub fn model_mut(&mut self, idx: usize) -> (&mut MarkovModel, &mut ModelMonitor) {
        match self {
            ModelSet::Global { model, monitor } => (Arc::make_mut(model), monitor),
            ModelSet::Partitioned { models, monitors, .. } => {
                (Arc::make_mut(&mut models[idx]), &mut monitors[idx])
            }
        }
    }
}

/// Derives, for OP2, the partitions whose access estimate clears the
/// confidence threshold (see `advisor`): partitions on the estimated path
/// use their first-touch confidence; partitions off the path use the
/// highest access probability any visited *query* state's table assigns
/// them (the Fig. 5 "5% chance to touch partition 1" entries). The begin
/// vertex is excluded from that fallback: its table aggregates the
/// procedure-wide prior over every training invocation, so consulting it
/// would lock any partition whose marginal access frequency clears the
/// threshold (e.g. both halves of a uniform two-warehouse TPC-C) no matter
/// what the estimated path says. Query vertices carry the path-conditioned
/// probability, which is the quantity OP2 wants.
pub fn lock_set_for(
    est: &markov::PathEstimate,
    model: &MarkovModel,
    threshold: f64,
    num_partitions: u32,
) -> PartitionSet {
    let mut set = PartitionSet::EMPTY;
    for p in 0..num_partitions {
        let conf = match est.partition_confidence.get(&p) {
            Some(&c) => c,
            None => est
                .vertices
                .iter()
                .filter(|&&v| matches!(model.vertex(v).key.kind, markov::QueryKind::Query(_)))
                .map(|&v| model.vertex(v).table.access(p))
                .fold(0.0f64, f64::max),
        };
        if conf >= threshold {
            set.insert(p);
        }
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use engine::{ProcDef, QueryDef, QueryOp};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_proc(ProcDef {
            name: "P".into(),
            queries: vec![
                QueryDef {
                    name: "A".into(),
                    table: 0,
                    op: QueryOp::GetByKey { key_params: vec![0] },
                    hint: PartitionHint::Param(0),
                },
                QueryDef {
                    name: "B".into(),
                    table: 0,
                    op: QueryOp::LookupBy { column: 1, param: 0 },
                    hint: PartitionHint::Broadcast,
                },
            ],
            read_only: true,
            can_abort: false,
        });
        c
    }

    #[test]
    fn catalog_rule_maps_hints() {
        let c = catalog();
        let r = CatalogRule::new(&c, 0, 8);
        assert_eq!(r.partition_param(0), Some(0));
        assert_eq!(r.partition_param(1), None);
        assert_eq!(r.partition_of(&Value::Int(10)), 2);
        assert_eq!(r.num_partitions(), 8);
    }

    #[test]
    fn global_set_selects_zero() {
        let set = ModelSet::Global {
            model: Arc::new(MarkovModel::new(0, 4)),
            monitor: ModelMonitor::new(),
        };
        assert_eq!(set.select(&[Value::Int(9)]), 0);
        assert_eq!(set.len(), 1);
        assert_eq!(set.total_states(), 3);
    }
}
