//! Trained-predictor persistence.
//!
//! The paper's deployment (Fig. 6) generates models off-line and provides
//! them to the Houdini instance on every node. This module serializes the
//! complete trained state — model sets (global or partitioned, including
//! decision trees and selected features), parameter mappings, and the
//! abort-safety metadata — so training can run once and ship everywhere.

use crate::train::ProcPredictor;
use common::{Error, Result};
use std::io::{BufRead, Write};

/// Wire envelope: the cluster size the predictors were trained against plus
/// the per-procedure predictors.
#[derive(serde::Serialize, serde::Deserialize)]
struct PredictorBundle {
    num_partitions: u32,
    predictors: Vec<ProcPredictor>,
}

/// Serializes trained predictors as JSON into `w`.
pub fn save_predictors<W: Write>(
    predictors: &[ProcPredictor],
    num_partitions: u32,
    mut w: W,
) -> Result<()> {
    let bundle = PredictorBundle { num_partitions, predictors: predictors.to_vec() };
    let json = serde_json::to_string(&bundle).map_err(|e| Error::Serde(e.to_string()))?;
    w.write_all(json.as_bytes()).map_err(|e| Error::Serde(e.to_string()))
}

/// Deserializes trained predictors, rebuilding every model's vertex index,
/// and rejects bundles trained for a different cluster size (models must be
/// regenerated when the partitioning scheme changes, §3.1).
pub fn load_predictors<R: BufRead>(
    mut r: R,
    expected_partitions: u32,
) -> Result<Vec<ProcPredictor>> {
    let mut buf = String::new();
    r.read_to_string(&mut buf).map_err(|e| Error::Serde(e.to_string()))?;
    let mut bundle: PredictorBundle =
        serde_json::from_str(&buf).map_err(|e| Error::Serde(e.to_string()))?;
    if bundle.num_partitions != expected_partitions {
        return Err(Error::Other(format!(
            "predictors were trained for {} partitions, cluster has {expected_partitions}; \
             retrain from the trace (§3.1)",
            bundle.num_partitions
        )));
    }
    for pred in &mut bundle.predictors {
        pred.models.rebuild_indexes();
    }
    Ok(bundle.predictors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::{train, TrainingConfig};
    use crate::{evaluate_accuracy, AccuracyReport};
    use engine::{run_offline, RequestGenerator};
    use trace::{TraceRecord, Workload};
    use workloads::Bench;

    fn fixture(parts: u32, n: usize) -> (engine::Catalog, Vec<TraceRecord>) {
        let mut db = Bench::Tpcc.database(parts);
        let reg = Bench::Tpcc.registry();
        let catalog = reg.catalog();
        let mut gen = Bench::Tpcc.generator(parts, 17);
        let mut records = Vec::new();
        for i in 0..n {
            let (proc, args) = gen.next_request(i as u64 % 8);
            let out = run_offline(&mut db, &reg, &catalog, proc, &args, true).unwrap();
            records.push(out.record);
        }
        (catalog, records)
    }

    #[test]
    fn round_trip_preserves_predictions() {
        let parts = 4;
        let (catalog, records) = fixture(parts, 1000);
        let (train_recs, test_recs) = records.split_at(500);
        let wl = Workload { records: train_recs.to_vec() };
        let preds = train(&catalog, parts, &wl, &TrainingConfig::default());

        let mut buf = Vec::new();
        save_predictors(&preds, parts, &mut buf).unwrap();
        let loaded = load_predictors(&buf[..], parts).unwrap();
        assert_eq!(loaded.len(), preds.len());

        // Accuracy of the loaded predictors matches the originals exactly.
        for (proc, (a, b)) in preds.iter().zip(&loaded).enumerate() {
            let test: Vec<&TraceRecord> =
                test_recs.iter().filter(|r| r.proc == proc as u32).collect();
            let ra: AccuracyReport = evaluate_accuracy(a, &catalog, parts, proc as u32, &test, 0.5);
            let rb: AccuracyReport = evaluate_accuracy(b, &catalog, parts, proc as u32, &test, 0.5);
            assert_eq!(ra.total, rb.total, "proc {proc}");
            assert_eq!(ra.op2, rb.op2, "proc {proc}");
        }
    }

    #[test]
    fn wrong_cluster_size_rejected() {
        let parts = 2;
        let (catalog, records) = fixture(parts, 200);
        let wl = Workload { records };
        let preds = train(&catalog, parts, &wl, &TrainingConfig::default());
        let mut buf = Vec::new();
        save_predictors(&preds, parts, &mut buf).unwrap();
        assert!(load_predictors(&buf[..], 8).is_err());
    }
}
