//! Off-line training: mappings, models, clustering, feature selection
//! (paper §3.2, §4.1, §5).

use crate::modelset::{CatalogRule, ModelSet};
use common::{FxHashMap, FxHashSet, PartitionSet, ProcId, QueryId};
use engine::{Catalog, CatalogResolver};
use mapping::{build_mapping, MappingConfig, ProcMapping};
use markov::{build_model, estimate_path, EstimateConfig, MarkovModel, ModelMonitor};
use ml::{
    extract_features, feature_schema, feed_forward_select, fit_em, train_tree, EmConfig,
    SelectionConfig,
};
use trace::{split_worksets, PartitionResolver, TraceRecord, Workload};

/// Training knobs.
#[derive(Debug, Clone)]
pub struct TrainingConfig {
    /// Build partitioned model sets (§5) rather than one global model.
    pub partitioned: bool,
    /// Parameter-mapping threshold (§4.1).
    pub mapping: MappingConfig,
    /// EM clustering knobs.
    pub em: EmConfig,
    /// Feed-forward selection knobs.
    pub selection: SelectionConfig,
    /// Procedures whose transactions exceed this many queries are disabled
    /// — Houdini takes too long to traverse such models (§4.6, the paper
    /// uses 175–200 and turns CheckWinningBids off).
    pub max_queries_per_txn: usize,
    /// Cap on records used inside the feature-selection evaluator.
    pub eval_sample: usize,
    /// Path-estimation knobs.
    pub estimate: EstimateConfig,
}

impl Default for TrainingConfig {
    fn default() -> Self {
        TrainingConfig {
            partitioned: true,
            mapping: MappingConfig::default(),
            em: EmConfig::default(),
            selection: SelectionConfig::default(),
            max_queries_per_txn: 175,
            eval_sample: 600,
            estimate: EstimateConfig::default(),
        }
    }
}

/// One procedure's trained prediction state.
#[derive(Clone, serde::Serialize, serde::Deserialize)]
pub struct ProcPredictor {
    /// The models (global or partitioned).
    pub models: ModelSet,
    /// The parameter mapping.
    pub mapping: ProcMapping,
    /// True if Houdini is switched off for this procedure (no trace, or
    /// transactions too long — Table 4 row M).
    pub disabled: bool,
    /// Fraction of training records that aborted.
    pub abort_rate: f64,
    /// Per model in the set: did its own training records include aborts?
    /// A model that never saw an abort cannot be trusted when it claims an
    /// abort probability of zero for a procedure that does abort — acting
    /// on that claim disables undo logging and makes a later abort
    /// unrecoverable, the "infinite penalty" case of §4.3/§5.2.
    pub saw_abort: Vec<bool>,
    /// True if the procedure's control code contains an abort path at all
    /// (catalog metadata; a static property of the stored procedure, §2
    /// OP3's "assumes the control code is robust").
    pub can_abort: bool,
    /// `(query, counter)` signatures that appeared in the prefix of some
    /// aborting training record: from these control-flow positions an abort
    /// is still reachable. Aggregated over *all* records, so sparse
    /// per-partition vertices inherit procedure-level abort knowledge.
    pub unsafe_signatures: FxHashSet<(QueryId, u16)>,
}

impl ProcPredictor {
    /// True if model `idx`'s zero-abort-probability claims are sound.
    pub fn trust_abort_estimates(&self, idx: usize) -> bool {
        self.abort_rate == 0.0 || self.saw_abort.get(idx).copied().unwrap_or(false)
    }

    /// True if undo logging may be disabled for the *whole* transaction:
    /// only procedures whose control code cannot abort qualify (§4.3).
    pub fn abort_safe_initial(&self) -> bool {
        !self.can_abort
    }

    /// True if, having just executed the invocation with signature `sig`,
    /// the control code can no longer reach an abort (§4.4 OP3). Requires
    /// training evidence: an abortable procedure whose trace shows no
    /// aborts is never trusted.
    pub fn abort_safe_after(&self, sig: (QueryId, u16)) -> bool {
        if !self.can_abort {
            return true;
        }
        if self.abort_rate == 0.0 {
            return false;
        }
        !self.unsafe_signatures.contains(&sig)
    }
}

/// Collects the abort-reachable `(query, counter)` signatures of a record
/// set: every prefix position of every aborting record.
fn unsafe_signatures_of(records: &[&TraceRecord]) -> FxHashSet<(QueryId, u16)> {
    let mut set = FxHashSet::default();
    for rec in records.iter().filter(|r| r.aborted) {
        let mut counters: FxHashMap<QueryId, u16> = FxHashMap::default();
        for q in &rec.queries {
            let c = counters.entry(q.query).or_insert(0);
            set.insert((q.query, *c));
            *c += 1;
        }
    }
    set
}

/// Trains predictors for every procedure in the catalog.
pub fn train(
    catalog: &Catalog,
    num_partitions: u32,
    workload: &Workload,
    cfg: &TrainingConfig,
) -> Vec<ProcPredictor> {
    (0..catalog.len() as ProcId)
        .map(|proc| {
            let records = workload.for_proc(proc);
            train_proc(catalog, num_partitions, proc, &records, cfg)
        })
        .collect()
}

/// Trains one procedure's predictor from its trace records.
pub fn train_proc(
    catalog: &Catalog,
    num_partitions: u32,
    proc: ProcId,
    records: &[&TraceRecord],
    cfg: &TrainingConfig,
) -> ProcPredictor {
    let resolver = CatalogResolver::new(catalog, num_partitions);
    let disabled =
        records.is_empty() || records.iter().any(|r| r.queries.len() > cfg.max_queries_per_txn);
    if disabled {
        return ProcPredictor {
            models: ModelSet::Global {
                model: std::sync::Arc::new(MarkovModel::new(proc, num_partitions)),
                monitor: ModelMonitor::new(),
            },
            mapping: ProcMapping::empty(),
            disabled: true,
            abort_rate: 0.0,
            saw_abort: vec![false],
            can_abort: true,
            unsafe_signatures: FxHashSet::default(),
        };
    }
    let abort_rate = records.iter().filter(|r| r.aborted).count() as f64 / records.len() as f64;
    let can_abort = catalog.proc(proc).can_abort;
    let unsafe_signatures = unsafe_signatures_of(records);
    let mapping = build_mapping(records, &cfg.mapping);
    if !cfg.partitioned {
        return ProcPredictor {
            models: ModelSet::Global {
                model: std::sync::Arc::new(build_model(proc, records, &resolver)),
                monitor: ModelMonitor::new(),
            },
            mapping,
            disabled: false,
            abort_rate,
            saw_abort: vec![abort_rate > 0.0],
            can_abort,
            unsafe_signatures,
        };
    }

    // §5: cluster on features of the input parameters, with feed-forward
    // selection of the feature set that predicts best.
    let num_params = records.iter().map(|r| r.params.len()).max().unwrap_or(0);
    let schema = feature_schema(num_params);
    let all_features: Vec<usize> = (0..schema.len()).collect();
    let sample: Vec<&TraceRecord> = records.iter().copied().take(cfg.eval_sample).collect();

    let selected = feed_forward_select(&all_features, &cfg.selection, |feats| {
        evaluate_feature_set(catalog, num_partitions, proc, &sample, &schema, feats, &mapping, cfg)
    });
    // Compare against the global model's cost on the same worksets; keep
    // the clustering only if it actually predicts better (§5.2's premise).
    let global_cost =
        evaluate_feature_set(catalog, num_partitions, proc, &sample, &schema, &[], &mapping, cfg);
    let clustered_cost = if selected.is_empty() {
        f64::INFINITY
    } else {
        evaluate_feature_set(
            catalog,
            num_partitions,
            proc,
            &sample,
            &schema,
            &selected,
            &mapping,
            cfg,
        )
    };
    if selected.is_empty() || clustered_cost >= global_cost {
        return ProcPredictor {
            models: ModelSet::Global {
                model: std::sync::Arc::new(build_model(proc, records, &resolver)),
                monitor: ModelMonitor::new(),
            },
            mapping,
            disabled: false,
            abort_rate,
            saw_abort: vec![abort_rate > 0.0],
            can_abort,
            unsafe_signatures,
        };
    }

    // Final fit over the full trace: cluster, label, per-cluster models,
    // and the C4.5 routing tree (§5.3).
    let dense: Vec<Vec<f64>> = records
        .iter()
        .map(|r| {
            let fv = extract_features(&schema, &r.params, num_partitions);
            ml::feature::densify(&fv, &selected)
        })
        .collect();
    let em = fit_em(&dense, &cfg.em);
    let labels: Vec<usize> = dense.iter().map(|x| em.assign(x)).collect();
    let tree = train_tree(&dense, &labels, 12);
    let mut models = Vec::with_capacity(em.k);
    let mut monitors = Vec::with_capacity(em.k);
    let mut saw_abort = Vec::with_capacity(em.k);
    for c in 0..em.k {
        let cluster_records: Vec<&TraceRecord> =
            records.iter().zip(&labels).filter(|(_, &l)| l == c).map(|(r, _)| *r).collect();
        let model = if cluster_records.is_empty() {
            saw_abort.push(abort_rate > 0.0);
            build_model(proc, records, &resolver) // empty cluster: fall back
        } else {
            saw_abort.push(cluster_records.iter().any(|r| r.aborted));
            build_model(proc, &cluster_records, &resolver)
        };
        models.push(std::sync::Arc::new(model));
        monitors.push(ModelMonitor::new());
    }
    ProcPredictor {
        models: ModelSet::Partitioned { schema, selected, tree, models, monitors, num_partitions },
        mapping,
        disabled: false,
        abort_rate,
        saw_abort,
        can_abort,
        unsafe_signatures,
    }
}

/// Ground truth derived from a trace record under the current cluster
/// configuration.
pub struct ActualTxn {
    /// Partitions the transaction touched.
    pub touched: PartitionSet,
    /// Per-partition access counts.
    pub counts: FxHashMap<u32, u32>,
    /// Whether it aborted.
    pub aborted: bool,
}

/// Resolves a record into its actual partition behaviour.
pub fn actual_of(rec: &TraceRecord, resolver: &dyn PartitionResolver) -> ActualTxn {
    let mut touched = PartitionSet::EMPTY;
    let mut counts: FxHashMap<u32, u32> = FxHashMap::default();
    for q in &rec.queries {
        let parts = resolver.partitions(rec.proc, q.query, &q.params);
        touched = touched.union(parts);
        for p in parts.iter() {
            *counts.entry(p).or_insert(0) += 1;
        }
    }
    ActualTxn { touched, counts, aborted: rec.aborted }
}

/// True if `base` is one of the most-accessed partitions in `actual`.
pub fn base_is_best(base: Option<u32>, actual: &ActualTxn) -> bool {
    let max = actual.counts.values().copied().max().unwrap_or(0);
    if max == 0 {
        return true; // nothing accessed: any base is fine
    }
    match base {
        None => false,
        Some(b) => actual.counts.get(&b).copied().unwrap_or(0) == max,
    }
}

/// The feed-forward evaluator (§5.2): split the sample 30/30/40, seed the
/// clusterer on the training workset, build per-cluster models from the
/// validation workset, and charge prediction penalties on the testing
/// workset. An empty feature set scores the single global model. Penalties:
/// 1 per wrong base partition (OP1), 1 per wrong partition set (OP2), and
/// effectively infinite for a fatal undo-logging mispredict (OP3).
#[allow(clippy::too_many_arguments)]
#[doc(hidden)]
pub fn evaluate_feature_set(
    catalog: &Catalog,
    num_partitions: u32,
    proc: ProcId,
    sample: &[&TraceRecord],
    schema: &[ml::Feature],
    feats: &[usize],
    mapping: &ProcMapping,
    cfg: &TrainingConfig,
) -> f64 {
    let resolver = CatalogResolver::new(catalog, num_partitions);
    let (train_ws, val_ws, test_ws) = split_worksets(sample, 0.3, 0.3);
    if test_ws.is_empty() || val_ws.is_empty() {
        return f64::INFINITY;
    }
    let densify = |r: &TraceRecord| {
        let fv = extract_features(schema, &r.params, num_partitions);
        ml::feature::densify(&fv, feats)
    };
    // Cluster assignment: trivial when no features are selected.
    let em = if feats.is_empty() {
        None
    } else {
        let data: Vec<Vec<f64>> = train_ws.iter().map(|r| densify(r)).collect();
        Some(fit_em(&data, &cfg.em))
    };
    let k = em.as_ref().map(|m| m.k).unwrap_or(1);
    let assign =
        |r: &TraceRecord| -> usize { em.as_ref().map(|m| m.assign(&densify(r))).unwrap_or(0) };
    // Models from the validation workset.
    let mut buckets: Vec<Vec<&TraceRecord>> = vec![Vec::new(); k];
    for r in &val_ws {
        buckets[assign(r)].push(*r);
    }
    let models: Vec<MarkovModel> = buckets
        .iter()
        .map(|b| {
            if b.is_empty() {
                build_model(proc, &val_ws, &resolver)
            } else {
                build_model(proc, b, &resolver)
            }
        })
        .collect();
    // Score on the testing workset.
    let rule = CatalogRule::new(catalog, proc, num_partitions);
    let mut cost = 0.0;
    for r in &test_ws {
        let model = &models[assign(r)];
        let est = estimate_path(model, &rule, mapping, &r.params, &cfg.estimate);
        let actual = actual_of(r, &resolver);
        if !base_is_best(est.best_base(), &actual) {
            cost += 1.0;
        }
        if est.touched != actual.touched {
            cost += 1.0;
        }
        let would_disable = est.abort_prob < 1e-9 && est.reached_commit;
        if would_disable && actual.aborted {
            cost += 1000.0; // unrecoverable state: "infinite" penalty (§5.2)
        }
    }
    cost / test_ws.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use common::Value;
    use engine::run_offline;
    use workloads::{tpcc, Bench};

    fn tpcc_workload(parts: u32, n: usize) -> (Catalog, Workload) {
        let mut db = Bench::Tpcc.database(parts);
        let reg = Bench::Tpcc.registry();
        let catalog = reg.catalog();
        let mut gen = tpcc::Generator::new(parts, 42);
        let mut records = Vec::with_capacity(n);
        use engine::RequestGenerator;
        for i in 0..n {
            let (proc, args) = gen.next_request(i as u64 % 8);
            let out = run_offline(&mut db, &reg, &catalog, proc, &args, true).unwrap();
            records.push(out.record);
        }
        (catalog, Workload { records })
    }

    #[test]
    fn trains_all_tpcc_procs() {
        let (catalog, wl) = tpcc_workload(2, 400);
        let preds = train(&catalog, 2, &wl, &TrainingConfig::default());
        assert_eq!(preds.len(), 5);
        for (i, p) in preds.iter().enumerate() {
            assert!(!p.disabled, "proc {i} should be enabled");
            assert!(p.models.total_states() > 3, "proc {i} has real states");
        }
        // NewOrder's mapping links w_id and the item arrays.
        let no = catalog.proc_id("NewOrder").unwrap() as usize;
        assert!(!preds[no].mapping.is_empty());
    }

    #[test]
    fn global_training_builds_one_model_per_proc() {
        let (catalog, wl) = tpcc_workload(2, 300);
        let cfg = TrainingConfig { partitioned: false, ..Default::default() };
        let preds = train(&catalog, 2, &wl, &cfg);
        for p in &preds {
            assert_eq!(p.models.len(), 1);
        }
    }

    #[test]
    fn long_procedures_disabled() {
        // AuctionMark's CheckWinningBids (>175 queries at the evaluated
        // cluster sizes) must be disabled.
        let parts = 4;
        let mut db = Bench::AuctionMark.database(parts);
        let reg = Bench::AuctionMark.registry();
        let catalog = reg.catalog();
        let out = run_offline(&mut db, &reg, &catalog, 0, &[], true).unwrap();
        let wl = Workload { records: vec![out.record] };
        let preds = train(&catalog, parts, &wl, &TrainingConfig::default());
        assert!(preds[0].disabled, "CheckWinningBids must be disabled");
    }

    #[test]
    fn actual_of_matches_offline_touched() {
        let parts = 4;
        let mut db = Bench::Tpcc.database(parts);
        let reg = Bench::Tpcc.registry();
        let catalog = reg.catalog();
        let args = vec![
            Value::Int(0),
            Value::Int(5000),
            Value::Int(1),
            Value::Array(vec![Value::Int(1)]),
            Value::Array(vec![Value::Int(2)]),
            Value::Array(vec![Value::Int(1)]),
        ];
        let out = run_offline(&mut db, &reg, &catalog, 1, &args, true).unwrap();
        let resolver = CatalogResolver::new(&catalog, parts);
        let actual = actual_of(&out.record, &resolver);
        assert_eq!(actual.touched, out.touched);
        assert!(!actual.aborted);
        // The remote supplying warehouse (partition 2) receives 3 of the 5
        // accesses (CheckStock, InsertOrdLine, UpdateStock): it is the best
        // base, and the home warehouse is not.
        assert!(base_is_best(Some(2), &actual));
        assert!(!base_is_best(Some(0), &actual));
    }
}
