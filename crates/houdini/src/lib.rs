//! Houdini — the on-line prediction framework (paper §4–§5).
//!
//! Houdini sits beside the transaction coordinator on every node (Fig. 6).
//! Off-line, it derives parameter mappings and Markov models (global or
//! feature-partitioned) from a sample workload trace. On-line, for each new
//! request it selects a model with the decision tree, constructs the initial
//! execution-path estimate, and tells the DBMS which optimizations to
//! enable: the base partition (OP1), the partitions to lock (OP2), whether
//! undo logging can be skipped (OP3), and — as the transaction executes —
//! when it is finished with partitions so they can early-prepare and run
//! other transactions speculatively (OP4). It also monitors model accuracy
//! and recomputes probabilities when the workload drifts (§4.5).

pub mod accuracy;
pub mod advisor;
pub mod io;
pub mod modelset;
pub mod train;

pub use accuracy::{evaluate_accuracy, AccuracyReport};
pub use advisor::{Houdini, HoudiniConfig};
pub use io::{load_predictors, save_predictors};
pub use modelset::{CatalogRule, ModelSet};
pub use train::{train, train_proc, ProcPredictor, TrainingConfig};
