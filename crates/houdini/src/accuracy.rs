//! Off-line accuracy evaluation (paper §6.2, Table 3).
//!
//! An estimate is accurate when Houdini (1) identifies the optimizations at
//! the correct moment (OP3 — never disabling undo for a transaction that
//! aborts), (2) causes no unnecessary work (OP1 — right base partition,
//! OP2 — no unused locked partition), and (3) causes no restart (OP2 —
//! no unpredicted partition, OP4 — no access to a partition after declaring
//! it finished). Models are *not* updated between estimates, so deficiencies
//! are not masked by learning (§6.2).

use crate::modelset::{lock_set_for, CatalogRule};
use crate::train::{actual_of, base_is_best, ProcPredictor};
use common::{FxHashMap, PartitionSet, ProcId, QueryId};
use engine::{Catalog, CatalogResolver};
use markov::{estimate_path, EstimateConfig, QueryKind, VertexKey};
use trace::{PartitionResolver, TraceRecord};

/// Per-optimization accuracy over a test workset.
#[derive(Debug, Clone, Copy, Default)]
pub struct AccuracyReport {
    /// Transactions evaluated.
    pub txns: u64,
    /// OP1 (base partition) correct.
    pub op1: u64,
    /// OP2 (lock set) exactly right.
    pub op2: u64,
    /// OP3 (undo logging) safe.
    pub op3: u64,
    /// OP4 (early prepare) caused no restart.
    pub op4: u64,
    /// All four correct.
    pub total: u64,
}

impl AccuracyReport {
    fn pct(n: u64, d: u64) -> f64 {
        if d == 0 {
            100.0
        } else {
            100.0 * n as f64 / d as f64
        }
    }

    /// OP1 percentage.
    pub fn op1_pct(&self) -> f64 {
        Self::pct(self.op1, self.txns)
    }
    /// OP2 percentage.
    pub fn op2_pct(&self) -> f64 {
        Self::pct(self.op2, self.txns)
    }
    /// OP3 percentage.
    pub fn op3_pct(&self) -> f64 {
        Self::pct(self.op3, self.txns)
    }
    /// OP4 percentage.
    pub fn op4_pct(&self) -> f64 {
        Self::pct(self.op4, self.txns)
    }
    /// Overall percentage.
    pub fn total_pct(&self) -> f64 {
        Self::pct(self.total, self.txns)
    }

    /// Merges another report into this one (aggregating procedures).
    pub fn merge(&mut self, other: &AccuracyReport) {
        self.txns += other.txns;
        self.op1 += other.op1;
        self.op2 += other.op2;
        self.op3 += other.op3;
        self.op4 += other.op4;
        self.total += other.total;
    }
}

/// Evaluates one procedure's predictor on held-out records.
pub fn evaluate_accuracy(
    pred: &ProcPredictor,
    catalog: &Catalog,
    num_partitions: u32,
    proc: ProcId,
    test: &[&TraceRecord],
    threshold: f64,
) -> AccuracyReport {
    let mut rep = AccuracyReport::default();
    if pred.disabled {
        return rep;
    }
    let resolver = CatalogResolver::new(catalog, num_partitions);
    let rule = CatalogRule::new(catalog, proc, num_partitions);
    let est_cfg = EstimateConfig::default();
    for rec in test {
        rep.txns += 1;
        let idx = pred.models.select(&rec.params);
        let model = pred.models.model(idx);
        let est = estimate_path(model, &rule, &pred.mapping, &rec.params, &est_cfg);
        let actual = actual_of(rec, &resolver);

        let op1 = base_is_best(est.best_base(), &actual);
        let lock_set = {
            let mut s = lock_set_for(&est, model, threshold, num_partitions);
            if let Some(b) = est.best_base() {
                s.insert(b);
            }
            s
        };
        let op2 = lock_set == actual.touched;
        let would_disable = est.reached_commit && est.abort_prob < 1e-9;
        let op3 = !(would_disable && actual.aborted);
        let op4 = finish_predictions_safe(model, rec, &resolver, threshold);

        rep.op1 += u64::from(op1);
        rep.op2 += u64::from(op2);
        rep.op3 += u64::from(op3);
        rep.op4 += u64::from(op4);
        rep.total += u64::from(op1 && op2 && op3 && op4);
    }
    rep
}

/// Replays the record's actual path through the model's probability tables
/// and checks that no partition declared finished (finish probability above
/// the threshold, §4.4) is accessed again later — the OP4 mispredict that
/// forces an abort-and-restart.
fn finish_predictions_safe(
    model: &markov::MarkovModel,
    rec: &TraceRecord,
    resolver: &dyn PartitionResolver,
    threshold: f64,
) -> bool {
    let mut prev = PartitionSet::EMPTY;
    let mut counters: FxHashMap<QueryId, u16> = FxHashMap::default();
    let mut declared = PartitionSet::EMPTY;
    for q in &rec.queries {
        let parts = resolver.partitions(rec.proc, q.query, &q.params);
        // Accessing a declared-finished partition restarts the txn.
        if parts.intersect(declared) != PartitionSet::EMPTY {
            return false;
        }
        let counter = {
            let c = counters.entry(q.query).or_insert(0);
            let cur = *c;
            *c += 1;
            cur
        };
        let key = VertexKey {
            kind: QueryKind::Query(q.query),
            counter,
            partitions: parts,
            previous: prev,
        };
        prev = prev.union(parts);
        let Some(v) = model.find(&key) else {
            // Unknown state: no table, no declarations possible from here.
            continue;
        };
        let table = &model.vertex(v).table;
        for p in prev.iter() {
            if !declared.contains(p) && table.finish(p) > threshold {
                declared.insert(p);
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::{train, TrainingConfig};
    use engine::{run_offline, RequestGenerator};
    use trace::Workload;
    use workloads::{tatp, Bench};

    fn tatp_records(parts: u32, n: usize) -> (Catalog, Vec<TraceRecord>) {
        let mut db = Bench::Tatp.database(parts);
        let reg = Bench::Tatp.registry();
        let catalog = reg.catalog();
        let mut gen = tatp::Generator::new(parts, 21);
        let mut records = Vec::new();
        for i in 0..n {
            let (proc, args) = gen.next_request(i as u64 % 8);
            let out = run_offline(&mut db, &reg, &catalog, proc, &args, true).unwrap();
            records.push(out.record);
        }
        (catalog, records)
    }

    #[test]
    fn tatp_global_accuracy_is_high() {
        let parts = 4;
        let (catalog, records) = tatp_records(parts, 1200);
        let (train_recs, test_recs) = records.split_at(600);
        let wl = Workload { records: train_recs.to_vec() };
        let cfg = TrainingConfig { partitioned: false, ..Default::default() };
        let preds = train(&catalog, parts, &wl, &cfg);
        let mut agg = AccuracyReport::default();
        for (proc, pred) in preds.iter().enumerate() {
            let test: Vec<&TraceRecord> =
                test_recs.iter().filter(|r| r.proc == proc as u32).collect();
            let rep = evaluate_accuracy(pred, &catalog, parts, proc as u32, &test, 0.5);
            agg.merge(&rep);
        }
        assert!(agg.txns > 400);
        assert!(agg.op3_pct() > 99.0, "OP3 must never be fatally wrong");
        assert!(agg.total_pct() > 70.0, "overall accuracy {:.1}% too low", agg.total_pct());
    }

    #[test]
    fn disabled_predictor_reports_zero_txns() {
        let (catalog, records) = tatp_records(2, 50);
        let wl = Workload { records: records.clone() };
        let mut cfg = TrainingConfig { partitioned: false, ..Default::default() };
        cfg.max_queries_per_txn = 0; // force everything disabled
        let preds = train(&catalog, 2, &wl, &cfg);
        let refs: Vec<&TraceRecord> = records.iter().collect();
        let rep = evaluate_accuracy(&preds[3], &catalog, 2, 3, &refs, 0.5);
        assert_eq!(rep.txns, 0);
    }
}
