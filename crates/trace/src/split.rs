//! Workset splitting for feed-forward feature selection (paper §5.2):
//! training (30%), validation (30%), testing (40%).

use crate::record::TraceRecord;

/// Splits `records` into (training, validation, testing) worksets by the
/// given fractions of the input order. Fractions must sum to ≤ 1.0; the
/// testing set receives the remainder. Order-preserving and deterministic.
pub fn split_worksets<'a>(
    records: &[&'a TraceRecord],
    train_frac: f64,
    validation_frac: f64,
) -> (Vec<&'a TraceRecord>, Vec<&'a TraceRecord>, Vec<&'a TraceRecord>) {
    assert!(train_frac >= 0.0 && validation_frac >= 0.0);
    assert!(train_frac + validation_frac <= 1.0 + 1e-9);
    let n = records.len();
    let n_train = ((n as f64) * train_frac).round() as usize;
    let n_val = ((n as f64) * validation_frac).round() as usize;
    let n_train = n_train.min(n);
    let n_val = n_val.min(n - n_train);
    let train = records[..n_train].to_vec();
    let val = records[n_train..n_train + n_val].to_vec();
    let test = records[n_train + n_val..].to_vec();
    (train, val, test)
}

#[cfg(test)]
mod tests {
    use super::*;
    use common::Value;

    fn recs(n: usize) -> Vec<TraceRecord> {
        (0..n)
            .map(|i| TraceRecord {
                proc: 0,
                params: vec![Value::Int(i as i64)],
                queries: vec![],
                aborted: false,
            })
            .collect()
    }

    #[test]
    fn paper_split_30_30_40() {
        let owned = recs(100);
        let refs: Vec<&TraceRecord> = owned.iter().collect();
        let (tr, va, te) = split_worksets(&refs, 0.3, 0.3);
        assert_eq!((tr.len(), va.len(), te.len()), (30, 30, 40));
        // Order preserved and disjoint.
        assert_eq!(tr[0].params[0], Value::Int(0));
        assert_eq!(va[0].params[0], Value::Int(30));
        assert_eq!(te[0].params[0], Value::Int(60));
    }

    #[test]
    fn empty_input() {
        let refs: Vec<&TraceRecord> = vec![];
        let (tr, va, te) = split_worksets(&refs, 0.3, 0.3);
        assert!(tr.is_empty() && va.is_empty() && te.is_empty());
    }

    #[test]
    fn tiny_input_never_overflows() {
        let owned = recs(1);
        let refs: Vec<&TraceRecord> = owned.iter().collect();
        let (tr, va, te) = split_worksets(&refs, 0.3, 0.3);
        assert_eq!(tr.len() + va.len() + te.len(), 1);
    }
}
