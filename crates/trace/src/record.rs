//! Trace record types and the partition-resolution hook.

use common::{PartitionSet, ProcId, QueryId, Value};
use serde::{Deserialize, Serialize};

/// One query invocation inside a transaction record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryRecord {
    /// Query id within the stored procedure's catalog entry.
    pub query: QueryId,
    /// The query input parameter values for this invocation.
    pub params: Vec<Value>,
}

/// One transaction in a workload trace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Stored procedure id within the benchmark catalog.
    pub proc: ProcId,
    /// The procedure input parameters sent by the client.
    pub params: Vec<Value>,
    /// The queries the transaction executed, in order.
    pub queries: Vec<QueryRecord>,
    /// True if the transaction ended in the abort state.
    pub aborted: bool,
}

impl TraceRecord {
    /// Number of queries executed.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True if the transaction executed no queries.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }
}

/// Resolves which partitions a query invocation touches under the *current*
/// cluster configuration — the paper's "DBMS internal API" (\[5\], §3.1). The
/// engine's catalog implements this; model generation and Houdini both call
/// it.
pub trait PartitionResolver {
    /// The set of partitions `query` of `proc` accesses given `params`.
    fn partitions(&self, proc: ProcId, query: QueryId, params: &[Value]) -> PartitionSet;
    /// True if the query writes (insert/update/delete).
    fn is_write(&self, proc: ProcId, query: QueryId) -> bool;
    /// Human-readable query name (for model display/DOT export).
    fn query_name(&self, proc: ProcId, query: QueryId) -> String;
    /// Number of partitions in the configuration being resolved against.
    fn num_partitions(&self) -> u32;
}

/// A full sample workload: many transaction records, possibly spanning many
/// procedures.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Workload {
    /// The transaction records, in collection order.
    pub records: Vec<TraceRecord>,
}

impl Workload {
    /// Creates an empty workload.
    pub fn new() -> Self {
        Workload::default()
    }

    /// Number of transaction records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if the workload holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records belonging to one stored procedure, in order.
    pub fn for_proc(&self, proc: ProcId) -> Vec<&TraceRecord> {
        self.records.iter().filter(|r| r.proc == proc).collect()
    }

    /// Distinct procedure ids present, ascending.
    pub fn procs(&self) -> Vec<ProcId> {
        let mut ids: Vec<ProcId> = self.records.iter().map(|r| r.proc).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(proc: ProcId, n: usize) -> TraceRecord {
        TraceRecord {
            proc,
            params: vec![Value::Int(proc as i64)],
            queries: (0..n)
                .map(|i| QueryRecord { query: i as QueryId, params: vec![Value::Int(i as i64)] })
                .collect(),
            aborted: false,
        }
    }

    #[test]
    fn workload_filtering() {
        let w = Workload { records: vec![rec(0, 1), rec(1, 2), rec(0, 3)] };
        assert_eq!(w.len(), 3);
        assert_eq!(w.for_proc(0).len(), 2);
        assert_eq!(w.for_proc(1).len(), 1);
        assert_eq!(w.procs(), vec![0, 1]);
    }

    #[test]
    fn record_len() {
        assert_eq!(rec(0, 4).len(), 4);
        assert!(!rec(0, 4).is_empty());
    }
}
