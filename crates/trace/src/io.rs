//! On-disk trace format: JSON lines (one transaction record per line).
//!
//! JSON keeps traces human-inspectable and diffable — they are the interface
//! artifact between off-line model generation and the running system.

use crate::record::{TraceRecord, Workload};
use common::{Error, Result};
use std::io::{BufRead, Write};

/// Serializes a workload as JSON lines into `w`.
pub fn write_trace<W: Write>(workload: &Workload, mut w: W) -> Result<()> {
    for rec in &workload.records {
        let line = serde_json::to_string(rec).map_err(|e| Error::Serde(e.to_string()))?;
        writeln!(w, "{line}").map_err(|e| Error::Serde(e.to_string()))?;
    }
    Ok(())
}

/// Reads a JSON-lines workload from `r`.
pub fn read_trace<R: BufRead>(r: R) -> Result<Workload> {
    let mut records = Vec::new();
    for line in r.lines() {
        let line = line.map_err(|e| Error::Serde(e.to_string()))?;
        if line.trim().is_empty() {
            continue;
        }
        let rec: TraceRecord =
            serde_json::from_str(&line).map_err(|e| Error::Serde(e.to_string()))?;
        records.push(rec);
    }
    Ok(Workload { records })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::QueryRecord;
    use common::Value;

    fn sample() -> Workload {
        Workload {
            records: vec![
                TraceRecord {
                    proc: 0,
                    params: vec![Value::Int(1), Value::Array(vec![Value::Int(2)])],
                    queries: vec![QueryRecord { query: 0, params: vec![Value::Int(1)] }],
                    aborted: false,
                },
                TraceRecord { proc: 1, params: vec![Value::Null], queries: vec![], aborted: true },
            ],
        }
    }

    #[test]
    fn round_trip() {
        let w = sample();
        let mut buf = Vec::new();
        write_trace(&w, &mut buf).unwrap();
        let back = read_trace(&buf[..]).unwrap();
        assert_eq!(back.records, w.records);
    }

    #[test]
    fn skips_blank_lines() {
        let w = sample();
        let mut buf = Vec::new();
        write_trace(&w, &mut buf).unwrap();
        buf.extend_from_slice(b"\n\n");
        let back = read_trace(&buf[..]).unwrap();
        assert_eq!(back.len(), 2);
    }

    #[test]
    fn rejects_garbage() {
        assert!(read_trace(&b"not json"[..]).is_err());
    }
}
