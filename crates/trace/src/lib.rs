//! Workload traces (paper §3.1).
//!
//! A trace contains, for each transaction: (1) its procedure input
//! parameters, and (2) the queries it executed with their corresponding
//! parameters. Deliberately, a trace does **not** encode which partitions
//! each query accessed — partitions depend on the cluster configuration, so
//! models must be regenerated from the trace (via a [`PartitionResolver`])
//! whenever the partitioning scheme changes.

pub mod io;
pub mod record;
pub mod split;

pub use io::{read_trace, write_trace};
pub use record::{PartitionResolver, QueryRecord, TraceRecord, Workload};
pub use split::split_worksets;
