//! Checker self-tests: known-good models pass exhaustively, known-bad
//! models (races, deadlocks, lost wakeups, weak-memory bugs) are caught,
//! and recorded failing schedules replay deterministically.

use checkers::sync::atomic::{AtomicU64, Ordering};
use checkers::sync::{Arc, Condvar, Mutex};
use checkers::{explore, FailureKind, Options, Outcome};

fn opts() -> Options {
    Options::default()
}

fn exhaustive() -> Options {
    Options { preemption_bound: None, ..Options::default() }
}

/// Two threads increment a counter with the read and the write in separate
/// critical sections: the lost update needs one preemption between them.
/// (A mutex, not an atomic, so the model is sequentially consistent and the
/// bound-0 test below is meaningful.)
fn torn_increment(model: &mut checkers::Model) {
    let c = Arc::new(Mutex::new(0u64));
    for _ in 0..2 {
        let c = c.clone();
        model.thread(move || {
            let v = *c.lock().unwrap();
            *c.lock().unwrap() = v + 1;
        });
    }
    let c2 = c.clone();
    model.after(move || {
        assert_eq!(*c2.lock().unwrap(), 2, "lost update");
    });
}

#[test]
fn lost_update_is_caught() {
    let report = explore(exhaustive(), torn_increment);
    let f = report.failure().expect("lost update must be found");
    assert_eq!(f.kind, FailureKind::Panic);
    assert!(f.message.contains("lost update"), "message: {}", f.message);
    eprintln!("[selftest::lost_update] {report}");
}

#[test]
fn preemption_bound_zero_misses_the_lost_update() {
    // With no preemptions allowed, each thread runs its load+store
    // atomically, so the interleaving that loses an update is outside the
    // bound — documenting exactly what the cap trades away.
    let report =
        explore(Options { preemption_bound: Some(0), ..Options::default() }, torn_increment);
    assert!(report.passed(), "bound 0 should not reach the race: {report}");
}

#[test]
fn atomic_rmw_increment_passes() {
    let report = explore(exhaustive(), |model| {
        let c = Arc::new(AtomicU64::new(0));
        for _ in 0..2 {
            let c = c.clone();
            model.thread(move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        let c2 = c.clone();
        model.after(move || {
            assert_eq!(c2.load(Ordering::Relaxed), 2);
        });
    });
    assert!(report.passed(), "{report}");
    eprintln!("[selftest::rmw_increment] {report}");
}

#[test]
fn mutex_protected_increment_passes() {
    let report = explore(exhaustive(), |model| {
        let c = Arc::new(Mutex::new(0u64));
        for _ in 0..3 {
            let c = c.clone();
            model.thread(move || {
                let mut g = c.lock().unwrap();
                *g += 1;
            });
        }
        let c2 = c.clone();
        model.after(move || {
            assert_eq!(*c2.lock().unwrap(), 3);
        });
    });
    assert!(report.passed(), "{report}");
    eprintln!("[selftest::mutex_increment] {report}");
}

#[test]
fn ab_ba_deadlock_is_caught() {
    let report = explore(opts(), |model| {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let (a1, b1) = (a.clone(), b.clone());
        model.thread(move || {
            let _ga = a1.lock().unwrap();
            let _gb = b1.lock().unwrap();
        });
        model.thread(move || {
            let _gb = b.lock().unwrap();
            let _ga = a.lock().unwrap();
        });
    });
    let f = report.failure().expect("AB-BA deadlock must be found");
    assert_eq!(f.kind, FailureKind::Deadlock);
    eprintln!("[selftest::ab_ba_deadlock] {report}");
}

#[test]
fn ordered_lock_acquisition_passes() {
    let report = explore(exhaustive(), |model| {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        for _ in 0..2 {
            let (a, b) = (a.clone(), b.clone());
            model.thread(move || {
                let _ga = a.lock().unwrap();
                let _gb = b.lock().unwrap();
            });
        }
    });
    assert!(report.passed(), "{report}");
    eprintln!("[selftest::ordered_locks] {report}");
}

/// Classic check-then-wait race: the waiter tests the flag *outside* the
/// mutex, so the notify can fire in the window before it blocks, and the
/// wait then sleeps forever.
#[test]
fn lost_wakeup_is_caught() {
    let report = explore(opts(), |model| {
        let flag = Arc::new(AtomicU64::new(0));
        let m = Arc::new(Mutex::new(()));
        let cv = Arc::new(Condvar::new());
        let (f1, m1, c1) = (flag.clone(), m.clone(), cv.clone());
        model.thread(move || {
            // Bug: flag checked before taking the mutex — the notifier can
            // run entirely inside this window.
            if f1.load(Ordering::Acquire) == 0 {
                let g = m1.lock().unwrap();
                let _g = c1.wait(g).unwrap();
            }
        });
        model.thread(move || {
            flag.store(1, Ordering::Release);
            let _g = m.lock().unwrap();
            cv.notify_one();
        });
    });
    let f = report.failure().expect("lost wakeup must be found");
    assert_eq!(f.kind, FailureKind::Deadlock);
    assert!(f.message.contains("blocked(cv"), "message: {}", f.message);
    eprintln!("[selftest::lost_wakeup] {report}");
}

#[test]
fn while_loop_wait_passes() {
    let report = explore(exhaustive(), |model| {
        let flag = Arc::new(Mutex::new(false));
        let cv = Arc::new(Condvar::new());
        let (f1, c1) = (flag.clone(), cv.clone());
        model.thread(move || {
            let mut g = f1.lock().unwrap();
            while !*g {
                g = c1.wait(g).unwrap();
            }
        });
        model.thread(move || {
            let mut g = flag.lock().unwrap();
            *g = true;
            drop(g);
            cv.notify_one();
        });
    });
    assert!(report.passed(), "{report}");
    eprintln!("[selftest::while_wait] {report}");
}

/// Release/Acquire message passing is correct; weakening the flag store to
/// Relaxed lets the reader observe the flag without the payload.
#[test]
fn release_acquire_publication_passes() {
    let report = explore(exhaustive(), |model| {
        let data = Arc::new(AtomicU64::new(0));
        let ready = Arc::new(AtomicU64::new(0));
        let (d1, r1) = (data.clone(), ready.clone());
        model.thread(move || {
            d1.store(42, Ordering::Relaxed);
            r1.store(1, Ordering::Release);
        });
        model.thread(move || {
            if ready.load(Ordering::Acquire) == 1 {
                assert_eq!(data.load(Ordering::Relaxed), 42, "torn publication");
            }
        });
    });
    assert!(report.passed(), "{report}");
    eprintln!("[selftest::release_acquire] {report}");
}

#[test]
fn relaxed_publication_is_caught() {
    let report = explore(exhaustive(), |model| {
        let data = Arc::new(AtomicU64::new(0));
        let ready = Arc::new(AtomicU64::new(0));
        let (d1, r1) = (data.clone(), ready.clone());
        model.thread(move || {
            d1.store(42, Ordering::Relaxed);
            // Bug: no release edge, so the flag can outrun the payload.
            r1.store(1, Ordering::Relaxed);
        });
        model.thread(move || {
            if ready.load(Ordering::Relaxed) == 1 {
                assert_eq!(data.load(Ordering::Relaxed), 42, "torn publication");
            }
        });
    });
    let f = report.failure().expect("relaxed publication must be caught");
    assert_eq!(f.kind, FailureKind::Panic);
    assert!(f.message.contains("torn publication"), "message: {}", f.message);
    eprintln!("[selftest::relaxed_publication] {report}");
}

/// A recorded failing schedule replays deterministically: same failure
/// kind, same message, same step labels — twice.
#[test]
fn replay_reproduces_failures() {
    let report = explore(exhaustive(), torn_increment);
    let f = report.failure().expect("lost update must be found");
    let r1 = checkers::replay(exhaustive(), torn_increment, &f.trace.picks);
    let r2 = checkers::replay(exhaustive(), torn_increment, &f.trace.picks);
    for r in [&r1, &r2] {
        let rf = r.failure().expect("replay must reproduce the failure");
        assert_eq!(rf.kind, f.kind);
        assert_eq!(rf.message, f.message);
        assert_eq!(rf.trace.steps, f.trace.steps, "replay trace diverged");
    }
}

/// A passing schedule replays as passing (empty prescription = first DFS
/// schedule).
#[test]
fn replay_of_passing_schedule_passes() {
    let r = checkers::replay(opts(), torn_increment, &[]);
    // First DFS schedule runs t0 to completion then t1: no lost update.
    assert!(matches!(r.outcome, Outcome::Pass), "{r}");
}

#[test]
fn schedule_cap_reports_capped() {
    let report = explore(
        Options { max_schedules: 3, preemption_bound: None, ..Options::default() },
        torn_increment,
    );
    // With only 3 schedules explored the space is neither exhausted nor
    // (necessarily) failed — but if a failure was found first, that's fine
    // too; assert it did not claim a full pass.
    assert!(!report.passed(), "3 schedules cannot exhaust this space: {report}");
}

// -- model mpsc ------------------------------------------------------------

mod mpsc_models {
    use super::*;
    use checkers::sync::mpsc::{channel, sync_channel, RecvTimeoutError};

    #[test]
    fn send_recv_delivers_in_order() {
        let report = explore(exhaustive(), |model| {
            let (tx, rx) = channel::<u32>();
            model.thread(move || {
                tx.send(1).unwrap();
                tx.send(2).unwrap();
            });
            model.thread(move || {
                assert_eq!(rx.recv(), Ok(1));
                assert_eq!(rx.recv(), Ok(2));
                // Blocks until the sender thread drops its handle, then the
                // disconnect must wake us — a hang here is a deadlock report.
                assert_eq!(rx.recv(), Err(std::sync::mpsc::RecvError));
            });
        });
        assert!(report.passed(), "{report}");
        eprintln!("[selftest::mpsc_order] {report}");
    }

    #[test]
    fn receiver_drop_fails_sends() {
        let report = explore(exhaustive(), |model| {
            let (tx, rx) = channel::<u32>();
            model.thread(move || {
                drop(rx);
            });
            model.thread(move || {
                // Either outcome is legal depending on schedule; what must
                // never happen is a panic or a hang.
                let _ = tx.send(7);
            });
        });
        assert!(report.passed(), "{report}");
    }

    #[test]
    fn sync_channel_blocks_at_bound_and_unblocks() {
        let report = explore(exhaustive(), |model| {
            let (tx, rx) = sync_channel::<u32>(1);
            model.thread(move || {
                tx.send(1).unwrap();
                tx.send(2).unwrap(); // must block until rx drains
            });
            model.thread(move || {
                assert_eq!(rx.recv(), Ok(1));
                assert_eq!(rx.recv(), Ok(2));
            });
        });
        assert!(report.passed(), "{report}");
        eprintln!("[selftest::mpsc_bounded] {report}");
    }

    #[test]
    fn recv_timeout_branches_both_ways() {
        // The timeout branch must be explored (the receiver may give up) and
        // must not lose the message for a later recv.
        let report = explore(exhaustive(), |model| {
            let (tx, rx) = channel::<u32>();
            model.thread(move || {
                tx.send(9).unwrap();
            });
            model.thread(move || match rx.recv_timeout(std::time::Duration::from_millis(1)) {
                Ok(v) => assert_eq!(v, 9),
                Err(RecvTimeoutError::Timeout) => {
                    assert_eq!(rx.recv(), Ok(9));
                }
                Err(e) => panic!("unexpected: {e:?}"),
            });
        });
        assert!(report.passed(), "{report}");
        eprintln!("[selftest::mpsc_timeout] {report}");
    }
}
