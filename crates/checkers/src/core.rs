//! The model-checking core: a cooperative scheduler over real OS threads
//! plus a DFS explorer that enumerates every scheduling decision.
//!
//! # How a check runs
//!
//! [`check`]/[`explore`] re-run the user's *scenario* closure once per
//! schedule. Each run spawns the model threads as real OS threads, but only
//! one of them executes at a time: every operation on a
//! [`crate::sync`] primitive parks the thread and hands control to the
//! controller, which asks the [`Explorer`] which thread runs next. The
//! explorer replays a prescribed prefix of decisions and takes the first
//! untried branch at the end, i.e. a depth-first search over the schedule
//! tree. A bounded-preemption cap (see [`Options::preemption_bound`]) keeps
//! the tree tractable: beyond the budget, the currently running thread keeps
//! running until it blocks.
//!
//! # Weak memory
//!
//! Atomics are modeled with vector clocks and a per-atomic store history: a
//! load may observe *any* store that is not superseded by a
//! happens-before-later store, and the choice of which store to observe is
//! itself a decision point. `Release` stores carry the writer's clock;
//! `Acquire` loads that observe them join it (synchronizes-with). `SeqCst`
//! is treated as `AcqRel` — the checker can therefore miss bugs that only a
//! total SC order would catch, but never reports a false positive for them.
//!
//! # Failure reporting
//!
//! A panic in a model thread, a deadlock (every live thread blocked), or a
//! stuck run surfaces as an [`Outcome::Failed`] carrying a [`Trace`]: the
//! exact decision vector plus human-readable step labels. Feeding the
//! decision vector back through [`replay`] deterministically reproduces the
//! failing schedule.

use std::cell::RefCell;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Hard cap on model threads per scenario (vector clocks are fixed-width).
pub const MAX_THREADS: usize = 8;

/// Sentinel tid for the controller (scenario setup + `Model::after`).
const CONTROLLER: usize = usize::MAX;

/// Wall-clock watchdog: if no model thread reaches a schedule point for this
/// long, the run is declared stuck (e.g. a model thread spinning in a loop
/// with no sync operations).
const STUCK_SECS: u64 = 30;

// ---------------------------------------------------------------------------
// Options / Report / Outcome
// ---------------------------------------------------------------------------

/// Exploration bounds.
#[derive(Clone, Debug)]
pub struct Options {
    /// Maximum number of *preemptions* (switching away from a thread that
    /// could have kept running) per schedule. `None` = unbounded, i.e. a
    /// fully exhaustive search. Most real concurrency bugs manifest within
    /// 2 preemptions (the CHESS observation), so the default is `Some(2)`.
    pub preemption_bound: Option<u32>,
    /// Abort the search after this many schedules. Hitting the cap is
    /// reported as [`Outcome::Capped`] — and is a *failure* for
    /// [`check`], because it means the stated bounds were not actually
    /// verified.
    pub max_schedules: u64,
    /// Abort a single schedule after this many scheduling decisions
    /// (guards against models that livelock under a legal schedule).
    pub max_steps: usize,
}

impl Default for Options {
    fn default() -> Self {
        Options { preemption_bound: Some(2), max_schedules: 1_000_000, max_steps: 10_000 }
    }
}

/// What a finished exploration found.
#[derive(Clone, Debug)]
pub enum Outcome {
    /// Every schedule within bounds ran to completion without failure.
    Pass,
    /// A schedule failed; the trace pins it for replay.
    Failed(Failure),
    /// `max_schedules` was reached before the space was exhausted.
    Capped,
}

/// Why a schedule failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureKind {
    /// A model thread panicked (assertion failure in the model).
    Panic,
    /// Every live thread was blocked: classic deadlock or a lost wakeup.
    Deadlock,
    /// The run exceeded `max_steps`, or a thread stopped reaching schedule
    /// points entirely (non-cooperative spin).
    Stuck,
}

/// A failing schedule: kind, message, and the replayable trace.
#[derive(Clone, Debug)]
pub struct Failure {
    pub kind: FailureKind,
    /// Panic payload, deadlock description, or stuck diagnosis.
    pub message: String,
    pub trace: Trace,
}

/// A replayable schedule: the raw decision vector plus one label per
/// decision describing what was picked.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// Index picked at each decision point; feed back into [`replay`].
    pub picks: Vec<usize>,
    /// Human-readable label per decision, e.g. `t1:lock(m0) [1/2]`.
    pub steps: Vec<String>,
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "schedule picks: {:?}", self.picks)?;
        for (i, s) in self.steps.iter().enumerate() {
            writeln!(f, "  #{i:<3} {s}")?;
        }
        Ok(())
    }
}

/// Exploration statistics and verdict.
#[derive(Clone, Debug)]
pub struct Report {
    /// Schedules fully executed (including the failing one, if any).
    pub schedules: u64,
    /// Deepest decision vector seen across all schedules.
    pub max_depth: usize,
    /// Total wall-clock time of the exploration.
    pub wall: Duration,
    pub outcome: Outcome,
}

impl Report {
    /// True iff the whole bounded space was explored without failure.
    pub fn passed(&self) -> bool {
        matches!(self.outcome, Outcome::Pass)
    }

    /// The failure, if the outcome is `Failed`.
    pub fn failure(&self) -> Option<&Failure> {
        match &self.outcome {
            Outcome::Failed(f) => Some(f),
            _ => None,
        }
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let verdict = match &self.outcome {
            Outcome::Pass => "pass".to_string(),
            Outcome::Capped => "CAPPED (bounds not verified)".to_string(),
            Outcome::Failed(fail) => format!("FAILED ({:?}): {}", fail.kind, fail.message),
        };
        write!(
            f,
            "{} schedules, max depth {}, {:.3}s: {}",
            self.schedules,
            self.max_depth,
            self.wall.as_secs_f64(),
            verdict
        )
    }
}

// ---------------------------------------------------------------------------
// Model (scenario builder)
// ---------------------------------------------------------------------------

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Handed to the scenario closure each schedule; collects the model threads
/// and an optional post-condition.
#[derive(Default)]
pub struct Model {
    threads: Vec<Job>,
    after: Option<Box<dyn FnOnce()>>,
}

impl Model {
    /// Register a model thread. Threads are numbered `t0, t1, …` in
    /// registration order (the numbers appear in traces).
    pub fn thread(&mut self, f: impl FnOnce() + Send + 'static) {
        assert!(self.threads.len() < MAX_THREADS, "at most {MAX_THREADS} model threads");
        self.threads.push(Box::new(f));
    }

    /// Register a post-condition run by the controller after every thread
    /// has finished. Sync operations inside it execute eagerly (the model
    /// is quiescent, so there is nothing left to interleave with); a panic
    /// here fails the schedule like any model-thread panic.
    pub fn after(&mut self, f: impl FnOnce() + 'static) {
        self.after = Some(Box::new(f));
    }
}

// ---------------------------------------------------------------------------
// Vector clocks & atomic store history
// ---------------------------------------------------------------------------

#[derive(Clone, Debug, Default, PartialEq, Eq)]
struct VClock([u32; MAX_THREADS]);

impl VClock {
    fn join(&mut self, other: &VClock) {
        for (a, b) in self.0.iter_mut().zip(other.0.iter()) {
            *a = (*a).max(*b);
        }
    }
}

/// One store in an atomic's modification order.
#[derive(Clone, Debug)]
struct StoreEv {
    val: u64,
    /// Writer thread and its clock component at the store — used for the
    /// happens-before visibility test (`reader.clock[tid] >= seq` means the
    /// store happens-before the reader, hiding all earlier stores).
    tid: usize,
    seq: u32,
    /// `Some(clock)` iff the store had release semantics: acquire loads
    /// that observe it join this clock (synchronizes-with).
    sync: Option<VClock>,
}

#[derive(Debug)]
struct AtomicState {
    stores: Vec<StoreEv>,
    /// Per-thread index of the newest store this thread has observed
    /// (coherence: a thread never reads older than what it has seen).
    last_seen: [usize; MAX_THREADS],
}

// ---------------------------------------------------------------------------
// Scheduler state
// ---------------------------------------------------------------------------

/// What a parked thread is waiting to do. Determines enabledness.
#[derive(Clone, Debug)]
enum OpKind {
    /// Initial park before the thread body runs.
    Start,
    Yield,
    Lock(usize),
    Unlock(usize),
    /// First phase of `Condvar::wait`: atomically release the mutex and
    /// become a waiter. Always enabled (the thread holds the mutex).
    CvWait {
        cv: usize,
        mutex: usize,
    },
    /// Second phase: waiting for a notify. Never enabled — only a notify
    /// moves the thread to `CvReacquire`. A run where every live thread
    /// sits here is a lost wakeup, reported as deadlock.
    CvBlocked {
        cv: usize,
        mutex: usize,
    },
    /// Notified; waiting to reacquire the mutex. Enabled iff mutex free.
    CvReacquire {
        mutex: usize,
    },
    Notify {
        cv: usize,
        all: bool,
    },
    /// Any atomic load/store/RMW (the concrete effect runs after grant).
    Atomic {
        desc: &'static str,
        obj: usize,
    },
    /// A pure nondeterministic branch (e.g. `recv_timeout` firing).
    Choice {
        desc: &'static str,
    },
    Finished,
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpKind::Start => write!(f, "start"),
            OpKind::Yield => write!(f, "yield"),
            OpKind::Lock(m) => write!(f, "lock(m{m})"),
            OpKind::Unlock(m) => write!(f, "unlock(m{m})"),
            OpKind::CvWait { cv, mutex } => write!(f, "cv{cv}.wait(m{mutex})"),
            OpKind::CvBlocked { cv, .. } => write!(f, "blocked(cv{cv})"),
            OpKind::CvReacquire { mutex } => write!(f, "relock(m{mutex})"),
            OpKind::Notify { cv, all } => {
                write!(f, "cv{cv}.notify_{}", if *all { "all" } else { "one" })
            }
            OpKind::Atomic { desc, obj } => write!(f, "{desc}(a{obj})"),
            OpKind::Choice { desc } => write!(f, "choice({desc})"),
            OpKind::Finished => write!(f, "finished"),
        }
    }
}

#[derive(Debug)]
struct ThreadState {
    pending: OpKind,
    /// Parked at a schedule point (or finished), i.e. not running user code.
    parked: bool,
    clock: VClock,
}

impl ThreadState {
    fn new(tid: usize) -> Self {
        let mut clock = VClock::default();
        // Distinguish "has executed nothing" from component 0 of others.
        clock.0[tid] = 1;
        ThreadState { pending: OpKind::Start, parked: false, clock }
    }
}

#[derive(Debug, Default)]
struct MutexState {
    held_by: Option<usize>,
    /// Release clock of the last unlocker; joined by the next locker.
    clock: VClock,
}

#[derive(Debug, Default)]
struct CvState {
    waiters: Vec<usize>,
}

pub(crate) struct CoreState {
    threads: Vec<ThreadState>,
    mutexes: Vec<MutexState>,
    condvars: Vec<CvState>,
    atomics: Vec<AtomicState>,
    /// Thread granted the CPU; consumed (reset to None) by that thread.
    granted: Option<usize>,
    /// Set when the run is over (failure or teardown): parked threads must
    /// unwind out instead of waiting for a grant that will never come.
    abandoned: bool,
    /// All model threads have finished; controller-side ops (from
    /// `Model::after`) execute eagerly.
    post_phase: bool,
    failure: Option<(FailureKind, String)>,
    last_running: Option<usize>,
    preemptions: u32,
    steps: usize,
    explorer: Explorer,
    opts: Options,
}

impl CoreState {
    fn enabled(&self, tid: usize) -> bool {
        match self.threads[tid].pending {
            OpKind::Start
            | OpKind::Yield
            | OpKind::Unlock(_)
            | OpKind::CvWait { .. }
            | OpKind::Notify { .. }
            | OpKind::Atomic { .. }
            | OpKind::Choice { .. } => true,
            OpKind::Lock(m) | OpKind::CvReacquire { mutex: m } => self.mutexes[m].held_by.is_none(),
            OpKind::CvBlocked { .. } | OpKind::Finished => false,
        }
    }

    fn lock_effect(&mut self, tid: usize, m: usize) {
        debug_assert!(self.mutexes[m].held_by.is_none(), "granted lock on held mutex");
        let mclock = self.mutexes[m].clock.clone();
        self.threads[tid].clock.join(&mclock);
        self.mutexes[m].held_by = Some(tid);
    }

    fn unlock_effect(&mut self, tid: usize, m: usize) {
        debug_assert_eq!(self.mutexes[m].held_by, Some(tid), "unlock by non-holder");
        self.threads[tid].clock.0[tid] += 1;
        let tclock = self.threads[tid].clock.clone();
        self.mutexes[m].clock.join(&tclock);
        self.mutexes[m].held_by = None;
    }

    /// Pick which store a load observes: any store not superseded by one
    /// that happens-before the reader. More than one candidate = decision.
    fn atomic_load(&mut self, tid: usize, obj: usize, acquire: bool) -> u64 {
        if self.post_phase || self.abandoned {
            // Eager mode (post-condition or teardown): read the final value
            // deterministically; no explorer decisions may be consumed here.
            let a = &mut self.atomics[obj];
            let idx = a.stores.len() - 1;
            a.last_seen[tid] = idx;
            return a.stores[idx].val;
        }
        let mut floor = self.atomics[obj].last_seen[tid];
        for i in (floor + 1)..self.atomics[obj].stores.len() {
            let ev = &self.atomics[obj].stores[i];
            if self.threads[tid].clock.0[ev.tid] >= ev.seq {
                floor = i;
            }
        }
        let n = self.atomics[obj].stores.len() - floor;
        let idx = if n > 1 {
            floor + self.choose(n, |k| format!("t{tid}:read(a{obj})<-store#{}", floor + k))
        } else {
            floor
        };
        self.atomics[obj].last_seen[tid] = idx;
        let ev = &self.atomics[obj].stores[idx];
        let val = ev.val;
        if acquire {
            if let Some(sync) = ev.sync.clone() {
                self.threads[tid].clock.join(&sync);
            }
        }
        val
    }

    fn atomic_store(&mut self, tid: usize, obj: usize, val: u64, release: bool) {
        self.threads[tid].clock.0[tid] += 1;
        let seq = self.threads[tid].clock.0[tid];
        let sync = release.then(|| self.threads[tid].clock.clone());
        let a = &mut self.atomics[obj];
        a.stores.push(StoreEv { val, tid, seq, sync });
        a.last_seen[tid] = a.stores.len() - 1;
    }

    /// Read-modify-write: always reads the newest store (atomic RMWs read
    /// the latest value in modification order), then appends.
    fn atomic_rmw(
        &mut self,
        tid: usize,
        obj: usize,
        acquire: bool,
        release: bool,
        f: impl FnOnce(u64) -> u64,
    ) -> u64 {
        let last = self.atomics[obj].stores.len() - 1;
        let old = self.atomics[obj].stores[last].val;
        let sync = self.atomics[obj].stores[last].sync.clone();
        if acquire {
            if let Some(s) = sync {
                self.threads[tid].clock.join(&s);
            }
        }
        self.atomic_store(tid, obj, f(old), release);
        old
    }

    fn choose(&mut self, n: usize, label: impl FnOnce(usize) -> String) -> usize {
        self.explorer.choose(n, label)
    }
}

// ---------------------------------------------------------------------------
// DFS explorer
// ---------------------------------------------------------------------------

/// Depth-first enumeration over the decision tree. A run replays the
/// prescribed `picks` prefix and answers 0 for decisions beyond it;
/// `next_schedule` then advances the deepest pick that still has an untried
/// branch (lexicographic DFS with implicit stack).
struct Explorer {
    picks: Vec<usize>,
    /// Options available at each decision of the *current* run.
    counts: Vec<usize>,
    labels: Vec<String>,
    depth: usize,
    max_depth: usize,
}

impl Explorer {
    fn new() -> Self {
        Explorer {
            picks: Vec::new(),
            counts: Vec::new(),
            labels: Vec::new(),
            depth: 0,
            max_depth: 0,
        }
    }

    fn begin_run(&mut self) {
        self.counts.clear();
        self.labels.clear();
        self.depth = 0;
    }

    fn choose(&mut self, n: usize, label: impl FnOnce(usize) -> String) -> usize {
        debug_assert!(n >= 1);
        let d = self.depth;
        let pick = if d < self.picks.len() {
            debug_assert!(
                self.picks[d] < n,
                "replay divergence at decision {d}: pick {} of {n}",
                self.picks[d]
            );
            self.picks[d].min(n - 1)
        } else {
            0
        };
        self.counts.push(n);
        self.labels.push(format!("{} [{}/{}]", label(pick), pick + 1, n));
        self.depth += 1;
        self.max_depth = self.max_depth.max(self.depth);
        pick
    }

    /// Advance to the next unexplored schedule; false when exhausted.
    fn next_schedule(&mut self) -> bool {
        // Current run's effective pick vector.
        let mut picks: Vec<usize> =
            (0..self.counts.len()).map(|d| self.picks.get(d).copied().unwrap_or(0)).collect();
        while let Some(last) = picks.pop() {
            let n = self.counts[picks.len()];
            if last + 1 < n {
                picks.push(last + 1);
                self.picks = picks;
                return true;
            }
        }
        false
    }

    fn trace(&self) -> Trace {
        let picks =
            (0..self.counts.len()).map(|d| self.picks.get(d).copied().unwrap_or(0)).collect();
        Trace { picks, steps: self.labels.clone() }
    }
}

// ---------------------------------------------------------------------------
// Core: the shared scheduler object
// ---------------------------------------------------------------------------

pub(crate) struct Core {
    state: Mutex<CoreState>,
    cv: Condvar,
}

/// Panic payload used to unwind model threads out of an abandoned run.
struct Abandon;

thread_local! {
    static CTX: RefCell<Option<(Arc<Core>, usize)>> = const { RefCell::new(None) };
}

fn ctx() -> (Arc<Core>, usize) {
    CTX.with(|c| c.borrow().clone().expect("checkers::sync primitive used outside a model run"))
}

fn set_ctx(core: Option<(Arc<Core>, usize)>) {
    CTX.with(|c| *c.borrow_mut() = core);
}

/// True while a `check`/`explore`/`replay` run is active on this thread
/// (controller or model thread).
pub(crate) fn in_model() -> bool {
    CTX.with(|c| c.borrow().is_some())
}

impl Core {
    fn lock(&self) -> MutexGuard<'_, CoreState> {
        self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Park at a schedule point and wait to be granted the CPU. Returns the
    /// state guard with the grant consumed; the caller applies the op's
    /// effect under it. Panics with `Abandon` if the run was abandoned.
    fn grant_wait<'a>(
        &'a self,
        mut st: MutexGuard<'a, CoreState>,
        tid: usize,
        op: OpKind,
    ) -> MutexGuard<'a, CoreState> {
        st.threads[tid].pending = op;
        st.threads[tid].parked = true;
        self.cv.notify_all();
        loop {
            if st.abandoned {
                drop(st);
                std::panic::panic_any(Abandon);
            }
            if st.granted == Some(tid) {
                st.granted = None;
                st.threads[tid].parked = false;
                st.last_running = Some(tid);
                return st;
            }
            st = self.cv.wait(st).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// True when ops must execute eagerly instead of parking: the thread is
    /// unwinding (drops during a panic must not double-panic), the run has
    /// been abandoned, or the controller is in the post phase.
    fn bypass(&self, tid: usize) -> bool {
        if std::thread::panicking() {
            return true;
        }
        let st = self.lock();
        st.abandoned || (tid == CONTROLLER && st.post_phase)
    }

    // -- operations called from crate::sync --------------------------------

    pub(crate) fn op_lock(self: &Arc<Self>, m: usize) {
        let (_, tid) = ctx();
        if self.bypass(tid) {
            let mut st = self.lock();
            st.mutexes[m].held_by = Some(tid);
            return;
        }
        assert!(tid != CONTROLLER, "sync op outside a model thread (use Model::after)");
        let st = self.lock();
        let mut st = self.grant_wait(st, tid, OpKind::Lock(m));
        st.lock_effect(tid, m);
    }

    pub(crate) fn op_unlock(self: &Arc<Self>, m: usize) {
        let (_, tid) = ctx();
        if self.bypass(tid) {
            let mut st = self.lock();
            st.mutexes[m].held_by = None;
            return;
        }
        assert!(tid != CONTROLLER, "sync op outside a model thread (use Model::after)");
        let st = self.lock();
        let mut st = self.grant_wait(st, tid, OpKind::Unlock(m));
        st.unlock_effect(tid, m);
    }

    pub(crate) fn op_cv_wait(self: &Arc<Self>, cv: usize, m: usize) {
        let (_, tid) = ctx();
        if self.bypass(tid) {
            return;
        }
        assert!(tid != CONTROLLER, "sync op outside a model thread (use Model::after)");
        let st = self.lock();
        // Phase 1: scheduled once to atomically release the mutex + block.
        let mut st = self.grant_wait(st, tid, OpKind::CvWait { cv, mutex: m });
        st.unlock_effect(tid, m);
        st.condvars[cv].waiters.push(tid);
        st.threads[tid].pending = OpKind::CvBlocked { cv, mutex: m };
        st.threads[tid].parked = true;
        self.cv.notify_all();
        // Phase 2: a notify moves us to CvReacquire; the next grant means
        // the mutex is free and ours again.
        loop {
            if st.abandoned {
                drop(st);
                std::panic::panic_any(Abandon);
            }
            if st.granted == Some(tid) {
                st.granted = None;
                st.threads[tid].parked = false;
                st.last_running = Some(tid);
                break;
            }
            st = self.cv.wait(st).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        st.lock_effect(tid, m);
    }

    pub(crate) fn op_notify(self: &Arc<Self>, cv: usize, all: bool) {
        let (_, tid) = ctx();
        if self.bypass(tid) {
            return;
        }
        assert!(tid != CONTROLLER, "sync op outside a model thread (use Model::after)");
        let st = self.lock();
        let mut st = self.grant_wait(st, tid, OpKind::Notify { cv, all });
        if all {
            let waiters = std::mem::take(&mut st.condvars[cv].waiters);
            for w in waiters {
                if let OpKind::CvBlocked { mutex, .. } = st.threads[w].pending {
                    st.threads[w].pending = OpKind::CvReacquire { mutex };
                }
            }
        } else if !st.condvars[cv].waiters.is_empty() {
            // Which waiter wakes is nondeterministic: a decision point.
            let n = st.condvars[cv].waiters.len();
            let k = if n > 1 {
                st.choose(n, |k| format!("t{tid}:cv{cv}.notify_one->t?#{k}"))
            } else {
                0
            };
            let w = st.condvars[cv].waiters.remove(k);
            if let OpKind::CvBlocked { mutex, .. } = st.threads[w].pending {
                st.threads[w].pending = OpKind::CvReacquire { mutex };
            }
        }
        self.cv.notify_all();
    }

    /// An atomic op: scheduled as one point; `f` runs the concrete effect
    /// (possibly consuming further decision points for load visibility).
    pub(crate) fn op_atomic<R>(
        self: &Arc<Self>,
        desc: &'static str,
        obj: usize,
        f: impl FnOnce(&mut CoreState, usize) -> R,
    ) -> R {
        let (_, tid) = ctx();
        if self.bypass(tid) {
            // Force eager semantics so the effect consumes no explorer
            // decisions even when the bypass is due to an unwinding thread.
            let mut st = self.lock();
            let saved = st.post_phase;
            st.post_phase = true;
            let r = f(&mut st, if tid == CONTROLLER { 0 } else { tid });
            st.post_phase = saved;
            return r;
        }
        assert!(tid != CONTROLLER, "sync op outside a model thread (use Model::after)");
        let st = self.lock();
        let mut st = self.grant_wait(st, tid, OpKind::Atomic { desc, obj });
        f(&mut st, tid)
    }

    /// A pure nondeterministic branch with `n` outcomes (e.g. whether a
    /// `recv_timeout` fires). Returns the branch index.
    pub(crate) fn op_choice(self: &Arc<Self>, desc: &'static str, n: usize) -> usize {
        let (_, tid) = ctx();
        if self.bypass(tid) || n <= 1 {
            return 0;
        }
        assert!(tid != CONTROLLER, "sync op outside a model thread (use Model::after)");
        let st = self.lock();
        let mut st = self.grant_wait(st, tid, OpKind::Choice { desc });
        st.choose(n, |k| format!("t{tid}:{desc}#{k}"))
    }

    pub(crate) fn op_yield(self: &Arc<Self>) {
        let (_, tid) = ctx();
        if self.bypass(tid) {
            return;
        }
        assert!(tid != CONTROLLER, "sync op outside a model thread");
        let st = self.lock();
        let _st = self.grant_wait(st, tid, OpKind::Yield);
    }

    // -- object registration (runs in scenario setup or model threads) -----

    pub(crate) fn add_mutex(&self) -> usize {
        let mut st = self.lock();
        st.mutexes.push(MutexState::default());
        st.mutexes.len() - 1
    }

    pub(crate) fn add_condvar(&self) -> usize {
        let mut st = self.lock();
        st.condvars.push(CvState::default());
        st.condvars.len() - 1
    }

    pub(crate) fn add_atomic(&self, init: u64) -> usize {
        let mut st = self.lock();
        st.atomics.push(AtomicState {
            // The initial value happens-before everything (the object is
            // created before it is shared), encoded as tid 0 / seq 0 which
            // every clock dominates.
            stores: vec![StoreEv { val: init, tid: 0, seq: 0, sync: Some(VClock::default()) }],
            last_seen: [0; MAX_THREADS],
        });
        st.atomics.len() - 1
    }
}

// Concrete atomic entry points used by crate::sync (kept here so all
// clock manipulation lives in one file).
impl Core {
    pub(crate) fn atomic_load(self: &Arc<Self>, obj: usize, acquire: bool) -> u64 {
        self.op_atomic("load", obj, |st, tid| st.atomic_load(tid, obj, acquire))
    }

    pub(crate) fn atomic_store(self: &Arc<Self>, obj: usize, val: u64, release: bool) {
        self.op_atomic("store", obj, |st, tid| st.atomic_store(tid, obj, val, release))
    }

    pub(crate) fn atomic_rmw(
        self: &Arc<Self>,
        obj: usize,
        acquire: bool,
        release: bool,
        f: impl FnOnce(u64) -> u64,
    ) -> u64 {
        self.op_atomic("rmw", obj, |st, tid| st.atomic_rmw(tid, obj, acquire, release, f))
    }
}

// ---------------------------------------------------------------------------
// Run driver
// ---------------------------------------------------------------------------

enum RunOutcome {
    Pass,
    Failed(Failure),
}

fn model_thread_main(core: Arc<Core>, tid: usize, job: Job) {
    set_ctx(Some((core.clone(), tid)));
    // Park at Start: the thread body begins only when first scheduled.
    let result = catch_unwind(AssertUnwindSafe(|| {
        let st = core.lock();
        let _st = core.grant_wait(st, tid, OpKind::Start);
        drop(_st);
        job();
    }));
    let mut st = core.lock();
    match result {
        Ok(()) => {}
        Err(payload) => {
            if payload.downcast_ref::<Abandon>().is_none() && st.failure.is_none() {
                let msg = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_else(|| "model thread panicked".to_string());
                st.failure = Some((FailureKind::Panic, format!("t{tid} panicked: {msg}")));
            }
        }
    }
    st.threads[tid].pending = OpKind::Finished;
    st.threads[tid].parked = true;
    drop(st);
    core.cv.notify_all();
    set_ctx(None);
}

/// Run one schedule; returns the explorer (with this run's decision record)
/// and the outcome.
/// Model-thread panics are reported through [`Failure`], so keep the
/// default hook from spraying stderr with expected panics (including the
/// `Abandon` unwinds used for teardown). Non-model threads are unaffected.
fn silence_model_panics() {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let in_model_thread =
                std::thread::current().name().is_some_and(|n| n.starts_with("model-t"));
            if !in_model_thread {
                prev(info);
            }
        }));
    });
}

fn run_schedule<F>(opts: &Options, scenario: &F, mut explorer: Explorer) -> (Explorer, RunOutcome)
where
    F: Fn(&mut Model),
{
    silence_model_panics();
    explorer.begin_run();
    let core = Arc::new(Core {
        state: Mutex::new(CoreState {
            threads: Vec::new(),
            mutexes: Vec::new(),
            condvars: Vec::new(),
            atomics: Vec::new(),
            granted: None,
            abandoned: false,
            // Scenario setup is single-threaded and runs on the controller:
            // sync ops execute eagerly exactly like the post phase.
            post_phase: true,
            failure: None,
            last_running: None,
            preemptions: 0,
            steps: 0,
            explorer,
            opts: opts.clone(),
        }),
        cv: Condvar::new(),
    });

    // Scenario setup runs with a controller context so model objects can be
    // constructed before any thread exists.
    set_ctx(Some((core.clone(), CONTROLLER)));
    let mut model = Model::default();
    let setup = catch_unwind(AssertUnwindSafe(|| scenario(&mut model)));
    if let Err(p) = setup {
        set_ctx(None);
        std::panic::resume_unwind(p);
    }
    let jobs = std::mem::take(&mut model.threads);
    let n = jobs.len();
    assert!(n >= 1, "scenario registered no model threads");
    {
        let mut st = core.lock();
        st.threads = (0..n).map(ThreadState::new).collect();
        st.post_phase = false;
    }

    let handles: Vec<_> = jobs
        .into_iter()
        .enumerate()
        .map(|(tid, job)| {
            let core = core.clone();
            std::thread::Builder::new()
                .name(format!("model-t{tid}"))
                .spawn(move || model_thread_main(core, tid, job))
                .expect("spawn model thread")
        })
        .collect();

    let outcome = controller_loop(&core, n);

    // Tear down: release any still-parked threads and join.
    let stuck = {
        let mut st = core.lock();
        st.abandoned = true;
        core.cv.notify_all();
        matches!(&outcome, RunOutcome::Failed(Failure { kind: FailureKind::Stuck, .. }))
    };
    for h in handles {
        if stuck {
            // A non-cooperative thread never reaches a schedule point; it
            // would block join forever. Leak it — the process is already
            // failing the test.
            drop(h);
        } else {
            let _ = h.join();
        }
    }

    // Run the post-condition with the model quiescent.
    let mut outcome = outcome;
    if let (RunOutcome::Pass, Some(after)) = (&outcome, model.after.take()) {
        core.lock().post_phase = true;
        if let Err(payload) = catch_unwind(AssertUnwindSafe(after)) {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "post-condition panicked".to_string());
            let trace = core.lock().explorer.trace();
            outcome = RunOutcome::Failed(Failure {
                kind: FailureKind::Panic,
                message: format!("after(): {msg}"),
                trace,
            });
        }
    }
    set_ctx(None);

    let explorer = {
        let mut st = core.lock();
        std::mem::replace(&mut st.explorer, Explorer::new())
    };
    (explorer, outcome)
}

fn controller_loop(core: &Arc<Core>, n: usize) -> RunOutcome {
    let mut st = core.lock();
    loop {
        // Wait until the previous grant is consumed and every model thread
        // is parked at a point (or finished).
        while st.granted.is_some() || !st.threads.iter().all(|t| t.parked) {
            let (g, timeout) = core
                .cv
                .wait_timeout(st, Duration::from_secs(STUCK_SECS))
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            st = g;
            if timeout.timed_out() && (st.granted.is_some() || !st.threads.iter().all(|t| t.parked))
            {
                let trace = st.explorer.trace();
                return RunOutcome::Failed(Failure {
                    kind: FailureKind::Stuck,
                    message: format!(
                        "no schedule point reached for {STUCK_SECS}s (non-cooperative spin?)"
                    ),
                    trace,
                });
            }
        }

        if let Some((kind, message)) = st.failure.take() {
            let trace = st.explorer.trace();
            return RunOutcome::Failed(Failure { kind, message, trace });
        }

        let alive: Vec<usize> =
            (0..n).filter(|&i| !matches!(st.threads[i].pending, OpKind::Finished)).collect();
        if alive.is_empty() {
            return RunOutcome::Pass;
        }
        let enabled: Vec<usize> = alive.iter().copied().filter(|&i| st.enabled(i)).collect();
        if enabled.is_empty() {
            let mut desc = String::from("deadlock:");
            for &i in &alive {
                desc.push_str(&format!(" t{i}@{}", st.threads[i].pending));
            }
            let trace = st.explorer.trace();
            return RunOutcome::Failed(Failure {
                kind: FailureKind::Deadlock,
                message: desc,
                trace,
            });
        }

        st.steps += 1;
        if st.steps > st.opts.max_steps {
            let trace = st.explorer.trace();
            return RunOutcome::Failed(Failure {
                kind: FailureKind::Stuck,
                message: format!("schedule exceeded max_steps={}", st.opts.max_steps),
                trace,
            });
        }

        // Bounded preemption: once the budget is spent, a still-enabled
        // current thread keeps running (switching away from it is what
        // costs budget; switching after it blocks is free).
        let cur = st.last_running.filter(|c| enabled.contains(c));
        let budget_left = st.opts.preemption_bound.is_none_or(|b| st.preemptions < b);
        let options: Vec<usize> = match cur {
            Some(c) if !budget_left => vec![c],
            Some(c) => {
                // Current thread first so pick 0 = "keep running".
                let mut v = vec![c];
                v.extend(enabled.iter().copied().filter(|&t| t != c));
                v
            }
            None => enabled.clone(),
        };
        let pick = if options.len() > 1 {
            let labels: Vec<String> =
                options.iter().map(|&t| format!("t{t}:{}", st.threads[t].pending)).collect();
            st.choose(options.len(), |k| labels[k].clone())
        } else {
            0
        };
        let t = options[pick];
        if let Some(c) = cur {
            if t != c {
                st.preemptions += 1;
            }
        }
        st.granted = Some(t);
        core.cv.notify_all();
    }
}

// ---------------------------------------------------------------------------
// Public entry points
// ---------------------------------------------------------------------------

/// Explore every schedule within bounds; return the report (never panics on
/// model failure — use this to assert that a seeded bug *is* caught).
pub fn explore<F>(opts: Options, scenario: F) -> Report
where
    F: Fn(&mut Model),
{
    let start = Instant::now();
    let mut explorer = Explorer::new();
    let mut schedules = 0u64;
    loop {
        let (ex, outcome) = run_schedule(&opts, &scenario, explorer);
        explorer = ex;
        schedules += 1;
        match outcome {
            RunOutcome::Failed(f) => {
                return Report {
                    schedules,
                    max_depth: explorer.max_depth,
                    wall: start.elapsed(),
                    outcome: Outcome::Failed(f),
                };
            }
            RunOutcome::Pass => {}
        }
        if schedules >= opts.max_schedules {
            return Report {
                schedules,
                max_depth: explorer.max_depth,
                wall: start.elapsed(),
                outcome: Outcome::Capped,
            };
        }
        if !explorer.next_schedule() {
            return Report {
                schedules,
                max_depth: explorer.max_depth,
                wall: start.elapsed(),
                outcome: Outcome::Pass,
            };
        }
    }
}

/// Explore every schedule within bounds; panic with a replayable trace if
/// any schedule fails (or if the search was capped before exhausting the
/// space — capped means the stated bounds were *not* verified).
pub fn check<F>(opts: Options, scenario: F) -> Report
where
    F: Fn(&mut Model),
{
    let report = explore(opts, scenario);
    match &report.outcome {
        Outcome::Pass => report,
        Outcome::Capped => panic!(
            "model checking capped after {} schedules without exhausting the space; \
             raise Options::max_schedules or tighten the model",
            report.schedules
        ),
        Outcome::Failed(f) => panic!(
            "model checking failed ({:?}) after {} schedules: {}\n{}",
            f.kind, report.schedules, f.message, f.trace
        ),
    }
}

/// Re-run exactly one schedule from a recorded decision vector. Decisions
/// beyond the vector take branch 0. Returns that single run's report.
pub fn replay<F>(opts: Options, scenario: F, picks: &[usize]) -> Report
where
    F: Fn(&mut Model),
{
    let start = Instant::now();
    let mut explorer = Explorer::new();
    explorer.picks = picks.to_vec();
    let (explorer, outcome) = run_schedule(&opts, &scenario, explorer);
    let outcome = match outcome {
        RunOutcome::Pass => Outcome::Pass,
        RunOutcome::Failed(f) => Outcome::Failed(f),
    };
    Report { schedules: 1, max_depth: explorer.max_depth, wall: start.elapsed(), outcome }
}

// Re-exported through sync for primitives to grab their core handle.
pub(crate) fn current_core() -> Arc<Core> {
    ctx().0
}

/// Cooperative yield: a pure schedule point with no effect. Lets models
/// mark places where the real code does non-sync work worth interleaving.
pub fn yield_now() {
    if !in_model() {
        return;
    }
    let core = current_core();
    core.op_yield();
}
