//! `checkers` — a loom-lite deterministic model checker for the runtime's
//! concurrency protocols, written from scratch (no crates.io access, like
//! `vendor/rand`).
//!
//! A *scenario* builds a handful of model threads over the primitives in
//! [`sync`]; [`check`] then re-executes the scenario once per schedule,
//! enumerating every interleaving (and every weakly-consistent atomic-load
//! result) within a bounded-preemption cap via depth-first search. Model
//! threads are real OS threads, but a cooperative scheduler runs exactly
//! one at a time, so each run is fully deterministic and any failing
//! schedule can be replayed from its recorded decision vector.
//!
//! What it detects:
//! - **assertion failures** — any panic in a model thread, under any
//!   explored interleaving;
//! - **deadlocks and lost wakeups** — every live thread blocked on a
//!   mutex or condvar with nobody left to wake it;
//! - **weak-memory bugs** — atomics use a vector-clock store-history
//!   model, so a `Relaxed` load really can observe stale values unless a
//!   `Release`/`Acquire` edge forbids it.
//!
//! ```
//! use checkers::sync::atomic::{AtomicU64, Ordering};
//! use checkers::sync::Arc;
//!
//! // Message passing via Release/Acquire verifies exhaustively.
//! let report = checkers::check(checkers::Options::default(), |model| {
//!     let data = Arc::new(AtomicU64::new(0));
//!     let ready = Arc::new(AtomicU64::new(0));
//!     let (d2, r2) = (data.clone(), ready.clone());
//!     model.thread(move || {
//!         data.store(42, Ordering::Relaxed);
//!         ready.store(1, Ordering::Release);
//!     });
//!     model.thread(move || {
//!         if r2.load(Ordering::Acquire) == 1 {
//!             assert_eq!(d2.load(Ordering::Relaxed), 42);
//!         }
//!     });
//! });
//! assert!(report.passed());
//! ```
//!
//! The engine consumes this through `common::sync`, a facade that
//! re-exports `std::sync` in production builds and these model types under
//! `--features check`; the protocol models themselves live in
//! `crates/common/tests/epoch_model.rs` and
//! `crates/engine/tests/concurrency_models.rs`.

mod core;
pub mod sync;

pub use crate::core::{
    check, explore, replay, yield_now, Failure, FailureKind, Model, Options, Outcome, Report,
    Trace, MAX_THREADS,
};
