//! Model replacements for `std::sync` primitives, signature-compatible with
//! the subset the engine uses so facade-ported modules compile unchanged.
//!
//! Construction and every operation must happen inside a model run (a
//! [`crate::check`]/[`crate::explore`]/[`crate::replay`] scenario); the
//! primitives interpose on the scheduler so each operation is a decision
//! point. `Arc`, `Ordering`, and the mpsc error types are re-exported from
//! std unchanged — `Arc`'s reference counting is assumed correct rather
//! than modeled.

use std::cell::UnsafeCell;
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::Arc as StdArc;

use crate::core::{current_core, Core};

pub use std::sync::{Arc, LockResult, PoisonError};

/// Atomic types: model `AtomicU64`/`AtomicUsize`, std `Ordering`.
pub mod atomic {
    use super::*;

    pub use std::sync::atomic::Ordering;

    // ordering: interpretation table for the model — Acquire/AcqRel/SeqCst
    // loads join the observed store's release clock; SeqCst is treated as
    // AcqRel (documented approximation: no total SC order is modeled).
    fn acq(o: Ordering) -> bool {
        matches!(o, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
    }

    // ordering: Release/AcqRel/SeqCst stores publish the writer's vector
    // clock so acquire loads that observe them synchronize-with the writer.
    fn rel(o: Ordering) -> bool {
        matches!(o, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
    }

    /// Model atomic u64: value lives in the checker's store history, so
    /// loads can observe any happens-before-consistent store.
    pub struct AtomicU64 {
        core: StdArc<Core>,
        obj: usize,
    }

    impl AtomicU64 {
        pub fn new(v: u64) -> Self {
            let core = current_core();
            let obj = core.add_atomic(v);
            AtomicU64 { core, obj }
        }

        pub fn load(&self, order: Ordering) -> u64 {
            self.core.atomic_load(self.obj, acq(order))
        }

        pub fn store(&self, val: u64, order: Ordering) {
            self.core.atomic_store(self.obj, val, rel(order));
        }

        pub fn fetch_add(&self, val: u64, order: Ordering) -> u64 {
            self.core.atomic_rmw(self.obj, acq(order), rel(order), |v| v.wrapping_add(val))
        }
    }

    impl fmt::Debug for AtomicU64 {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "AtomicU64(a{})", self.obj)
        }
    }

    /// Model atomic usize (backed by the same u64 store history).
    pub struct AtomicUsize(AtomicU64);

    impl AtomicUsize {
        pub fn new(v: usize) -> Self {
            AtomicUsize(AtomicU64::new(v as u64))
        }

        pub fn load(&self, order: Ordering) -> usize {
            self.0.load(order) as usize
        }

        pub fn store(&self, val: usize, order: Ordering) {
            self.0.store(val as u64, order);
        }

        pub fn fetch_add(&self, val: usize, order: Ordering) -> usize {
            self.0.fetch_add(val as u64, order) as usize
        }
    }

    impl fmt::Debug for AtomicUsize {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "AtomicUsize(a{})", self.0.obj)
        }
    }
}

// ---------------------------------------------------------------------------
// Mutex / Condvar
// ---------------------------------------------------------------------------

/// Model mutex. `lock()` is a schedule point; never poisons (a model-thread
/// panic fails the whole schedule instead).
pub struct Mutex<T: ?Sized> {
    core: StdArc<Core>,
    id: usize,
    data: UnsafeCell<T>,
}

// Safety: the scheduler serializes access — a guard only exists while its
// thread holds the model lock, and only one thread runs at a time anyway.
unsafe impl<T: ?Sized + Send> Send for Mutex<T> {}
unsafe impl<T: ?Sized + Send> Sync for Mutex<T> {}

impl<T> Mutex<T> {
    pub fn new(data: T) -> Self {
        let core = current_core();
        let id = core.add_mutex();
        Mutex { core, id, data: UnsafeCell::new(data) }
    }

    pub fn into_inner(self) -> LockResult<T> {
        Ok(self.data.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        self.core.op_lock(self.id);
        Ok(MutexGuard { mutex: self })
    }

    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        Ok(self.data.get_mut())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Mutex(m{})", self.id)
    }
}

/// Guard for a model mutex; drop is the unlock schedule point.
pub struct MutexGuard<'a, T: ?Sized> {
    mutex: &'a Mutex<T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        unsafe { &*self.mutex.data.get() }
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        unsafe { &mut *self.mutex.data.get() }
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        self.mutex.core.op_unlock(self.mutex.id);
    }
}

/// Result of a model [`Condvar::wait_timeout`]: whether the wait ended by
/// timing out. Std's `WaitTimeoutResult` has no public constructor, so the
/// model defines its own; the `common::sync` facade re-exports whichever
/// arm is active and the two are method-compatible (`timed_out`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(pub(crate) bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Model condvar. `notify_one` with several waiters is a decision point
/// (which waiter wakes); a notify with no waiters is lost, which is exactly
/// how lost-wakeup bugs surface (as a deadlock of the would-be waiter).
pub struct Condvar {
    core: StdArc<Core>,
    id: usize,
}

impl Condvar {
    #[allow(clippy::new_without_default)] // mirrors std::sync::Condvar::new
    pub fn new() -> Self {
        let core = current_core();
        let id = core.add_condvar();
        Condvar { core, id }
    }

    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        let mutex = guard.mutex;
        // The model releases + reacquires inside op_cv_wait; the real
        // guard must not run its unlock on drop.
        std::mem::forget(guard);
        self.core.op_cv_wait(self.id, mutex.id);
        Ok(MutexGuard { mutex })
    }

    /// Whether the timeout fires is a nondeterministic branch the explorer
    /// enumerates. The timeout arm returns immediately with the guard still
    /// held — equivalent to a schedule where the deadline expires before
    /// anyone else touches the mutex; schedules where other threads
    /// intervene are covered by the non-timeout arm plus preemptions.
    /// Callers must therefore tolerate `timed_out()` with the predicate
    /// already true, exactly as with std's spurious wakeups.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        _dur: std::time::Duration,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        if self.core.op_choice("cv_wait_timeout", 2) == 1 {
            return Ok((guard, WaitTimeoutResult(true)));
        }
        // Model waits never poison (a model-thread panic fails the whole
        // schedule instead), so the inner LockResult is always Ok.
        let g = self.wait(guard).unwrap_or_else(std::sync::PoisonError::into_inner);
        Ok((g, WaitTimeoutResult(false)))
    }

    pub fn notify_one(&self) {
        self.core.op_notify(self.id, false);
    }

    pub fn notify_all(&self) {
        self.core.op_notify(self.id, true);
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Condvar(cv{})", self.id)
    }
}

// ---------------------------------------------------------------------------
// mpsc
// ---------------------------------------------------------------------------

/// Model mpsc channels, built on the model mutex/condvar so every send and
/// receive is automatically a scheduler decision point. Error types are
/// std's (they are plain data), so `match` arms in ported code compile
/// unchanged. `recv_timeout` never sleeps: whether the timeout fires is a
/// nondeterministic branch the explorer enumerates.
pub mod mpsc {
    use super::{Condvar, Mutex};
    use crate::core::current_core;
    use std::collections::VecDeque;
    use std::sync::Arc as StdArc;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError, TrySendError};

    struct Inner<T> {
        q: VecDeque<T>,
        senders: usize,
        recv_alive: bool,
    }

    struct Chan<T> {
        m: Mutex<Inner<T>>,
        recv_cv: Condvar,
        send_cv: Condvar,
        bound: Option<usize>,
    }

    impl<T> Chan<T> {
        fn lock(&self) -> super::MutexGuard<'_, Inner<T>> {
            self.m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
        }
    }

    /// Asynchronous (unbounded) sender half.
    pub struct Sender<T>(StdArc<Chan<T>>);

    /// Synchronous (bounded) sender half.
    pub struct SyncSender<T>(StdArc<Chan<T>>);

    /// Receiver half (either flavor).
    pub struct Receiver<T>(StdArc<Chan<T>>);

    fn new_chan<T>(bound: Option<usize>) -> StdArc<Chan<T>> {
        StdArc::new(Chan {
            m: Mutex::new(Inner { q: VecDeque::new(), senders: 1, recv_alive: true }),
            recv_cv: Condvar::new(),
            send_cv: Condvar::new(),
            bound,
        })
    }

    /// Model `std::sync::mpsc::channel`.
    pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
        let c = new_chan(None);
        (Sender(c.clone()), Receiver(c))
    }

    /// Model `std::sync::mpsc::sync_channel`. A zero bound is modeled as a
    /// capacity of one (rendezvous handoff is not reproduced exactly; no
    /// engine channel uses bound 0).
    pub fn sync_channel<T>(bound: usize) -> (SyncSender<T>, Receiver<T>) {
        let c = new_chan(Some(bound.max(1)));
        (SyncSender(c.clone()), Receiver(c))
    }

    impl<T> Sender<T> {
        pub fn send(&self, t: T) -> Result<(), SendError<T>> {
            let mut g = self.0.lock();
            if !g.recv_alive {
                return Err(SendError(t));
            }
            g.q.push_back(t);
            self.0.recv_cv.notify_all();
            Ok(())
        }
    }

    impl<T> SyncSender<T> {
        pub fn send(&self, t: T) -> Result<(), SendError<T>> {
            let bound = self.0.bound.expect("sync sender has a bound");
            let mut g = self.0.lock();
            loop {
                if !g.recv_alive {
                    return Err(SendError(t));
                }
                if g.q.len() < bound {
                    g.q.push_back(t);
                    self.0.recv_cv.notify_all();
                    return Ok(());
                }
                g = self.0.send_cv.wait(g).unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        }

        pub fn try_send(&self, t: T) -> Result<(), TrySendError<T>> {
            let bound = self.0.bound.expect("sync sender has a bound");
            let mut g = self.0.lock();
            if !g.recv_alive {
                return Err(TrySendError::Disconnected(t));
            }
            if g.q.len() < bound {
                g.q.push_back(t);
                self.0.recv_cv.notify_all();
                Ok(())
            } else {
                Err(TrySendError::Full(t))
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.lock().senders += 1;
            Sender(self.0.clone())
        }
    }

    impl<T> Clone for SyncSender<T> {
        fn clone(&self) -> Self {
            self.0.lock().senders += 1;
            SyncSender(self.0.clone())
        }
    }

    fn drop_sender<T>(chan: &Chan<T>) {
        let mut g = chan.lock();
        g.senders -= 1;
        if g.senders == 0 {
            chan.recv_cv.notify_all();
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            drop_sender(&self.0);
        }
    }

    impl<T> Drop for SyncSender<T> {
        fn drop(&mut self) {
            drop_sender(&self.0);
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut g = self.0.lock();
            loop {
                if let Some(v) = g.q.pop_front() {
                    self.0.send_cv.notify_all();
                    return Ok(v);
                }
                if g.senders == 0 {
                    return Err(RecvError);
                }
                g = self.0.recv_cv.wait(g).unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut g = self.0.lock();
            if let Some(v) = g.q.pop_front() {
                self.0.send_cv.notify_all();
                Ok(v)
            } else if g.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Whether the timeout fires is a branch the explorer enumerates,
        /// so both the message-arrives and timeout paths get checked.
        pub fn recv_timeout(&self, _timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            let core = current_core();
            loop {
                {
                    let mut g = self.0.lock();
                    if let Some(v) = g.q.pop_front() {
                        self.0.send_cv.notify_all();
                        return Ok(v);
                    }
                    if g.senders == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                }
                // Not holding the model lock across the branch keeps the
                // timeout path from blocking senders.
                if core.op_choice("recv_timeout", 2) == 1 {
                    return Err(RecvTimeoutError::Timeout);
                }
                let mut g = self.0.lock();
                if g.q.is_empty() && g.senders > 0 {
                    g = self.0.recv_cv.wait(g).unwrap_or_else(std::sync::PoisonError::into_inner);
                }
                drop(g);
            }
        }

        /// Drain-without-blocking iterator, mirroring std's `try_iter`.
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter { rx: self }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut g = self.0.lock();
            g.recv_alive = false;
            g.q.clear();
            self.0.send_cv.notify_all();
        }
    }

    /// Iterator returned by [`Receiver::try_iter`].
    pub struct TryIter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.try_recv().ok()
        }
    }
}
