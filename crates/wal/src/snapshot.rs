//! Transaction-consistent snapshot files and their completion markers.
//!
//! One snapshot generation `g` consists of `snap-p{p}-g{g}.snap` for every
//! partition — each written and fsynced by the worker that owns the shard,
//! at the same fenced service point that rotates its log to segment `g` —
//! plus a `snap-g{g}.ok` marker the snapshotter writes only after every
//! partition file is durable. Recovery trusts marked generations only, so
//! a crash mid-snapshot simply leaves stray files the next truncation
//! sweeps away.
//!
//! File format: `[magic u64][payload_len u64][fnv1a(payload) u64][payload]`
//! where the payload is `table_count` then, per table, `row_count` rows
//! each encoded as a value sequence. Rows are written in sorted order so
//! snapshot bytes are deterministic for a given shard state.

use crate::codec::{fnv1a, CodecError, Reader, Writer};
use common::Value;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// A row as the storage layer stores it: one `Value` per column.
pub type SnapRow = Vec<Value>;

const MAGIC: u64 = 0x50_4f_4c_54_53_4e_41_50; // "POLTSNAP"

/// Path of partition `p`'s snapshot file for generation `gen`.
pub fn snapshot_path(dir: &Path, p: u32, gen: u64) -> PathBuf {
    dir.join(format!("snap-p{p}-g{gen}.snap"))
}

/// Path of the completion marker for generation `gen`.
pub fn marker_path(dir: &Path, gen: u64) -> PathBuf {
    dir.join(format!("snap-g{gen}.ok"))
}

/// Serializes `tables` (every table slice of one shard, rows in any
/// order — they are sorted here for deterministic bytes) to partition
/// `p`'s snapshot file for `gen`, fsyncing before returning.
pub fn write_snapshot(
    dir: &Path,
    p: u32,
    gen: u64,
    tables: &[Vec<SnapRow>],
) -> std::io::Result<()> {
    let mut w = Writer::new();
    w.put_u32(tables.len() as u32);
    for rows in tables {
        let mut sorted: Vec<&SnapRow> = rows.iter().collect();
        sorted.sort();
        w.put_u64(sorted.len() as u64);
        for row in sorted {
            w.put_values(row);
        }
    }
    let payload = w.into_bytes();
    let mut file = std::fs::File::create(snapshot_path(dir, p, gen))?;
    file.write_all(&MAGIC.to_le_bytes())?;
    file.write_all(&(payload.len() as u64).to_le_bytes())?;
    file.write_all(&fnv1a(&payload).to_le_bytes())?;
    file.write_all(&payload)?;
    file.sync_data()
}

/// Reads and validates one partition snapshot file; `Err` on any
/// truncation, checksum mismatch, or malformed payload (recovery treats
/// that as "this generation is unusable", falling back if possible).
pub fn read_snapshot(dir: &Path, p: u32, gen: u64) -> Result<Vec<Vec<SnapRow>>, CodecError> {
    let bytes = std::fs::read(snapshot_path(dir, p, gen))
        .map_err(|e| CodecError(format!("read snapshot p{p} g{gen}: {e}")))?;
    let mut r = Reader::new(&bytes);
    if r.get_u64()? != MAGIC {
        return Err(CodecError("bad snapshot magic".into()));
    }
    let len = r.get_u64()? as usize;
    if r.remaining() < 8 + len {
        return Err(CodecError("snapshot truncated".into()));
    }
    let want = r.get_u64()?;
    let payload = &bytes[r.pos()..r.pos() + len];
    if fnv1a(payload) != want {
        return Err(CodecError("snapshot checksum mismatch".into()));
    }
    let mut pr = Reader::new(payload);
    let table_count = pr.get_u32()? as usize;
    let mut tables = Vec::with_capacity(table_count.min(1024));
    for _ in 0..table_count {
        let rows = pr.get_u64()? as usize;
        if rows > (1 << 32) {
            return Err(CodecError("implausible row count".into()));
        }
        let mut t = Vec::with_capacity(rows.min(1 << 20));
        for _ in 0..rows {
            t.push(pr.get_values()?);
        }
        tables.push(t);
    }
    if pr.remaining() != 0 {
        return Err(CodecError("trailing bytes in snapshot payload".into()));
    }
    Ok(tables)
}

/// Writes and fsyncs the completion marker for `gen`. Only called after
/// every partition's snapshot file is durable.
pub fn write_marker(dir: &Path, gen: u64) -> std::io::Result<()> {
    let mut file = std::fs::File::create(marker_path(dir, gen))?;
    file.write_all(format!("snapshot generation {gen} complete\n").as_bytes())?;
    file.sync_all()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_roundtrip_and_corruption_detection() {
        let dir = std::env::temp_dir().join(format!("wal-snap-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let tables = vec![
            vec![
                vec![Value::Int(2), Value::Str("b".into())],
                vec![Value::Int(1), Value::Str("a".into())],
            ],
            vec![],
            vec![vec![Value::Null, Value::Array(vec![Value::Int(9)])]],
        ];
        write_snapshot(&dir, 0, 3, &tables).unwrap();
        let back = read_snapshot(&dir, 0, 3).unwrap();
        // Rows come back sorted; everything else is structural identity.
        assert_eq!(back[0][0][0], Value::Int(1));
        assert_eq!(back[0].len(), 2);
        assert_eq!(back[1].len(), 0);
        assert_eq!(back[2], tables[2]);
        // Flip one payload byte: the checksum must catch it.
        let path = snapshot_path(&dir, 0, 3);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, bytes).unwrap();
        assert!(read_snapshot(&dir, 0, 3).is_err());
        assert!(read_snapshot(&dir, 1, 3).is_err(), "missing file is an error, not a panic");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
