//! The recovery scan: what survives in a durability directory, decoded.
//!
//! [`scan`] finds the newest *complete* snapshot generation (marker
//! present and every partition's snapshot file validates), loads its rows,
//! and decodes every log segment at or above that generation into
//! per-partition record streams — concatenated in ascending generation
//! order, torn tails dropped per segment. The engine replays those streams
//! on top of the snapshot (or the freshly loaded base population when no
//! snapshot exists).
//!
//! A marker whose snapshot files fail to validate is skipped in favor of
//! an older one; in practice that cannot happen from a crash alone (the
//! marker is written only after every snapshot file is fsynced), so it
//! covers disk-level corruption. Stray files from a snapshot that never
//! reached its marker are simply replayed around: the segments they
//! rotated still concatenate into the same per-partition record order.

use crate::record::LogRecord;
use crate::snapshot::{marker_path, read_snapshot, SnapRow};
use crate::{parse_part_gen, segment_path};
use std::path::Path;

/// Everything [`scan`] recovered from a durability directory.
#[derive(Debug)]
pub struct RecoveredState {
    /// The newest complete snapshot generation, if any.
    pub snapshot_gen: Option<u64>,
    /// Per-partition snapshot rows (`[partition][table][row]`), present
    /// iff `snapshot_gen` is.
    pub snapshot: Option<Vec<Vec<Vec<SnapRow>>>>,
    /// Per-partition command-log streams to replay, in file order.
    pub streams: Vec<Vec<LogRecord>>,
    /// Highest generation seen on any surviving file (0 when none): the
    /// recovered runtime opens fresh segments *above* this.
    pub max_gen: u64,
    /// Total log records decoded across all streams.
    pub log_records_scanned: u64,
}

/// Scans `dir` for the newest usable snapshot plus the log segments to
/// replay on top of it. A missing or empty directory is a valid fresh
/// state, not an error.
pub fn scan(dir: &Path, num_partitions: u32) -> std::io::Result<RecoveredState> {
    let parts = num_partitions as usize;
    let mut markers: Vec<u64> = Vec::new();
    let mut segments: Vec<Vec<u64>> = vec![Vec::new(); parts];
    let mut max_gen = 0u64;
    match std::fs::read_dir(dir) {
        Ok(entries) => {
            for entry in entries {
                let entry = entry?;
                let name = entry.file_name();
                let Some(name) = name.to_str() else { continue };
                if let Some((p, g)) = parse_part_gen(name, "log-", ".wal") {
                    if (p as usize) < parts {
                        segments[p as usize].push(g);
                    }
                    max_gen = max_gen.max(g);
                } else if let Some((_, g)) = parse_part_gen(name, "snap-", ".snap") {
                    max_gen = max_gen.max(g);
                } else if let Some(g) =
                    name.strip_prefix("snap-g").and_then(|s| s.strip_suffix(".ok"))
                {
                    if let Ok(g) = g.parse::<u64>() {
                        markers.push(g);
                        max_gen = max_gen.max(g);
                    }
                }
            }
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => return Err(e),
    }
    // Newest marked generation whose snapshot files all validate wins.
    markers.sort_unstable();
    let mut snapshot_gen = None;
    let mut snapshot = None;
    for &g in markers.iter().rev() {
        let tables: Result<Vec<_>, _> =
            (0..num_partitions).map(|p| read_snapshot(dir, p, g)).collect();
        if let Ok(tables) = tables {
            snapshot_gen = Some(g);
            snapshot = Some(tables);
            break;
        }
        // Marker without valid snapshot files: disk corruption; fall back.
        let _ = marker_path(dir, g); // (path kept for diagnostics)
    }
    let floor = snapshot_gen.unwrap_or(0);
    let mut streams = Vec::with_capacity(parts);
    let mut scanned = 0u64;
    for (p, gens) in segments.iter_mut().enumerate() {
        gens.sort_unstable();
        let mut stream = Vec::new();
        for &g in gens.iter().filter(|&&g| g >= floor) {
            let bytes = std::fs::read(segment_path(dir, p as u32, g))?;
            let (records, _valid) = LogRecord::decode_stream(&bytes);
            scanned += records.len() as u64;
            stream.extend(records);
        }
        streams.push(stream);
    }
    Ok(RecoveredState { snapshot_gen, snapshot, streams, max_gen, log_records_scanned: scanned })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::LogSet;
    use crate::snapshot::{write_marker, write_snapshot};
    use common::Value;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("wal-recover-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn fresh_directory_is_empty_state() {
        let s = scan(&tmpdir("fresh"), 3).unwrap();
        assert_eq!(s.snapshot_gen, None);
        assert_eq!(s.streams.len(), 3);
        assert!(s.streams.iter().all(Vec::is_empty));
        assert_eq!(s.max_gen, 0);
    }

    #[test]
    fn snapshot_plus_segments_replay_from_the_marker() {
        let dir = tmpdir("marked");
        let logs = LogSet::open(&dir, 2, 0).unwrap();
        let old = LogRecord::Local { txn_id: 1, proc: 0, args: vec![Value::Int(1)] };
        let new = LogRecord::Local { txn_id: 2, proc: 0, args: vec![Value::Int(2)] };
        logs.append(0, &old);
        // Snapshot generation 1: rotate both partitions, write snaps + marker.
        logs.rotate(0, 1).unwrap();
        logs.rotate(1, 1).unwrap();
        for p in 0..2 {
            write_snapshot(&dir, p, 1, &[vec![vec![Value::Int(i64::from(p))]]]).unwrap();
        }
        write_marker(&dir, 1).unwrap();
        logs.append(0, &new);
        logs.flush_all();
        let s = scan(&dir, 2).unwrap();
        assert_eq!(s.snapshot_gen, Some(1));
        let snap = s.snapshot.unwrap();
        assert_eq!(snap[1][0][0][0], Value::Int(1));
        // Only the post-snapshot record replays; the pre-snapshot one is
        // below the marker's floor.
        assert_eq!(s.streams[0], vec![new]);
        assert!(s.streams[1].is_empty());
        assert_eq!(s.max_gen, 1);
        assert_eq!(s.log_records_scanned, 1);
        // Truncation removes the dead generation-0 segments.
        let removed = crate::truncate_below(&dir, 1).unwrap();
        assert_eq!(removed, 2);
        let again = scan(&dir, 2).unwrap();
        assert_eq!(again.streams[0], s.streams[0]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unmarked_snapshot_is_ignored_but_its_rotation_still_replays() {
        let dir = tmpdir("unmarked");
        let logs = LogSet::open(&dir, 1, 0).unwrap();
        let a = LogRecord::Local { txn_id: 1, proc: 0, args: vec![] };
        let b = LogRecord::Local { txn_id: 2, proc: 0, args: vec![] };
        logs.append(0, &a);
        // Crash mid-snapshot: rotated and wrote the snap file, no marker.
        logs.rotate(0, 1).unwrap();
        write_snapshot(&dir, 0, 1, &[vec![]]).unwrap();
        logs.append(0, &b);
        logs.flush_all();
        let s = scan(&dir, 1).unwrap();
        assert_eq!(s.snapshot_gen, None, "no marker, no snapshot");
        // Both records survive, in order, across the rotation boundary.
        assert_eq!(s.streams[0], vec![a, b]);
        assert_eq!(s.max_gen, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
