//! Per-partition command-log segments and the group-commit flush device.
//!
//! Workers append encoded records to an in-memory buffer under their
//! partition's mutex — a memcpy, never an I/O — and one *device flush*
//! ([`LogSet::flush_all`]) writes and fsyncs every partition's buffered
//! bytes in one pass. The engine drives that flush through the
//! `FlushSequencer` (via [`FileDevice`]), so one real `write+fsync` covers
//! a whole coalesced group of commits across all workers: the group-commit
//! design the sequencer has always modeled, now against a real device.
//!
//! Segment rotation ([`LogSet::rotate`]) closes a partition's current
//! segment (flushing and fsyncing its remaining bytes so the pre-rotation
//! prefix is complete on disk) and opens `log-p{p}-g{gen}.wal`. The
//! snapshot fence rotates every partition at its consistent cut, tying
//! segment generations to snapshot generations.

use crate::record::LogRecord;
use crate::segment_path;
use common::flush::FlushDevice;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// One partition's open segment: the append buffer plus the file handle.
#[derive(Debug)]
struct PartitionLog {
    file: File,
    buf: Vec<u8>,
    gen: u64,
}

/// The set of per-partition command logs for one durability directory.
/// Appends are cheap and per-partition; [`LogSet::flush_all`] is the one
/// real I/O point (plus [`LogSet::rotate`] at snapshot fences).
#[derive(Debug)]
pub struct LogSet {
    dir: PathBuf,
    parts: Vec<Mutex<PartitionLog>>,
    /// Total records appended (all partitions).
    records: AtomicU64,
    /// Total encoded bytes appended (all partitions).
    bytes: AtomicU64,
}

impl LogSet {
    /// Opens (creating or appending) one segment per partition at
    /// generation `gen` under `dir`, creating the directory if needed.
    pub fn open(dir: &Path, num_partitions: u32, gen: u64) -> std::io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let mut parts = Vec::with_capacity(num_partitions as usize);
        for p in 0..num_partitions {
            let file =
                OpenOptions::new().create(true).append(true).open(segment_path(dir, p, gen))?;
            parts.push(Mutex::new(PartitionLog { file, buf: Vec::with_capacity(4096), gen }));
        }
        Ok(LogSet {
            dir: dir.to_path_buf(),
            parts,
            records: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        })
    }

    /// The durability directory this set writes under.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> u32 {
        self.parts.len() as u32
    }

    /// Appends `record` to partition `p`'s buffer (no I/O). The record
    /// becomes durable at the next device flush or rotation covering it.
    pub fn append(&self, p: u32, record: &LogRecord) {
        let mut log = self.parts[p as usize].lock().unwrap_or_else(PoisonError::into_inner);
        let before = log.buf.len();
        record.encode_into(&mut log.buf);
        let grew = (log.buf.len() - before) as u64;
        // ordering: Relaxed — monotonic metrics counters, read only by
        // metrics snapshots; no other state is published through them.
        self.records.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(grew, Ordering::Relaxed);
    }

    /// Writes and fsyncs every partition's buffered bytes: the real device
    /// flush behind one group-commit epoch. On return, every record
    /// appended before this call is durable.
    pub fn flush_all(&self) {
        for part in &self.parts {
            let mut log = part.lock().unwrap_or_else(PoisonError::into_inner);
            Self::flush_one(&mut log);
        }
    }

    fn flush_one(log: &mut PartitionLog) {
        if !log.buf.is_empty() {
            log.file.write_all(&log.buf).expect("command-log write");
            log.buf.clear();
            log.file.sync_data().expect("command-log fsync");
        }
    }

    /// Closes partition `p`'s current segment (flushing and fsyncing its
    /// remaining buffered bytes so the old segment is complete on disk)
    /// and opens the segment for generation `gen`. Called by the worker
    /// that owns `p`, at its snapshot service point.
    pub fn rotate(&self, p: u32, gen: u64) -> std::io::Result<()> {
        let mut log = self.parts[p as usize].lock().unwrap_or_else(PoisonError::into_inner);
        Self::flush_one(&mut log);
        log.file.sync_data()?;
        let file =
            OpenOptions::new().create(true).append(true).open(segment_path(&self.dir, p, gen))?;
        log.file = file;
        log.gen = gen;
        Ok(())
    }

    /// `(records_appended, bytes_appended)` so far, all partitions.
    pub fn counters(&self) -> (u64, u64) {
        // ordering: Relaxed — see `append`; these are advisory metrics.
        (self.records.load(Ordering::Relaxed), self.bytes.load(Ordering::Relaxed))
    }
}

/// [`FlushDevice`] over a [`LogSet`]: one device flush = write+fsync of
/// every partition's buffered log bytes. This is what replaces the seed's
/// simulated sleep when real durability is on.
#[derive(Debug, Clone)]
pub struct FileDevice(pub Arc<LogSet>);

impl FlushDevice for FileDevice {
    fn flush(&self, _epoch: u64) {
        self.0.flush_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use common::Value;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("wal-log-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn append_flush_and_reload() {
        let dir = tmpdir("basic");
        let logs = LogSet::open(&dir, 2, 0).unwrap();
        let r0 = LogRecord::Local { txn_id: 1, proc: 0, args: vec![Value::Int(1)] };
        let r1 = LogRecord::Decision { txn_id: 2, commit: true };
        logs.append(0, &r0);
        logs.append(1, &r1);
        logs.flush_all();
        let (n, b) = logs.counters();
        assert_eq!(n, 2);
        assert!(b > 0);
        let bytes = std::fs::read(segment_path(&dir, 0, 0)).unwrap();
        let (recs, used) = LogRecord::decode_stream(&bytes);
        assert_eq!(recs, vec![r0]);
        assert_eq!(used, bytes.len());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_completes_the_old_segment_and_opens_the_new() {
        let dir = tmpdir("rotate");
        let logs = LogSet::open(&dir, 1, 0).unwrap();
        let pre = LogRecord::Local { txn_id: 1, proc: 0, args: vec![] };
        let post = LogRecord::Local { txn_id: 2, proc: 0, args: vec![] };
        logs.append(0, &pre);
        // Buffered but never explicitly flushed: rotation must land it in
        // the *old* segment (it predates the cut).
        logs.rotate(0, 1).unwrap();
        logs.append(0, &post);
        logs.flush_all();
        let (old, _) = LogRecord::decode_stream(&std::fs::read(segment_path(&dir, 0, 0)).unwrap());
        let (new, _) = LogRecord::decode_stream(&std::fs::read(segment_path(&dir, 0, 1)).unwrap());
        assert_eq!(old, vec![pre]);
        assert_eq!(new, vec![post]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
