//! The compact binary codec for log records and snapshots.
//!
//! Everything durable goes through two tiny primitives: a [`Writer`] that
//! appends fixed-width little-endian scalars and tagged [`Value`]s to a
//! byte buffer, and a [`Reader`] that decodes them back, failing softly
//! (never panicking) on any malformed input — the property recovery leans
//! on to treat a torn tail as "end of log" rather than a crash.
//!
//! Integrity is a 64-bit FNV-1a checksum over each framed payload (see
//! [`crate::record`] and [`crate::snapshot`] for the framings). FNV is not
//! cryptographic, but torn writes and bit rot are the threat model here,
//! and it needs no external dependency.

use common::Value;

/// Decode failure: the input is truncated or structurally invalid. Carries
/// a human-readable reason for diagnostics; recovery treats any decode
/// error as the end of the valid prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError(pub String);

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "codec: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

/// 64-bit FNV-1a over `bytes`.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Appends little-endian scalars and tagged values to a growable buffer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub fn new() -> Self {
        Writer::default()
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// One tagged [`Value`]: tag byte, then the payload.
    pub fn put_value(&mut self, v: &Value) {
        match v {
            Value::Null => self.put_u8(0),
            Value::Int(i) => {
                self.put_u8(1);
                self.put_i64(*i);
            }
            Value::Str(s) => {
                self.put_u8(2);
                self.put_bytes(s.as_bytes());
            }
            Value::Array(items) => {
                self.put_u8(3);
                self.put_u32(items.len() as u32);
                for item in items {
                    self.put_value(item);
                }
            }
        }
    }

    /// A length-prefixed sequence of values (procedure args, a row).
    pub fn put_values(&mut self, vs: &[Value]) {
        self.put_u32(vs.len() as u32);
        for v in vs {
            self.put_value(v);
        }
    }
}

/// Sanity ceiling on any decoded length prefix: no legitimate record or
/// row in this engine holds a billion elements, so a larger prefix is
/// corruption — rejecting it early keeps a flipped length byte from
/// turning into a gigabyte allocation.
const MAX_LEN: u32 = 1 << 24;

/// Decodes what [`Writer`] wrote; every method fails softly on truncation
/// or malformed tags.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes consumed so far.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes left to decode.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError(format!("need {n} bytes, have {}", self.remaining())));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    pub fn get_i64(&mut self) -> Result<i64, CodecError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn get_len(&mut self) -> Result<usize, CodecError> {
        let n = self.get_u32()?;
        if n > MAX_LEN {
            return Err(CodecError(format!("length {n} exceeds sanity cap")));
        }
        Ok(n as usize)
    }

    pub fn get_bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let n = self.get_len()?;
        self.take(n)
    }

    pub fn get_value(&mut self) -> Result<Value, CodecError> {
        match self.get_u8()? {
            0 => Ok(Value::Null),
            1 => Ok(Value::Int(self.get_i64()?)),
            2 => {
                let bytes = self.get_bytes()?;
                let s = std::str::from_utf8(bytes)
                    .map_err(|e| CodecError(format!("invalid utf-8 in Str: {e}")))?;
                Ok(Value::Str(s.to_string()))
            }
            3 => {
                let n = self.get_len()?;
                let mut items = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    items.push(self.get_value()?);
                }
                Ok(Value::Array(items))
            }
            t => Err(CodecError(format!("unknown Value tag {t}"))),
        }
    }

    pub fn get_values(&mut self) -> Result<Vec<Value>, CodecError> {
        let n = self.get_len()?;
        let mut vs = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            vs.push(self.get_value()?);
        }
        Ok(vs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_and_value_roundtrip() {
        let mut w = Writer::new();
        w.put_u64(42);
        w.put_value(&Value::Null);
        w.put_value(&Value::Int(-7));
        w.put_value(&Value::Str("héllo".into()));
        w.put_value(&Value::Array(vec![Value::Int(1), Value::Str(String::new())]));
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_u64().unwrap(), 42);
        assert_eq!(r.get_value().unwrap(), Value::Null);
        assert_eq!(r.get_value().unwrap(), Value::Int(-7));
        assert_eq!(r.get_value().unwrap(), Value::Str("héllo".into()));
        assert_eq!(
            r.get_value().unwrap(),
            Value::Array(vec![Value::Int(1), Value::Str(String::new())])
        );
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn truncation_and_bad_tags_fail_softly() {
        let mut w = Writer::new();
        w.put_value(&Value::Str("payload".into()));
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            assert!(Reader::new(&bytes[..cut]).get_value().is_err(), "cut at {cut}");
        }
        assert!(Reader::new(&[9]).get_value().is_err(), "unknown tag");
        // A length prefix past the sanity cap is corruption, not an alloc.
        let mut w = Writer::new();
        w.put_u8(3);
        w.put_u32(u32::MAX);
        assert!(Reader::new(w.bytes()).get_value().is_err());
    }

    #[test]
    fn fnv_is_stable() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }
}
