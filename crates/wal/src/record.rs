//! Command-log records and their on-disk framing.
//!
//! Each record is framed as:
//!
//! ```text
//! [payload_len: u32][fnv1a(payload): u64][payload]
//! ```
//!
//! and the payload is a tag byte plus the variant's fields. Decoding a
//! stream stops — cleanly, never panicking — at the first frame whose
//! length runs past the buffer, whose checksum mismatches, or whose
//! payload fails to parse: exactly the torn/corrupt-tail cases a crash
//! mid-write can leave behind. Everything before that prefix is valid
//! (appends are strictly sequential per partition).

use crate::codec::{fnv1a, CodecError, Reader, Writer};
use common::{ProcId, Value};

/// One durable command. `Local` is a committed single-partition writer;
/// distributed transactions appear as a [`LogRecord::DistBegin`] on every
/// participant that executed fragments (positioned at the instant the
/// worker began serving that transaction) plus a [`LogRecord::Decision`]
/// at its 2PC resolution point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogRecord {
    /// A committed single-partition writer, replayed in file order.
    Local { txn_id: u64, proc: ProcId, args: Vec<Value> },
    /// A distributed transaction began service on this partition; its
    /// effects belong at exactly this position in the partition's order.
    DistBegin { txn_id: u64, proc: ProcId, args: Vec<Value> },
    /// This partition's record of the distributed transaction's outcome.
    Decision { txn_id: u64, commit: bool },
}

const TAG_LOCAL: u8 = 1;
const TAG_DIST_BEGIN: u8 = 2;
const TAG_DECISION: u8 = 3;

impl LogRecord {
    /// The transaction this record belongs to.
    pub fn txn_id(&self) -> u64 {
        match self {
            LogRecord::Local { txn_id, .. }
            | LogRecord::DistBegin { txn_id, .. }
            | LogRecord::Decision { txn_id, .. } => *txn_id,
        }
    }

    fn encode_payload(&self, w: &mut Writer) {
        match self {
            LogRecord::Local { txn_id, proc, args } => {
                w.put_u8(TAG_LOCAL);
                w.put_u64(*txn_id);
                w.put_u32(*proc);
                w.put_values(args);
            }
            LogRecord::DistBegin { txn_id, proc, args } => {
                w.put_u8(TAG_DIST_BEGIN);
                w.put_u64(*txn_id);
                w.put_u32(*proc);
                w.put_values(args);
            }
            LogRecord::Decision { txn_id, commit } => {
                w.put_u8(TAG_DECISION);
                w.put_u64(*txn_id);
                w.put_u8(u8::from(*commit));
            }
        }
    }

    fn decode_payload(r: &mut Reader<'_>) -> Result<LogRecord, CodecError> {
        match r.get_u8()? {
            TAG_LOCAL => Ok(LogRecord::Local {
                txn_id: r.get_u64()?,
                proc: r.get_u32()?,
                args: r.get_values()?,
            }),
            TAG_DIST_BEGIN => Ok(LogRecord::DistBegin {
                txn_id: r.get_u64()?,
                proc: r.get_u32()?,
                args: r.get_values()?,
            }),
            TAG_DECISION => {
                let txn_id = r.get_u64()?;
                let commit = match r.get_u8()? {
                    0 => false,
                    1 => true,
                    b => return Err(CodecError(format!("bad decision byte {b}"))),
                };
                Ok(LogRecord::Decision { txn_id, commit })
            }
            t => Err(CodecError(format!("unknown record tag {t}"))),
        }
    }

    /// Appends this record's frame (length, checksum, payload) to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let mut payload = Writer::new();
        self.encode_payload(&mut payload);
        let payload = payload.into_bytes();
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
    }

    /// Decodes the longest valid record prefix of `bytes`. Returns the
    /// records plus the number of bytes consumed by valid frames; anything
    /// after that — a torn length, a checksum mismatch, an unparsable
    /// payload — is a tail the caller discards. Never panics.
    pub fn decode_stream(bytes: &[u8]) -> (Vec<LogRecord>, usize) {
        let mut records = Vec::new();
        let mut pos = 0usize;
        while bytes.len() - pos >= 12 {
            let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
            // Frame sanity: a record payload is a command, not a heap.
            if len > (1 << 24) || bytes.len() - pos - 12 < len {
                break;
            }
            let want = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().expect("8 bytes"));
            let payload = &bytes[pos + 12..pos + 12 + len];
            if fnv1a(payload) != want {
                break;
            }
            let mut pr = Reader::new(payload);
            let Ok(rec) = LogRecord::decode_payload(&mut pr) else { break };
            // Trailing garbage inside a checksummed frame would mean the
            // writer and reader disagree on the format; treat as corrupt.
            if pr.remaining() != 0 {
                break;
            }
            records.push(rec);
            pos += 12 + len;
        }
        (records, pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<LogRecord> {
        vec![
            LogRecord::Local { txn_id: 1, proc: 0, args: vec![Value::Int(5)] },
            LogRecord::DistBegin {
                txn_id: 2,
                proc: 3,
                args: vec![Value::Str("s".into()), Value::Array(vec![Value::Null])],
            },
            LogRecord::Decision { txn_id: 2, commit: true },
            LogRecord::Decision { txn_id: 9, commit: false },
        ]
    }

    #[test]
    fn stream_roundtrip() {
        let mut buf = Vec::new();
        for r in sample() {
            r.encode_into(&mut buf);
        }
        let (back, consumed) = LogRecord::decode_stream(&buf);
        assert_eq!(back, sample());
        assert_eq!(consumed, buf.len());
    }

    #[test]
    fn torn_tail_keeps_the_valid_prefix() {
        let mut buf = Vec::new();
        for r in sample() {
            r.encode_into(&mut buf);
        }
        let full = buf.len();
        for cut in 0..full {
            let (back, consumed) = LogRecord::decode_stream(&buf[..cut]);
            assert!(back.len() <= sample().len());
            assert!(consumed <= cut);
            // The decoded prefix must agree with the uncut stream.
            assert_eq!(back.as_slice(), &sample()[..back.len()], "cut at {cut}");
        }
    }

    #[test]
    fn corrupt_byte_stops_cleanly() {
        let mut buf = Vec::new();
        for r in sample() {
            r.encode_into(&mut buf);
        }
        for i in 0..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0xA5;
            let (back, _) = LogRecord::decode_stream(&bad); // must not panic
            assert!(back.len() <= sample().len());
        }
    }
}
