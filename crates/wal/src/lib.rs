//! Durability for the live partition runtime: per-partition **command
//! logs**, transaction-consistent **snapshots**, and the **recovery scan**
//! that turns the surviving files back into replayable state.
//!
//! The design is the H-Store/VoltDB answer the paper assumes around its
//! prediction framework: the engine's execution is deterministic given the
//! per-partition command order (the sim↔live exact-agreement suites pin
//! exactly that property), so it is sufficient to log *commands* — txn id,
//! procedure, args, commit decision — rather than ARIES-style value images.
//!
//! Layout on disk, inside one durability directory:
//!
//! ```text
//! log-p{p}-g{gen}.wal    partition p's command-log segment for generation g
//! snap-p{p}-g{gen}.snap  partition p's serialized table rows at snapshot g
//! snap-g{gen}.ok         marker: snapshot generation g is complete
//! ```
//!
//! Generations tie the two together: a snapshot of generation `g` rotates
//! every partition's log to segment `g` *at the same fenced instant* it
//! serializes the shard, so recovery is "load the newest marked snapshot
//! `g*`, then replay every segment with generation `>= g*` in ascending
//! order per partition". Segments and snapshots below the newest marker
//! are dead weight and are truncated after the marker lands.
//!
//! Records within one partition's (concatenated) segments are a faithful
//! serialization of that partition's committed writers — the worker
//! appends them at its own service points — and distributed transactions
//! appear as a `DistBegin`/`Decision` pair whose begin positions are
//! consistent across partitions (see `engine::durability` for the replay
//! argument). Torn or corrupt tails are detected by per-record checksums
//! and cleanly ignored: a record that never became durable belongs to a
//! transaction that was never acknowledged.

pub mod codec;
pub mod log;
pub mod record;
pub mod recover;
pub mod snapshot;

pub use codec::{CodecError, Reader, Writer};
pub use log::{FileDevice, LogSet};
pub use record::LogRecord;
pub use recover::{scan, RecoveredState};
pub use snapshot::{marker_path, read_snapshot, snapshot_path, write_marker, write_snapshot};

use std::path::{Path, PathBuf};

/// Path of partition `p`'s log segment for generation `gen`.
pub fn segment_path(dir: &Path, p: u32, gen: u64) -> PathBuf {
    dir.join(format!("log-p{p}-g{gen}.wal"))
}

/// Deletes every segment, snapshot, and marker with generation strictly
/// below `gen` — the truncation pass after a snapshot marker lands. Errors
/// on I/O failure other than concurrent disappearance.
pub fn truncate_below(dir: &Path, gen: u64) -> std::io::Result<u64> {
    let mut removed = 0;
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(g) = parse_gen(name) {
            if g < gen {
                match std::fs::remove_file(entry.path()) {
                    Ok(()) => removed += 1,
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                    Err(e) => return Err(e),
                }
            }
        }
    }
    Ok(removed)
}

/// Parses the generation out of any durability-directory file name;
/// `None` for foreign files (which truncation and the scan both ignore).
pub(crate) fn parse_gen(name: &str) -> Option<u64> {
    let stem = name
        .strip_suffix(".wal")
        .or_else(|| name.strip_suffix(".snap").or_else(|| name.strip_suffix(".ok")))?;
    let g = stem.rsplit_once("-g")?.1;
    g.parse().ok()
}

/// Parses `(partition, generation)` from a per-partition file name like
/// `log-p3-g7.wal` / `snap-p3-g7.snap`.
pub(crate) fn parse_part_gen(name: &str, prefix: &str, suffix: &str) -> Option<(u32, u64)> {
    let rest = name.strip_prefix(prefix)?.strip_suffix(suffix)?;
    let (p, g) = rest.split_once("-g")?;
    Some((p.strip_prefix('p')?.parse().ok()?, g.parse().ok()?))
}
