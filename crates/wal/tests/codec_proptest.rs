//! Property tests for the command-log codec (satellite: "proptest the log
//! record codec"): arbitrary records roundtrip exactly, and any torn,
//! truncated, or corrupted tail is detected and cleanly ignored — the
//! decoder never panics and never invents records.

use common::Value;
use proptest::prelude::*;
use wal::LogRecord;

/// Arbitrary `Value`s across all four variants, nested one level deep
/// (the engine's procedures use exactly these shapes: scalars plus flat
/// arrays of scalars).
fn arb_scalar() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        "[a-zA-Z0-9 _-]{0,24}".prop_map(Value::Str),
    ]
}

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![arb_scalar(), proptest::collection::vec(arb_scalar(), 0..6).prop_map(Value::Array),]
}

fn arb_args() -> impl Strategy<Value = Vec<Value>> {
    proptest::collection::vec(arb_value(), 0..5)
}

fn arb_record() -> impl Strategy<Value = LogRecord> {
    prop_oneof![
        (any::<u64>(), any::<u32>(), arb_args())
            .prop_map(|(txn_id, proc, args)| LogRecord::Local { txn_id, proc, args }),
        (any::<u64>(), any::<u32>(), arb_args())
            .prop_map(|(txn_id, proc, args)| LogRecord::DistBegin { txn_id, proc, args }),
        (any::<u64>(), any::<bool>())
            .prop_map(|(txn_id, commit)| LogRecord::Decision { txn_id, commit }),
    ]
}

fn encode_all(records: &[LogRecord]) -> Vec<u8> {
    let mut buf = Vec::new();
    for r in records {
        r.encode_into(&mut buf);
    }
    buf
}

proptest! {
    /// Every record sequence roundtrips exactly, consuming every byte.
    #[test]
    fn stream_roundtrip(records in proptest::collection::vec(arb_record(), 0..12)) {
        let buf = encode_all(&records);
        let (back, consumed) = LogRecord::decode_stream(&buf);
        prop_assert_eq!(back, records);
        prop_assert_eq!(consumed, buf.len());
    }

    /// Truncating the stream anywhere yields exactly the records whose
    /// frames fit — a valid prefix, never a panic, never a phantom record.
    #[test]
    fn truncated_tail_is_cleanly_ignored(
        records in proptest::collection::vec(arb_record(), 1..8),
        // any::<f64>() draws finite floats in [0, 1).
        cut_frac in any::<f64>(),
    ) {
        let buf = encode_all(&records);
        let cut = ((buf.len() as f64) * cut_frac) as usize;
        let (back, consumed) = LogRecord::decode_stream(&buf[..cut]);
        prop_assert!(consumed <= cut);
        prop_assert!(back.len() <= records.len());
        prop_assert_eq!(back.as_slice(), &records[..back.len()]);
        // The surviving prefix must be byte-aligned with whole frames.
        let (again, c2) = LogRecord::decode_stream(&buf[..consumed]);
        prop_assert_eq!(again.len(), back.len());
        prop_assert_eq!(c2, consumed);
    }

    /// Flipping any byte never panics, and every record decoded *before*
    /// the corruption point is still correct (the checksum localizes
    /// damage to its own frame and the tail behind it).
    #[test]
    fn corrupt_byte_never_panics_and_keeps_the_prefix(
        records in proptest::collection::vec(arb_record(), 1..8),
        idx_frac in any::<f64>(),
        flip in 1u8..=255,
    ) {
        let buf = encode_all(&records);
        let idx = (((buf.len() - 1) as f64) * idx_frac) as usize;
        let mut bad = buf.clone();
        bad[idx] ^= flip;
        let (back, consumed) = LogRecord::decode_stream(&bad);
        prop_assert!(consumed <= bad.len());
        // Records decoded from frames that end before the flipped byte
        // are untouched and must match the originals.
        let mut clean_prefix = 0usize;
        let mut pos = 0usize;
        for r in &records {
            let mut one = Vec::new();
            r.encode_into(&mut one);
            pos += one.len();
            if pos <= idx { clean_prefix += 1; } else { break; }
        }
        prop_assert!(back.len() >= clean_prefix);
        prop_assert_eq!(&back[..clean_prefix], &records[..clean_prefix]);
    }
}
