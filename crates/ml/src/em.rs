//! Expectation-maximization clustering (paper §5.1).
//!
//! Diagonal Gaussian mixtures fitted by EM, with the number of clusters
//! chosen by BIC over `1..=max_k` — standing in for WEKA's EM, which the
//! paper chose because it "does not require one to specify the number of
//! clusters beforehand".

use common::seeded_rng;
use rand::Rng;

/// EM knobs.
#[derive(Debug, Clone)]
pub struct EmConfig {
    /// Largest cluster count considered.
    pub max_k: usize,
    /// EM iterations per candidate k.
    pub iters: u32,
    /// RNG seed for initialization.
    pub seed: u64,
}

impl Default for EmConfig {
    fn default() -> Self {
        EmConfig { max_k: 6, iters: 25, seed: 1 }
    }
}

/// A fitted mixture model.
#[derive(Debug, Clone)]
pub struct EmModel {
    /// Number of clusters.
    pub k: usize,
    /// Mixture weights.
    pub weights: Vec<f64>,
    /// Per-cluster means (one entry per feature dimension).
    pub means: Vec<Vec<f64>>,
    /// Per-cluster diagonal variances.
    pub vars: Vec<Vec<f64>>,
    /// BIC of the fit (lower is better).
    pub bic: f64,
}

const VAR_FLOOR: f64 = 1e-3;

impl EmModel {
    /// Log-density of `x` under cluster `c` (up to the shared constant).
    fn log_density(&self, c: usize, x: &[f64]) -> f64 {
        let mut ll = self.weights[c].max(1e-12).ln();
        for (d, &xv) in x.iter().enumerate() {
            let var = self.vars[c][d];
            let diff = xv - self.means[c][d];
            ll += -0.5 * (var.ln() + diff * diff / var);
        }
        ll
    }

    /// Hard assignment: the most likely cluster for `x`.
    pub fn assign(&self, x: &[f64]) -> usize {
        (0..self.k)
            .max_by(|&a, &b| {
                self.log_density(a, x)
                    .partial_cmp(&self.log_density(b, x))
                    .expect("finite log densities")
            })
            .unwrap_or(0)
    }
}

/// Fits a mixture for each k in `1..=max_k` and returns the BIC-best model.
/// Empty data yields a trivial single-cluster model.
pub fn fit_em(data: &[Vec<f64>], cfg: &EmConfig) -> EmModel {
    let dims = data.first().map(Vec::len).unwrap_or(0);
    if data.is_empty() || dims == 0 {
        return EmModel {
            k: 1,
            weights: vec![1.0],
            means: vec![vec![0.0; dims]],
            vars: vec![vec![1.0; dims]],
            bic: 0.0,
        };
    }
    let mut best: Option<EmModel> = None;
    for k in 1..=cfg.max_k.max(1) {
        let model = fit_k(data, k, cfg);
        if best.as_ref().map(|b| model.bic < b.bic).unwrap_or(true) {
            best = Some(model);
        }
    }
    best.expect("at least one fit")
}

fn fit_k(data: &[Vec<f64>], k: usize, cfg: &EmConfig) -> EmModel {
    let n = data.len();
    let dims = data[0].len();
    let mut rng = seeded_rng(cfg.seed ^ (k as u64).wrapping_mul(0x9e37));
    // Init means from random distinct-ish points; variances from the data.
    let mut global_var = vec![0.0f64; dims];
    let mut global_mean = vec![0.0f64; dims];
    for x in data {
        for d in 0..dims {
            global_mean[d] += x[d];
        }
    }
    for g in &mut global_mean {
        *g /= n as f64;
    }
    for x in data {
        for d in 0..dims {
            let diff = x[d] - global_mean[d];
            global_var[d] += diff * diff;
        }
    }
    for g in &mut global_var {
        *g = (*g / n as f64).max(VAR_FLOOR);
    }
    let mut model = EmModel {
        k,
        weights: vec![1.0 / k as f64; k],
        means: (0..k).map(|_| data[rng.gen_range(0..n)].clone()).collect(),
        vars: vec![global_var.clone(); k],
        bic: f64::INFINITY,
    };

    let mut resp = vec![vec![0.0f64; k]; n];
    let mut log_likelihood = 0.0f64;
    for _ in 0..cfg.iters {
        // E step.
        log_likelihood = 0.0;
        for (i, x) in data.iter().enumerate() {
            let lls: Vec<f64> = (0..k).map(|c| model.log_density(c, x)).collect();
            let max = lls.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let mut denom = 0.0;
            for (c, ll) in lls.iter().enumerate() {
                resp[i][c] = (ll - max).exp();
                denom += resp[i][c];
            }
            for r in &mut resp[i] {
                *r /= denom;
            }
            log_likelihood += max + denom.ln();
        }
        // M step.
        for c in 0..k {
            let nc: f64 = resp.iter().map(|r| r[c]).sum();
            if nc < 1e-9 {
                continue; // dead cluster: leave as-is
            }
            model.weights[c] = nc / n as f64;
            for d in 0..dims {
                let mean: f64 = data.iter().zip(&resp).map(|(x, r)| r[c] * x[d]).sum::<f64>() / nc;
                model.means[c][d] = mean;
                let var: f64 = data
                    .iter()
                    .zip(&resp)
                    .map(|(x, r)| r[c] * (x[d] - mean) * (x[d] - mean))
                    .sum::<f64>()
                    / nc;
                model.vars[c][d] = var.max(VAR_FLOOR);
            }
        }
    }
    // BIC = -2 ln L + params ln n.
    let params = (k * (1 + 2 * dims)) as f64;
    model.bic = -2.0 * log_likelihood + params * (n as f64).ln();
    model
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Gaussian-ish noise (Irwin–Hall: sum of four uniforms). Uniform noise
    /// would make `single_blob_prefers_one_cluster` an init-lottery: a
    /// two-component mixture models a flat density genuinely better than
    /// one Gaussian (~0.18 nats/point), which can clear the BIC penalty
    /// whenever EM's random init converges well.
    fn blobs(centers: &[f64], per: usize) -> Vec<Vec<f64>> {
        let mut rng = seeded_rng(99);
        let mut data = Vec::new();
        for &c in centers {
            for _ in 0..per {
                let noise: f64 = (0..4).map(|_| rng.gen_range(-0.1..0.1)).sum();
                data.push(vec![c + noise]);
            }
        }
        data
    }

    #[test]
    fn finds_two_well_separated_clusters() {
        let data = blobs(&[0.0, 10.0], 60);
        let m = fit_em(&data, &EmConfig::default());
        assert!(m.k >= 2, "k = {}", m.k);
        let a = m.assign(&[0.1]);
        let b = m.assign(&[9.9]);
        assert_ne!(a, b);
        // Same-side points agree.
        assert_eq!(m.assign(&[-0.3]), a);
        assert_eq!(m.assign(&[10.4]), b);
    }

    #[test]
    fn single_blob_prefers_one_cluster() {
        let data = blobs(&[5.0], 100);
        let m = fit_em(&data, &EmConfig::default());
        assert_eq!(m.k, 1, "BIC should not over-segment");
    }

    #[test]
    fn empty_data_is_trivial() {
        let m = fit_em(&[], &EmConfig::default());
        assert_eq!(m.k, 1);
        assert_eq!(m.assign(&[]), 0);
    }

    #[test]
    fn deterministic() {
        let data = blobs(&[0.0, 8.0], 40);
        let m1 = fit_em(&data, &EmConfig::default());
        let m2 = fit_em(&data, &EmConfig::default());
        assert_eq!(m1.k, m2.k);
        assert_eq!(m1.means, m2.means);
    }

    #[test]
    fn discrete_features_cluster() {
        // Array lengths 1 and 5 (the NewOrder model-partitioning case).
        let mut data: Vec<Vec<f64>> = Vec::new();
        for _ in 0..50 {
            data.push(vec![1.0]);
            data.push(vec![5.0]);
        }
        let m = fit_em(&data, &EmConfig::default());
        assert!(m.k >= 2);
        assert_ne!(m.assign(&[1.0]), m.assign(&[5.0]));
    }
}
