//! Greedy feed-forward feature selection (paper §5.2).
//!
//! Brute-forcing the power set of features is exponential; instead, each
//! round `r` evaluates all feature sets of size `r` built from the features
//! that appeared in the previous round's top-10% sets, and the search stops
//! when a round fails to beat the best cost found so far. The evaluator is
//! a callback: Houdini's implementation clusters the training workset,
//! builds per-cluster models from the validation workset, and scores
//! prediction accuracy on the testing workset.

/// Maps NaN above every real number for `f64::total_cmp`-based ascending
/// sorts, so a degenerate cost sorts last instead of crashing the search.
/// (`total_cmp` alone would rank negative NaN below -∞.)
fn nan_as_highest(c: f64) -> f64 {
    if c.is_nan() {
        f64::INFINITY
    } else {
        c
    }
}

/// Selection knobs.
#[derive(Debug, Clone)]
pub struct SelectionConfig {
    /// Fraction of each round's best sets whose features survive (paper:
    /// top 10%).
    pub survivor_frac: f64,
    /// Cap on the feature-set size (rounds).
    pub max_rounds: usize,
}

impl Default for SelectionConfig {
    fn default() -> Self {
        SelectionConfig { survivor_frac: 0.10, max_rounds: 4 }
    }
}

/// Runs the feed-forward search over `features`, evaluating candidate sets
/// with `eval` (lower cost = better). Returns the best feature set found
/// (possibly empty if `features` is empty).
pub fn feed_forward_select<F>(features: &[usize], cfg: &SelectionConfig, mut eval: F) -> Vec<usize>
where
    F: FnMut(&[usize]) -> f64,
{
    if features.is_empty() {
        return Vec::new();
    }
    let mut best_set: Vec<usize> = Vec::new();
    let mut best_cost = f64::INFINITY;
    let mut pool: Vec<usize> = features.to_vec();

    for r in 1..=cfg.max_rounds {
        let candidates = sets_of_size(&pool, r);
        if candidates.is_empty() {
            break;
        }
        let mut scored: Vec<(f64, Vec<usize>)> =
            candidates.into_iter().map(|s| (eval(&s), s)).collect();
        // total_cmp with NaN pushed last: a degenerate cost (e.g. a
        // log-likelihood that went NaN on a pathological cluster) must not
        // abort the search, and must never be selected as the round best.
        scored.sort_by(|a, b| nan_as_highest(a.0).total_cmp(&nan_as_highest(b.0)));
        let round_best = scored[0].0;
        if round_best < best_cost {
            best_cost = round_best;
            best_set = scored[0].1.clone();
        } else {
            break; // no improvement over previous rounds: stop (§5.2)
        }
        // Features appearing in the top 10% of this round's sets survive
        // (always at least two sets, so the pool can keep growing).
        let keep =
            ((scored.len() as f64 * cfg.survivor_frac).ceil() as usize).max(2).min(scored.len());
        let mut survivors: Vec<usize> =
            scored[..keep].iter().flat_map(|(_, s)| s.iter().copied()).collect();
        survivors.sort_unstable();
        survivors.dedup();
        pool = survivors;
    }
    best_set
}

/// All subsets of `pool` with exactly `size` elements (lexicographic).
fn sets_of_size(pool: &[usize], size: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut cur = Vec::with_capacity(size);
    fn rec(
        pool: &[usize],
        size: usize,
        start: usize,
        cur: &mut Vec<usize>,
        out: &mut Vec<Vec<usize>>,
    ) {
        if cur.len() == size {
            out.push(cur.clone());
            return;
        }
        for i in start..pool.len() {
            cur.push(pool[i]);
            rec(pool, size, i + 1, cur, out);
            cur.pop();
        }
    }
    rec(pool, size, 0, &mut cur, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subsets_enumeration() {
        let s = sets_of_size(&[1, 2, 3], 2);
        assert_eq!(s, vec![vec![1, 2], vec![1, 3], vec![2, 3]]);
        assert_eq!(sets_of_size(&[1, 2], 3).len(), 0);
    }

    #[test]
    fn finds_the_informative_pair() {
        // Cost is minimized by the set {2, 5}; single features 2 and 5 are
        // each better than the rest, so the greedy search finds the pair.
        let features: Vec<usize> = (0..8).collect();
        let cost = |s: &[usize]| -> f64 {
            let mut c = 10.0;
            if s.contains(&2) {
                c -= 4.0;
            }
            if s.contains(&5) {
                c -= 3.0;
            }
            c + s.len() as f64 * 0.1
        };
        let best = feed_forward_select(&features, &SelectionConfig::default(), cost);
        assert_eq!(best, vec![2, 5]);
    }

    #[test]
    fn stops_when_no_improvement() {
        // Adding features only hurts: best set is a single feature.
        let features: Vec<usize> = (0..5).collect();
        let mut evals = 0usize;
        let best = feed_forward_select(&features, &SelectionConfig::default(), |s| {
            evals += 1;
            s.len() as f64 + if s.contains(&3) { -0.5 } else { 0.0 }
        });
        assert_eq!(best, vec![3]);
        // Round 1: 5 evals; round 2 from survivors only; far below the
        // 2^5 - 1 brute-force evaluations.
        assert!(evals < 20, "evals = {evals}");
    }

    #[test]
    fn empty_features() {
        let best = feed_forward_select(&[], &SelectionConfig::default(), |_| 0.0);
        assert!(best.is_empty());
    }

    #[test]
    fn nan_costs_degrade_gracefully() {
        // Regression: the sort comparator `partial_cmp(..).expect(..)`
        // panicked on NaN costs. A NaN evaluation must neither abort the
        // search nor be chosen over a finite cost.
        let features: Vec<usize> = (0..6).collect();
        let best = feed_forward_select(&features, &SelectionConfig::default(), |s| {
            if s.contains(&1) {
                f64::NAN // pathological cluster
            } else if s.contains(&4) {
                1.0
            } else {
                5.0
            }
        });
        assert_eq!(best, vec![4], "finite best wins despite NaN candidates");
        // Every evaluation NaN: no panic, empty selection (nothing ever
        // beat the initial infinity).
        let none = feed_forward_select(&features, &SelectionConfig::default(), |_| f64::NAN);
        assert!(none.is_empty());
    }
}
