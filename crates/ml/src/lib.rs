//! The machine-learning toolkit behind model partitioning (paper §5).
//!
//! The paper uses WEKA for (1) expectation-maximization clustering of
//! transactions by features of their procedure input parameters and (2) a
//! C4.5 decision tree that routes new requests to the right per-cluster
//! Markov model at run time, plus a greedy feed-forward search over feature
//! sets. All three are reimplemented here from their published definitions.

pub mod dtree;
pub mod em;
pub mod feature;
pub mod selection;

pub use dtree::{train_tree, DecisionTree};
pub use em::{fit_em, EmConfig, EmModel};
pub use feature::{extract_features, feature_schema, Feature, FeatureCategory};
pub use selection::{feed_forward_select, SelectionConfig};
