//! C4.5-style decision tree (paper §5.3).
//!
//! Trained on (feature vector → cluster label) pairs after clustering, the
//! tree lets Houdini route each incoming request to the Markov model of its
//! cluster with a handful of comparisons. Splits are chosen by gain ratio
//! over binary numeric thresholds, C4.5's criterion.

use common::FxHashMap;
use serde::{Deserialize, Serialize};

/// A trained tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DecisionTree {
    root: Node,
    /// Number of decision nodes (diagnostics).
    pub splits: usize,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
enum Node {
    Leaf(usize),
    Split { feature: usize, threshold: f64, left: Box<Node>, right: Box<Node> },
}

impl DecisionTree {
    /// Routes a feature vector to its predicted label.
    pub fn predict(&self, x: &[f64]) -> usize {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf(label) => return *label,
                Node::Split { feature, threshold, left, right } => {
                    node = if x[*feature] <= *threshold { left } else { right };
                }
            }
        }
    }

    /// Depth of the tree (diagnostics).
    pub fn depth(&self) -> usize {
        fn d(n: &Node) -> usize {
            match n {
                Node::Leaf(_) => 1,
                Node::Split { left, right, .. } => 1 + d(left).max(d(right)),
            }
        }
        d(&self.root)
    }
}

fn entropy(counts: &FxHashMap<usize, usize>, total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let mut h = 0.0;
    for &c in counts.values() {
        if c > 0 {
            let p = c as f64 / total as f64;
            h -= p * p.log2();
        }
    }
    h
}

fn majority(ys: &[usize]) -> usize {
    let mut counts: FxHashMap<usize, usize> = FxHashMap::default();
    for &y in ys {
        *counts.entry(y).or_insert(0) += 1;
    }
    counts
        .into_iter()
        .max_by_key(|&(label, c)| (c, usize::MAX - label))
        .map(|(label, _)| label)
        .unwrap_or(0)
}

/// Trains a tree on `xs -> ys` with gain-ratio splits, depth-capped.
pub fn train_tree(xs: &[Vec<f64>], ys: &[usize], max_depth: usize) -> DecisionTree {
    assert_eq!(xs.len(), ys.len());
    let mut splits = 0;
    let idx: Vec<usize> = (0..xs.len()).collect();
    let root = build(xs, ys, &idx, max_depth, &mut splits);
    DecisionTree { root, splits }
}

fn build(xs: &[Vec<f64>], ys: &[usize], idx: &[usize], depth: usize, splits: &mut usize) -> Node {
    let labels: Vec<usize> = idx.iter().map(|&i| ys[i]).collect();
    let first = labels.first().copied().unwrap_or(0);
    if depth == 0 || idx.len() < 4 || labels.iter().all(|&l| l == first) {
        return Node::Leaf(majority(&labels));
    }
    let dims = xs[idx[0]].len();
    let mut parent_counts: FxHashMap<usize, usize> = FxHashMap::default();
    for &l in &labels {
        *parent_counts.entry(l).or_insert(0) += 1;
    }
    let parent_h = entropy(&parent_counts, idx.len());

    let mut best: Option<(f64, usize, f64)> = None; // (gain_ratio, feature, threshold)
    #[allow(clippy::needless_range_loop)]
    for f in 0..dims {
        // Candidate thresholds: midpoints between distinct sorted values.
        let mut vals: Vec<f64> = idx.iter().map(|&i| xs[i][f]).collect();
        vals.sort_by(f64::total_cmp);
        vals.dedup();
        if vals.len() < 2 {
            continue;
        }
        for w in vals.windows(2) {
            let thr = (w[0] + w[1]) / 2.0;
            let mut lc: FxHashMap<usize, usize> = FxHashMap::default();
            let mut rc: FxHashMap<usize, usize> = FxHashMap::default();
            let (mut ln, mut rn) = (0usize, 0usize);
            for &i in idx {
                if xs[i][f] <= thr {
                    *lc.entry(ys[i]).or_insert(0) += 1;
                    ln += 1;
                } else {
                    *rc.entry(ys[i]).or_insert(0) += 1;
                    rn += 1;
                }
            }
            if ln == 0 || rn == 0 {
                continue;
            }
            let n = idx.len() as f64;
            let gain =
                parent_h - (ln as f64 / n) * entropy(&lc, ln) - (rn as f64 / n) * entropy(&rc, rn);
            // Split info for gain ratio (C4.5).
            let (pl, pr) = (ln as f64 / n, rn as f64 / n);
            let split_info = -(pl * pl.log2() + pr * pr.log2());
            let ratio = if split_info > 1e-9 { gain / split_info } else { 0.0 };
            if gain > 1e-9 && best.map(|(g, _, _)| ratio > g).unwrap_or(true) {
                best = Some((ratio, f, thr));
            }
        }
    }
    match best {
        None => Node::Leaf(majority(&labels)),
        Some((_, feature, threshold)) => {
            *splits += 1;
            let left_idx: Vec<usize> =
                idx.iter().copied().filter(|&i| xs[i][feature] <= threshold).collect();
            let right_idx: Vec<usize> =
                idx.iter().copied().filter(|&i| xs[i][feature] > threshold).collect();
            Node::Split {
                feature,
                threshold,
                left: Box::new(build(xs, ys, &left_idx, depth - 1, splits)),
                right: Box::new(build(xs, ys, &right_idx, depth - 1, splits)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_a_threshold() {
        let xs: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64]).collect();
        let ys: Vec<usize> = (0..40).map(|i| usize::from(i >= 20)).collect();
        let t = train_tree(&xs, &ys, 4);
        assert_eq!(t.predict(&[3.0]), 0);
        assert_eq!(t.predict(&[35.0]), 1);
        assert_eq!(t.splits, 1, "one clean split suffices");
    }

    #[test]
    fn learns_two_features() {
        // Label = (x0 >= 1) * 2 + (x1 >= 1): the Fig. 9 decision-tree shape
        // (hash of w_id, then array length).
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for a in 0..2 {
            for b in 0..2 {
                for _ in 0..20 {
                    xs.push(vec![a as f64, b as f64]);
                    ys.push(a * 2 + b);
                }
            }
        }
        let t = train_tree(&xs, &ys, 6);
        assert_eq!(t.predict(&[0.0, 0.0]), 0);
        assert_eq!(t.predict(&[0.0, 1.0]), 1);
        assert_eq!(t.predict(&[1.0, 0.0]), 2);
        assert_eq!(t.predict(&[1.0, 1.0]), 3);
    }

    #[test]
    fn pure_node_is_leaf() {
        let xs = vec![vec![1.0], vec![2.0], vec![3.0], vec![4.0]];
        let ys = vec![7, 7, 7, 7];
        let t = train_tree(&xs, &ys, 4);
        assert_eq!(t.predict(&[99.0]), 7);
        assert_eq!(t.splits, 0);
        assert_eq!(t.depth(), 1);
    }

    #[test]
    fn depth_cap_respected() {
        let xs: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64]).collect();
        let ys: Vec<usize> = (0..64).map(|i| i % 4).collect(); // noisy
        let t = train_tree(&xs, &ys, 3);
        assert!(t.depth() <= 4);
    }
}
