//! Feature extraction from stored-procedure input parameters (paper §5.1,
//! Tables 1 and 2).
//!
//! A transaction's *feature vector* holds one value per input parameter per
//! category. Inapplicable combinations (e.g. `ARRAYLENGTH` of a scalar) are
//! null, encoded as `None`, exactly like the nulls in the paper's Table 2.

use common::Value;
use serde::{Deserialize, Serialize};

/// The feature categories of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FeatureCategory {
    /// The normalized (numeric) value of the parameter.
    NormalizedValue,
    /// The hash value of the parameter — its home partition under the
    /// current configuration, which is what makes clusters partition-aware
    /// (Fig. 9 splits NewOrder models on `HashValue(w_id)`).
    HashValue,
    /// Whether the parameter is null.
    IsNull,
    /// The length of an array parameter.
    ArrayLength,
    /// Whether all elements of an array parameter hash to the same value.
    ArrayAllSameHash,
}

impl FeatureCategory {
    /// All categories in Table 1's order.
    pub const ALL: [FeatureCategory; 5] = [
        FeatureCategory::NormalizedValue,
        FeatureCategory::HashValue,
        FeatureCategory::IsNull,
        FeatureCategory::ArrayLength,
        FeatureCategory::ArrayAllSameHash,
    ];

    /// Display name matching the paper (e.g. `HASHVALUE`).
    pub fn label(self) -> &'static str {
        match self {
            FeatureCategory::NormalizedValue => "NORMALIZEDVALUE",
            FeatureCategory::HashValue => "HASHVALUE",
            FeatureCategory::IsNull => "ISNULL",
            FeatureCategory::ArrayLength => "ARRAYLENGTH",
            FeatureCategory::ArrayAllSameHash => "ARRAYALLSAMEHASH",
        }
    }
}

/// One feature instance: a category applied to one procedure parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Feature {
    /// The category.
    pub category: FeatureCategory,
    /// The procedure input-parameter index it applies to.
    pub param: usize,
}

/// The full feature schema for a procedure with `num_params` parameters:
/// one feature per parameter per category, parameter-major.
pub fn feature_schema(num_params: usize) -> Vec<Feature> {
    let mut fs = Vec::with_capacity(num_params * FeatureCategory::ALL.len());
    for param in 0..num_params {
        for category in FeatureCategory::ALL {
            fs.push(Feature { category, param });
        }
    }
    fs
}

fn hash_of(v: &Value, num_partitions: u32) -> f64 {
    let h = match v {
        Value::Int(i) => i.unsigned_abs() % u64::from(num_partitions),
        other => other.stable_hash() % u64::from(num_partitions),
    };
    h as f64
}

/// Extracts one feature's value from the argument list, or `None` when
/// inapplicable (Table 2's nulls).
pub fn extract_feature(f: &Feature, args: &[Value], num_partitions: u32) -> Option<f64> {
    let v = args.get(f.param)?;
    match f.category {
        FeatureCategory::NormalizedValue => match v {
            Value::Int(i) => Some(*i as f64),
            Value::Str(s) => Some(s.len() as f64),
            _ => None,
        },
        FeatureCategory::HashValue => match v {
            Value::Array(_) | Value::Null => None,
            scalar => Some(hash_of(scalar, num_partitions)),
        },
        FeatureCategory::IsNull => Some(if v.is_null() { 1.0 } else { 0.0 }),
        FeatureCategory::ArrayLength => v.array_len().map(|l| l as f64),
        FeatureCategory::ArrayAllSameHash => v.as_array().map(|elems| {
            let mut hashes = elems.iter().map(|e| hash_of(e, num_partitions));
            match hashes.next() {
                None => 1.0,
                Some(first) => {
                    if hashes.all(|h| h == first) {
                        1.0
                    } else {
                        0.0
                    }
                }
            }
        }),
    }
}

/// Extracts the full feature vector for `args` under `schema`.
pub fn extract_features(
    schema: &[Feature],
    args: &[Value],
    num_partitions: u32,
) -> Vec<Option<f64>> {
    schema.iter().map(|f| extract_feature(f, args, num_partitions)).collect()
}

/// Projects selected features into a dense numeric vector for the
/// clusterer/tree, encoding nulls as `-1.0` (all genuine feature values here
/// are non-negative).
pub fn densify(vector: &[Option<f64>], selected: &[usize]) -> Vec<f64> {
    selected.iter().map(|&i| vector[i].unwrap_or(-1.0)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_size() {
        assert_eq!(feature_schema(4).len(), 20); // Table 2: 4 params x 5 cats
    }

    #[test]
    fn table2_example() {
        // NewOrder-ish args: (w_id=0, i_ids=[2], i_w_ids=[0,1], i_qtys=[2,7])
        let args = vec![
            Value::Int(0),
            Value::Array(vec![Value::Int(1001), Value::Int(1002)]),
            Value::Array(vec![Value::Int(0), Value::Int(1)]),
            Value::Array(vec![Value::Int(2), Value::Int(7)]),
        ];
        let hv_w =
            extract_feature(&Feature { category: FeatureCategory::HashValue, param: 0 }, &args, 2);
        assert_eq!(hv_w, Some(0.0));
        let al_w = extract_feature(
            &Feature { category: FeatureCategory::ArrayLength, param: 0 },
            &args,
            2,
        );
        assert_eq!(al_w, None, "w_id is not an array");
        let al_ids = extract_feature(
            &Feature { category: FeatureCategory::ArrayLength, param: 1 },
            &args,
            2,
        );
        assert_eq!(al_ids, Some(2.0));
        let hv_ids =
            extract_feature(&Feature { category: FeatureCategory::HashValue, param: 1 }, &args, 2);
        assert_eq!(hv_ids, None, "arrays have no scalar hash");
    }

    #[test]
    fn all_same_hash() {
        let same = vec![Value::Array(vec![Value::Int(0), Value::Int(4)])]; // both -> 0 mod 4
        let diff = vec![Value::Array(vec![Value::Int(0), Value::Int(1)])];
        let f = Feature { category: FeatureCategory::ArrayAllSameHash, param: 0 };
        assert_eq!(extract_feature(&f, &same, 4), Some(1.0));
        assert_eq!(extract_feature(&f, &diff, 4), Some(0.0));
        let empty = vec![Value::Array(vec![])];
        assert_eq!(extract_feature(&f, &empty, 4), Some(1.0));
    }

    #[test]
    fn is_null_and_missing_param() {
        let args = vec![Value::Null];
        let f = Feature { category: FeatureCategory::IsNull, param: 0 };
        assert_eq!(extract_feature(&f, &args, 2), Some(1.0));
        let f9 = Feature { category: FeatureCategory::IsNull, param: 9 };
        assert_eq!(extract_feature(&f9, &args, 2), None);
    }

    #[test]
    fn densify_encodes_nulls() {
        let vec = vec![Some(3.0), None, Some(0.0)];
        assert_eq!(densify(&vec, &[0, 1, 2]), vec![3.0, -1.0, 0.0]);
        assert_eq!(densify(&vec, &[2]), vec![0.0]);
    }
}
