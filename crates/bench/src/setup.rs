//! Shared experiment plumbing: trace collection, training, simulation runs.

use common::{derive_seed, ProcId, Value};
use engine::{
    run_live, run_offline, Catalog, CostModel, LiveAdvisor, LiveConfig, Profiler, RequestGenerator,
    RunMetrics, SimConfig, Simulation, TxnAdvisor,
};
use houdini::{train, Houdini, HoudiniConfig, TrainingConfig};
use trace::Workload;
use workloads::{tpcc, Bench};

/// Experiment scale: `Quick` for benches/CI, `Full` for EXPERIMENTS.md.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small traces and short simulations.
    Quick,
    /// Paper-like trace sizes and longer measurement windows.
    Full,
}

impl Scale {
    /// Trace transactions collected per benchmark.
    pub fn trace_len(self) -> usize {
        match self {
            Scale::Quick => 1_500,
            Scale::Full => 12_000,
        }
    }

    /// Simulated measurement window (µs).
    pub fn measure_us(self) -> f64 {
        match self {
            Scale::Quick => 400_000.0,
            Scale::Full => 2_000_000.0,
        }
    }

    /// Simulated warm-up (µs).
    pub fn warmup_us(self) -> f64 {
        match self {
            Scale::Quick => 100_000.0,
            Scale::Full => 400_000.0,
        }
    }
}

/// Collects a workload trace of `n` transactions by executing the
/// benchmark's generated requests offline against a freshly loaded database
/// (paper §3.1: traces record procedure inputs and executed queries).
pub fn collect_trace(bench: Bench, parts: u32, n: usize, seed: u64) -> (Catalog, Workload) {
    let mut db = bench.database(parts);
    let reg = bench.registry();
    let catalog = reg.catalog();
    let mut gen = bench.generator(parts, seed);
    let clients = u64::from(parts) * 4;
    let mut records = Vec::with_capacity(n);
    for i in 0..n {
        let (proc, args) = gen.next_request(i as u64 % clients);
        let out = run_offline(&mut db, &reg, &catalog, proc, &args, true)
            .expect("offline trace execution");
        records.push(out.record);
    }
    (catalog, Workload { records })
}

/// Trains a Houdini advisor for `bench` at `parts` partitions.
pub fn trained_houdini(
    bench: Bench,
    parts: u32,
    trace_len: usize,
    partitioned: bool,
    threshold: f64,
    seed: u64,
) -> Houdini {
    let hcfg = HoudiniConfig { threshold, ..Default::default() };
    trained_houdini_cfg(bench, parts, trace_len, partitioned, seed, hcfg)
}

/// [`trained_houdini`] with full control over the on-line knobs — used by
/// the OP4 ablation (`early_prepare: false`) in the live experiments.
pub fn trained_houdini_cfg(
    bench: Bench,
    parts: u32,
    trace_len: usize,
    partitioned: bool,
    seed: u64,
    hcfg: HoudiniConfig,
) -> Houdini {
    let (catalog, workload) = collect_trace(bench, parts, trace_len, seed);
    let cfg = TrainingConfig { partitioned, ..Default::default() };
    let preds = train(&catalog, parts, &workload, &cfg);
    Houdini::new(preds, catalog, parts, hcfg)
}

/// Standard simulation config for a cluster size.
pub fn sim_config(parts: u32, scale: Scale, seed: u64) -> SimConfig {
    SimConfig {
        num_partitions: parts,
        partitions_per_node: 2,
        clients_per_partition: 4,
        warmup_us: scale.warmup_us(),
        measure_us: scale.measure_us(),
        seed,
        max_restarts: 2,
        max_requests_per_client: None,
    }
}

/// Runs one timed simulation of `bench` under `advisor`.
pub fn run_sim(
    bench: Bench,
    parts: u32,
    advisor: &mut dyn TxnAdvisor,
    scale: Scale,
    seed: u64,
) -> (RunMetrics, Profiler) {
    let mut db = bench.database(parts);
    let reg = bench.registry();
    let mut gen = bench.generator(parts, derive_seed(seed, 0x6E6));
    let cfg = sim_config(parts, scale, seed);
    let sim = Simulation::new(&mut db, &reg, advisor, &mut gen, CostModel::default(), cfg);
    sim.run().expect("simulation must not halt")
}

/// Runs one wall-clock measurement of `bench` under a live advisor: real
/// worker threads (one per partition), real closed-loop client threads,
/// per-client split request generators. The runtime takes its advisor by
/// value, so measurement helpers take a cheap handle (`Arc<A>` — the
/// blanket `LiveAdvisor for Arc<A>` impl delegates) and clone it per run.
pub fn run_live_bench<A: LiveAdvisor + Clone + 'static>(
    bench: Bench,
    parts: u32,
    advisor: &A,
    cfg: &LiveConfig,
    seed: u64,
) -> RunMetrics {
    let db = bench.database(parts);
    let reg = bench.registry();
    let gen_seed = derive_seed(seed, 0x6E6);
    let make_gen = move |client: u64| bench.client_generator(parts, gen_seed, client);
    let (metrics, _db) =
        run_live(db, reg, advisor.clone(), &make_gen, cfg).expect("live runtime must not halt");
    metrics
}

/// A TPC-C generator that issues only NewOrder requests — the motivating
/// experiment of Fig. 3 (§2.1).
pub struct NewOrderOnly {
    inner: tpcc::Generator,
    parts: u64,
    counter: u64,
}

/// Builds the NewOrder-only generator.
pub fn new_order_generator(parts: u32, seed: u64) -> NewOrderOnly {
    NewOrderOnly { inner: tpcc::Generator::new(parts, seed), parts: u64::from(parts), counter: 0 }
}

impl RequestGenerator for NewOrderOnly {
    fn next_request(&mut self, client: u64) -> (ProcId, Vec<Value>) {
        self.counter += 1;
        let w = (common::value::splitmix64(client ^ (self.counter << 17)) % self.parts) as i64;
        (1, self.inner.new_order_args(client, w))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use engine::baselines::Oracle;

    #[test]
    fn trace_collection_covers_procs() {
        let (catalog, wl) = collect_trace(Bench::Tatp, 4, 400, 3);
        assert_eq!(wl.len(), 400);
        assert!(wl.procs().len() >= 5, "most TATP procedures appear");
        assert_eq!(catalog.len(), 7);
    }

    #[test]
    fn quick_sim_runs() {
        let mut oracle = Oracle::new();
        let (m, _) = run_sim(Bench::Tatp, 4, &mut oracle, Scale::Quick, 5);
        assert!(m.committed > 100, "committed = {}", m.committed);
    }

    #[test]
    fn new_order_only_generator() {
        let mut g = new_order_generator(4, 9);
        for i in 0..50 {
            let (proc, args) = g.next_request(i);
            assert_eq!(proc, 1);
            assert_eq!(args.len(), 6);
        }
    }
}
