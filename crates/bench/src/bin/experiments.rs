//! Regenerates the paper's tables and figures.
//!
//! Usage: `experiments [--full] <id>...` where ids are `fig3 fig4 fig5 fig7
//! fig8 fig9 fig10 table3 fig11 table4 fig12 fig13 live live-latency
//! live-drift live-profile check-live-profile` or `all`. `--full` uses the
//! larger trace sizes
//! and longer simulated windows recorded in EXPERIMENTS.md; the default
//! quick scale finishes in seconds per experiment. `live` measures real
//! wall-clock throughput on the multi-threaded partition runtime instead of
//! simulated time (closed-loop sweeps plus the open-loop
//! latency-vs-offered-load sweep); `live-latency` runs just the open-loop
//! sweep; `live-drift` measures on-line model maintenance (§4.5) under a
//! mid-run TATP skew flip; `live-profile` measures the live Fig. 11
//! per-stage wall-clock breakdown (estimation / execution / coordination /
//! queueing); `check-live-profile` is the CI smoke gate that fails (exits
//! nonzero) if the 1-worker TATP coordination share regresses to the
//! pre-SPSC-lane level.

use bench::experiments::run_experiment;
use bench::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let scale = if full { Scale::Full } else { Scale::Quick };
    let ids: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    if ids.is_empty() {
        eprintln!(
            "usage: experiments [--full] <fig3|fig4|fig5|fig7|fig8|fig9|fig10|table3|fig11|table4|fig12|fig13|live|live-latency|live-drift|live-profile|check-live-profile|all>..."
        );
        std::process::exit(2);
    }
    for id in ids {
        print!("{}", run_experiment(id, scale));
        println!();
    }
}
