//! Open-loop (offered-load) measurement on the embeddable live runtime.
//!
//! The closed-loop harness (`engine::run_live`) measures throughput at
//! saturation: each client submits its next request the moment the
//! previous one returns, so queueing delay — the thing a production user
//! actually feels under load — is structurally invisible (a slow server
//! simply slows the arrival stream down). An *open-loop* client instead
//! submits on a Poisson-ish arrival schedule that does not react to
//! completions, which is only expressible against the handle API: each
//! submitter thread owns an [`engine::Client`] and its own arrival
//! schedule, and the runtime serves whatever shows up.
//!
//! Latency is measured from the **scheduled** arrival time, not from the
//! moment the submitter got around to sending: when a submitter falls
//! behind schedule (the server is saturated), the time spent queued behind
//! its own earlier requests is part of what the offered load costs — the
//! standard correction for coordinated omission.

use common::{derive_seed, seeded_rng};
use engine::{LatencyHistogram, LiveAdvisor, LiveConfig, LiveRuntime, RunMetrics};
use rand::Rng;
use std::time::{Duration, Instant};
use workloads::Bench;

/// Parameters of one open-loop measurement window.
#[derive(Debug, Clone)]
pub struct OpenLoopConfig {
    /// Total offered load (arrivals/second) across all submitters.
    pub offered_tps: f64,
    /// Submitter threads; each runs an independent Poisson process at
    /// `offered_tps / submitters`.
    pub submitters: u32,
    /// Total requests across all submitters (rounded down to a multiple
    /// of `submitters`); bounds the window at `requests / offered_tps`
    /// seconds of scheduled arrivals.
    pub requests: u64,
    /// Seed for the request generators and arrival schedules.
    pub seed: u64,
}

/// What one open-loop window measured.
#[derive(Debug, Clone)]
pub struct OpenLoopMeasurement {
    /// The offered load (arrivals/second) the schedule targeted.
    pub offered_tps: f64,
    /// Committed transactions per wall-clock second actually served.
    pub achieved_tps: f64,
    /// Client-visible latency from *scheduled* arrival to completion.
    pub latency: LatencyHistogram,
    /// Full runtime counters for the window.
    pub metrics: RunMetrics,
}

/// Runs one open-loop window: starts a [`LiveRuntime`], spawns
/// `submitters` threads that each drive a [`engine::Client`] handle on an
/// exponential inter-arrival schedule, and shuts the runtime down when
/// every schedule is exhausted. Panics if any transaction fails
/// unrecoverably or if requests are lost (conservation is asserted).
pub fn open_loop_measure<A: LiveAdvisor + Clone + 'static>(
    bench: Bench,
    parts: u32,
    advisor: &A,
    cfg: &LiveConfig,
    ol: &OpenLoopConfig,
) -> OpenLoopMeasurement {
    assert!(ol.offered_tps > 0.0, "offered load must be positive");
    let submitters = ol.submitters.max(1);
    let per = ol.requests / u64::from(submitters);
    let rate = ol.offered_tps / f64::from(submitters);
    let gen_seed = derive_seed(ol.seed, 0x6E6);
    let db = bench.database(parts);
    let reg = bench.registry();
    let runtime = LiveRuntime::start(db, reg, advisor.clone(), cfg.clone());
    let window_started = Instant::now();
    let hists: Vec<LatencyHistogram> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..submitters)
            .map(|_| {
                let mut client = runtime.client();
                s.spawn(move || {
                    let id = client.id();
                    let mut gen = bench.client_generator(parts, gen_seed, id);
                    let mut rng = seeded_rng(derive_seed(ol.seed, 0x09E7 ^ id));
                    let mut hist = LatencyHistogram::default();
                    let t0 = Instant::now();
                    let mut next_s = 0.0f64;
                    for _ in 0..per {
                        // Exponential inter-arrival: a Poisson process at
                        // `rate` arrivals/second per submitter.
                        let u: f64 = rng.gen();
                        next_s += -(1.0 - u).ln() / rate;
                        let sched = t0 + Duration::from_secs_f64(next_s);
                        let now = Instant::now();
                        if sched > now {
                            std::thread::sleep(sched - now);
                        }
                        let (proc, args) = gen.next_request(id);
                        client.call(proc, args).expect("open-loop transaction failed");
                        hist.record_us(sched.elapsed().as_secs_f64() * 1e6);
                    }
                    hist
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("submitter thread panicked")).collect()
    });
    // The serving window: first scheduled arrival to last completion
    // (runtime startup and shutdown excluded — they are not load).
    let window_s = window_started.elapsed().as_secs_f64();
    let (metrics, _db) = runtime.shutdown();
    let issued = per * u64::from(submitters);
    assert_eq!(
        metrics.committed + metrics.user_aborts,
        issued,
        "open-loop window lost transactions"
    );
    let mut latency = LatencyHistogram::default();
    for h in &hists {
        latency.merge(h);
    }
    OpenLoopMeasurement {
        offered_tps: ol.offered_tps,
        achieved_tps: metrics.committed as f64 / window_s,
        latency,
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use engine::baselines::AssumeSinglePartition;
    use std::sync::Arc;

    #[test]
    fn open_loop_conserves_requests_and_measures_latency() {
        let advisor = Arc::new(AssumeSinglePartition::new());
        let cfg = LiveConfig { seed: 5, ..Default::default() };
        let ol = OpenLoopConfig { offered_tps: 2_000.0, submitters: 4, requests: 200, seed: 5 };
        let m = open_loop_measure(Bench::Tatp, 2, &advisor, &cfg, &ol);
        assert_eq!(m.metrics.committed + m.metrics.user_aborts, 200);
        assert_eq!(m.latency.count(), 200, "every request records an open-loop sample");
        assert!(m.achieved_tps > 0.0);
        assert!(m.latency.p50_ms().unwrap() <= m.latency.p99_ms().unwrap());
    }
}
